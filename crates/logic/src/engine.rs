//! Incremental propagation engine: two-watched-literal BCP with an
//! assignment trail and decision levels.
//!
//! The legacy [`propagate`](crate::propagate) rescans the whole clause
//! list to a fixpoint on every call, and the reduction algorithms built on
//! it (MSA, DPLL, GBR's progression construction) re-clone and re-restrict
//! the CNF at every conditioning step. This module replaces both costs
//! with the standard incremental machinery of modern SAT solvers:
//!
//! * **Two-watched literals.** Every clause with ≥ 2 unresolved literals
//!   watches exactly two of them, kept at positions 0 and 1 of its literal
//!   array. Propagation only visits the clauses watching a literal that
//!   just became false, instead of every clause.
//! * **Assignment trail + decision levels.** Assignments are pushed onto a
//!   trail; [`Engine::assume`] opens a new decision level and
//!   [`Engine::backtrack`] pops levels in O(undone assignments). GBR
//!   conditions the shared engine on restriction/progression literals by
//!   assuming them instead of cloning restricted CNFs.
//!
//! # Invariants
//!
//! *Watch discipline* — for every stored clause `c` (index `ci`):
//!
//! 1. `c` has at least 2 literals; unit clauses are enqueued on the trail
//!    at level 0 instead of being stored, and empty clauses set
//!    [`Engine::is_ok`] to false.
//! 2. `ci` appears in exactly the watch lists of `c[0]` and `c[1]`.
//! 3. After a completed (non-conflicting) [`Engine::propagate`], no
//!    watched literal is false unless the other watch is true — so a
//!    clause can only become unit or conflicting when one of its two
//!    watched literals becomes false, which is exactly when its watch
//!    list is visited.
//!
//! *Trail* — `trail` lists assigned literals in assignment order;
//! `values[v]` is `Some(b)` iff some literal of `v` is on the trail.
//! `trail_lim[k]` is the trail height when decision level `k + 1` was
//! opened, so `backtrack(l)` unassigns exactly the literals above
//! `trail_lim[l]`. `qhead` marks the propagation frontier: literals below
//! it have had their watch lists processed. Level-0 assignments (facts)
//! are never undone.
//!
//! # Equivalence with the scan-based reference
//!
//! Unit propagation is confluent — from the same partial assignment it
//! reaches the same fixpoint (or a conflict) regardless of the order
//! implications are discovered in. All higher-level procedures here
//! ([`msa_from_state`], [`solve_from_state`]) only inspect the fixpoint,
//! so they return exactly the results of the scan-based
//! [`msa_scan`](crate::msa_scan) / [`dpll::solve`](crate::dpll::solve) on
//! the correspondingly conditioned formula; `tests/engine_differential.rs`
//! checks this on randomized inputs.

use crate::{Cnf, Lit, MsaStrategy, Var, VarOrder, VarSet};

/// An incremental unit-propagation engine over a CNF.
///
/// Build one with [`Engine::new`], then condition it with
/// [`Engine::assume`] / [`Engine::assume_all`] and undo with
/// [`Engine::backtrack`]. Clauses may be added at level 0 with
/// [`Engine::add_clause`] (GBR's learned sets).
///
/// # Examples
///
/// ```
/// use lbr_logic::{Clause, Cnf, Engine, Lit, Var};
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause(Clause::edge(Var::new(0), Var::new(1))); // 0 ⇒ 1
/// let mut engine = Engine::new(&cnf, 3);
/// assert!(engine.assume(Lit::pos(Var::new(0))));
/// assert_eq!(engine.value(Var::new(1)), Some(true)); // propagated
/// engine.backtrack(0);
/// assert_eq!(engine.value(Var::new(1)), None);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    /// Clause literal arrays. Positions 0 and 1 are the watched literals;
    /// watch replacement permutes the array but never changes the set.
    clauses: Vec<Vec<Lit>>,
    /// `watches[l.code()]` = indices of clauses currently watching `l`.
    watches: Vec<Vec<u32>>,
    /// Current assignment, indexed by variable index; `None` = unassigned.
    values: Vec<Option<bool>>,
    /// Assigned literals in assignment order.
    trail: Vec<Lit>,
    /// Trail height at the start of each decision level.
    trail_lim: Vec<usize>,
    /// Propagation frontier into `trail`.
    qhead: usize,
    /// `cnf.num_vars()` of the base formula — the DPLL branching bound.
    num_vars: usize,
    /// Size of the variable universe (`≥ num_vars`; extra variables are
    /// unconstrained but may be assumed and reported in [`Engine::true_set`]).
    universe: usize,
    /// False once a level-0 conflict has been derived: the stored formula
    /// (base CNF plus added clauses) is unsatisfiable.
    ok: bool,
}

impl Engine {
    /// Builds an engine for `cnf` over a universe of at least `universe`
    /// variables, propagating all unit clauses at level 0.
    ///
    /// If the formula is refuted by unit propagation alone (or contains an
    /// empty clause), [`Engine::is_ok`] is false afterwards.
    pub fn new(cnf: &Cnf, universe: usize) -> Self {
        let universe = universe.max(cnf.num_vars());
        let mut engine = Engine {
            clauses: Vec::with_capacity(cnf.len()),
            watches: vec![Vec::new(); 2 * universe],
            values: vec![None; universe],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            num_vars: cnf.num_vars(),
            universe,
            ok: true,
        };
        for clause in cnf.clauses() {
            engine.add_clause(clause.lits());
            if !engine.ok {
                break;
            }
        }
        engine
    }

    /// Whether the stored formula is still possibly satisfiable (no level-0
    /// conflict was derived). Once false, the engine is inert.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// The variable universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of variables of the base CNF (the DPLL branching bound).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Current decision level; 0 holds only facts.
    pub fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// The current value of `v`, or `None` if unassigned.
    #[inline]
    pub fn value(&self, v: Var) -> Option<bool> {
        self.values.get(v.index()).copied().flatten()
    }

    /// The current value of literal `l`, or `None` if its variable is
    /// unassigned.
    #[inline]
    pub fn lit_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| l.eval(b))
    }

    /// The assignment trail, in assignment order.
    pub fn trail(&self) -> &[Lit] {
        &self.trail
    }

    /// Number of stored clauses (unit clauses are absorbed into the trail
    /// and level-0-satisfied clauses are dropped at add time).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The literals of stored clause `ci`. The *set* is stable; the order
    /// within the array changes as watches move.
    pub fn clause(&self, ci: usize) -> &[Lit] {
        &self.clauses[ci]
    }

    /// The set of currently-true variables, over the engine's universe.
    pub fn true_set(&self) -> VarSet {
        let mut s = VarSet::empty(self.universe);
        for &l in &self.trail {
            if l.is_positive() {
                s.insert(l.var());
            }
        }
        s
    }

    /// Whether every stored clause is satisfied by membership in `s`
    /// (variables in `s` true, all others false). Used by the minimization
    /// passes, which reason about total assignments.
    pub fn satisfied_by(&self, s: &VarSet) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(s.contains(l.var()))))
    }

    /// Adds a clause at decision level 0, propagating any consequences.
    ///
    /// Literals false at level 0 are dropped and clauses already satisfied
    /// at level 0 are ignored — both are sound because level-0 assignments
    /// are permanent. Returns [`Engine::is_ok`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if called above decision level 0, or if a
    /// literal's variable is outside the universe.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "add_clause above level 0");
        if !self.ok {
            return false;
        }
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                Some(true) => return true, // satisfied forever
                Some(false) => {}          // falsified forever
                None => kept.push(l),
            }
        }
        match kept.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(kept[0]) || !self.propagate() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[kept[0].code()].push(ci);
                self.watches[kept[1].code()].push(ci);
                self.clauses.push(kept);
                true
            }
        }
    }

    /// Assigns `l` without propagating. Returns false if `l` is already
    /// false (a conflict); assigning an already-true literal is a no-op.
    fn enqueue(&mut self, l: Lit) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.values[l.var().index()] = Some(l.is_positive());
                self.trail.push(l);
                true
            }
        }
    }

    /// Opens a new decision level, assigns `l`, and propagates.
    ///
    /// Returns false on conflict; the level stays open either way, so the
    /// caller backtracks past it (conflicts leave the partial propagation
    /// on the trail, which is why the failed level must be popped).
    pub fn assume(&mut self, l: Lit) -> bool {
        self.trail_lim.push(self.trail.len());
        self.enqueue(l) && self.propagate()
    }

    /// Opens one decision level, assigns all of `lits`, and propagates.
    /// Returns false on conflict (see [`Engine::assume`]).
    pub fn assume_all(&mut self, lits: &[Lit]) -> bool {
        self.trail_lim.push(self.trail.len());
        for &l in lits {
            if !self.enqueue(l) {
                return false;
            }
        }
        self.propagate()
    }

    /// Undoes all assignments above decision level `level`. A no-op if the
    /// engine is already at or below that level.
    pub fn backtrack(&mut self, level: usize) {
        if level >= self.decision_level() {
            return;
        }
        let limit = self.trail_lim[level];
        for &l in &self.trail[limit..] {
            self.values[l.var().index()] = None;
        }
        self.trail.truncate(limit);
        self.trail_lim.truncate(level);
        self.qhead = limit;
    }

    /// Propagates all pending trail literals to a fixpoint using the
    /// watched-literal scheme. Returns false on conflict, in which case the
    /// caller must backtrack past the current level (or, at level 0, treat
    /// the formula as unsatisfiable).
    pub fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negated();
            // Take the watch list so we can mutate clauses while walking it;
            // entries that keep their watch are retained, moved watches are
            // dropped from this list.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut conflict = false;
            'clauses: while i < ws.len() {
                let ci = ws[i] as usize;
                let lits = &mut self.clauses[ci];
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit, "watch list out of sync");
                let first = lits[0];
                if self.values[first.var().index()].map(|b| first.eval(b)) == Some(true) {
                    i += 1; // clause satisfied through the other watch
                    continue;
                }
                for k in 2..lits.len() {
                    let cand = lits[k];
                    if self.values[cand.var().index()].map(|b| cand.eval(b)) != Some(false) {
                        // Move the watch from `false_lit` to `cand`.
                        lits.swap(1, k);
                        self.watches[cand.code()].push(ci as u32);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // No replacement: unit on `first`, or conflict.
                if !self.enqueue(first) {
                    conflict = true;
                    break;
                }
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
            if conflict {
                return false;
            }
        }
        true
    }
}

/// Sentinel for "assigned by decision or assumption, not propagation".
const NO_REASON: u32 = u32::MAX;

/// Restart interval unit: the Luby sequence is scaled by this many
/// conflicts.
const RESTART_UNIT: u64 = 64;

/// A conflict-driven clause-learning solver over the same clause
/// representation as [`Engine`].
///
/// The engine keeps its own watches, trail, reasons and decision levels,
/// so learned clauses never leak into a base [`Engine`] (whose stored
/// clause list feeds the greedy closure's violated-clause scan and the
/// minimization passes — extra clauses there would change *which* probes
/// GBR runs). It is built once per reduction run and persists across
/// probes: the learned-clause database is the shared state that makes
/// later probes cheaper.
///
/// # Determinism and DPLL agreement
///
/// [`CdclEngine::solve`] branches exactly like the chronological search
/// ([`solve_from_state`] / [`dpll::solve`](crate::dpll::solve)): the
/// `<`-least unassigned variable, polarity false first. Clause learning
/// (1UIP), non-chronological backjumping and Luby restarts only ever
/// prune assignments that extend *refuted* prefixes:
///
/// * every learned clause is a resolvent of stored clauses (strengthened
///   by level-0 facts), so it is implied by the formula and excludes no
///   model;
/// * if the found model `M` were not lexicographically least, take a
///   model `M' < M` and the first trail literal disagreeing with `M'`.
///   It cannot be a propagation (its reason clause is implied and all
///   its other literals are false under the agreeing prefix), so it is a
///   decision `¬v` with `M'(v) = true`. At that point `v` was the
///   `<`-least unassigned variable, so `M` and `M'` agree on everything
///   `<`-before `v` — and `M(v) = false < M'(v)` contradicts `M' < M`.
///
/// Hence `solve` returns *the same model* as the DPLL search for every
/// input and assumption set (fuzz invariant I8), while typically visiting
/// far fewer conflicts. VSIDS activity is recorded for order learning but
/// never consulted for branching, keeping the result independent of it.
#[derive(Debug, Clone)]
pub struct CdclEngine {
    /// Clause literal arrays; positions 0 and 1 are watched.
    clauses: Vec<Vec<Lit>>,
    /// Whether clause `ci` is learned (subject to database aging).
    is_learned: Vec<bool>,
    /// Literal block distance of clause `ci` (0 for base clauses).
    lbd: Vec<u32>,
    /// `watches[l.code()]` = indices of clauses watching `l`.
    watches: Vec<Vec<u32>>,
    values: Vec<Option<bool>>,
    /// Per-variable reason clause index (`NO_REASON` for decisions,
    /// assumptions and facts).
    reason: Vec<u32>,
    /// Per-variable decision level at assignment time.
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    num_vars: usize,
    universe: usize,
    ok: bool,
    /// Conflict-participation scores, exported for learned probe orders.
    activity: crate::order::VarActivity,
    /// Scratch marks for conflict analysis.
    seen: Vec<bool>,
    /// Learned clauses currently stored.
    num_learned: usize,
    /// Aging threshold: exceeding it triggers [`CdclEngine::reduce_db`]
    /// at the next restart.
    learned_budget: usize,
    /// Unit clauses learned under assumptions, re-asserted permanently at
    /// level 0 when the solve finishes (they are implied by the formula
    /// alone — see `record_learnt`).
    pending_units: Vec<Lit>,
    stats: crate::learned::CdclStats,
}

impl CdclEngine {
    /// Builds a CDCL engine for `cnf` over a universe of at least
    /// `universe` variables, propagating unit clauses at level 0.
    pub fn new(cnf: &Cnf, universe: usize) -> Self {
        let universe = universe.max(cnf.num_vars());
        let mut engine = CdclEngine {
            clauses: Vec::with_capacity(cnf.len()),
            is_learned: Vec::with_capacity(cnf.len()),
            lbd: Vec::with_capacity(cnf.len()),
            watches: vec![Vec::new(); 2 * universe],
            values: vec![None; universe],
            reason: vec![NO_REASON; universe],
            level: vec![0; universe],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            num_vars: cnf.num_vars(),
            universe,
            ok: true,
            activity: crate::order::VarActivity::new(universe),
            seen: vec![false; universe],
            num_learned: 0,
            learned_budget: (cnf.len() / 2).max(256),
            pending_units: Vec::new(),
            stats: crate::learned::CdclStats::default(),
        };
        for clause in cnf.clauses() {
            engine.add_clause(clause.lits());
            if !engine.ok {
                break;
            }
        }
        engine
    }

    /// Whether the stored formula is still possibly satisfiable.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// The variable universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of variables of the base CNF (the branching bound).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of stored clauses, base and learned.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of currently stored learned clauses.
    pub fn num_learned(&self) -> usize {
        self.num_learned
    }

    /// Search statistics so far.
    pub fn stats(&self) -> crate::learned::CdclStats {
        self.stats
    }

    /// The conflict-activity scores accumulated so far.
    pub fn activity(&self) -> &crate::order::VarActivity {
        &self.activity
    }

    /// Overrides the learned-database aging threshold (mainly for tests;
    /// the default scales with the base formula).
    pub fn set_learned_budget(&mut self, budget: usize) {
        self.learned_budget = budget.max(1);
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.values[l.var().index()].map(|b| l.eval(b))
    }

    /// The set of currently-true variables over the universe.
    fn true_set(&self) -> VarSet {
        let mut s = VarSet::empty(self.universe);
        for &l in &self.trail {
            if l.is_positive() {
                s.insert(l.var());
            }
        }
        s
    }

    /// Adds a base clause at decision level 0 (same semantics as
    /// [`Engine::add_clause`]). Returns [`CdclEngine::is_ok`] afterwards.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.add_clause_tagged(lits, false)
    }

    /// Imports clauses learned elsewhere (a [`SharedClauseStore`]
    /// (crate::learned::SharedClauseStore) or a peer engine) at level 0.
    /// Imported clauses are tagged learned, so database aging may drop
    /// them again. Returns [`CdclEngine::is_ok`] afterwards.
    pub fn import_clauses(&mut self, clauses: &[Vec<Lit>]) -> bool {
        for c in clauses {
            self.stats.imported += 1;
            if !self.add_clause_tagged(c, true) {
                return false;
            }
        }
        self.ok
    }

    /// Copies of all currently stored learned clauses, literals sorted.
    pub fn export_learned(&self) -> Vec<Vec<Lit>> {
        self.clauses
            .iter()
            .zip(&self.is_learned)
            .filter(|&(_, &learned)| learned)
            .map(|(c, _)| {
                let mut c = c.clone();
                c.sort_unstable();
                c
            })
            .collect()
    }

    fn add_clause_tagged(&mut self, lits: &[Lit], learned: bool) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "add_clause above level 0");
        if !self.ok {
            return false;
        }
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                Some(true) => return true, // satisfied forever
                Some(false) => {}          // falsified forever
                None => kept.push(l),
            }
        }
        match kept.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(kept[0], NO_REASON) || self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[kept[0].code()].push(ci);
                self.watches[kept[1].code()].push(ci);
                self.lbd.push(if learned { kept.len() as u32 } else { 0 });
                self.is_learned.push(learned);
                if learned {
                    self.num_learned += 1;
                }
                self.clauses.push(kept);
                true
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let vi = l.var().index();
                self.values[vi] = Some(l.is_positive());
                self.level[vi] = self.decision_level() as u32;
                self.reason[vi] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    fn backtrack(&mut self, level: usize) {
        if level >= self.decision_level() {
            return;
        }
        let limit = self.trail_lim[level];
        for &l in &self.trail[limit..] {
            self.values[l.var().index()] = None;
        }
        self.trail.truncate(limit);
        self.trail_lim.truncate(level);
        self.qhead = limit;
    }

    /// Watched-literal propagation recording reasons; returns the index
    /// of a conflicting clause, or `None` at fixpoint.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negated();
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut conflict = None;
            'clauses: while i < ws.len() {
                let ci = ws[i] as usize;
                let lits = &mut self.clauses[ci];
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit, "watch list out of sync");
                let first = lits[0];
                if self.values[first.var().index()].map(|b| first.eval(b)) == Some(true) {
                    i += 1;
                    continue;
                }
                for k in 2..lits.len() {
                    let cand = lits[k];
                    if self.values[cand.var().index()].map(|b| cand.eval(b)) != Some(false) {
                        lits.swap(1, k);
                        self.watches[cand.code()].push(ci as u32);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                if !self.enqueue(first, ci as u32) {
                    conflict = Some(ci as u32);
                    // Fast-forward the frontier; the caller backtracks.
                    self.qhead = self.trail.len();
                    break;
                }
                self.stats.propagations += 1;
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// 1UIP conflict analysis. Returns the learned clause (asserting
    /// literal first), the backjump level, and the clause's LBD. Bumps
    /// the activity of every variable on the conflict side.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, usize, u32) {
        let current = self.decision_level() as u32;
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var::new(0))]; // placeholder for the UIP
        let mut open = 0usize; // unresolved current-level literals
        let mut idx = self.trail.len();
        let mut confl = confl as usize;
        let mut resolving = false;
        loop {
            // Skip position 0 of a reason clause: that is the literal
            // whose reason it is, already being resolved.
            for k in usize::from(resolving)..self.clauses[confl].len() {
                let q = self.clauses[confl][k];
                let vi = q.var().index();
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.seen[vi] = true;
                    self.activity.bump(q.var());
                    if self.level[vi] >= current {
                        open += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            let vi = pl.var().index();
            self.seen[vi] = false;
            open -= 1;
            if open == 0 {
                learnt[0] = pl.negated(); // the first unique implication point
                break;
            }
            confl = self.reason[vi] as usize;
            debug_assert!(self.reason[vi] != NO_REASON, "resolved a decision");
            debug_assert_eq!(self.clauses[confl][0], pl, "reason invariant");
            resolving = true;
        }
        let mut bt = 0usize;
        for &l in &learnt[1..] {
            bt = bt.max(self.level[l.var().index()] as usize);
        }
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt, lbd)
    }

    /// Attaches a learned clause after the backjump and enqueues its
    /// asserting literal. Returns false when the assertion conflicts at
    /// the root (the formula is unsatisfiable under the assumptions).
    fn record_learnt(&mut self, mut learnt: Vec<Lit>, lbd: u32) -> bool {
        self.stats.learned += 1;
        if learnt.len() == 1 {
            // Implied by the formula + level-0 facts alone; re-asserted
            // permanently once the solve unwinds.
            self.pending_units.push(learnt[0]);
            return self.enqueue(learnt[0], NO_REASON);
        }
        // Watch the asserting literal and a literal of the backjump
        // level, so the watch discipline holds as soon as we continue.
        let mut deepest = 1;
        for k in 2..learnt.len() {
            if self.level[learnt[k].var().index()] > self.level[learnt[deepest].var().index()] {
                deepest = k;
            }
        }
        learnt.swap(1, deepest);
        let ci = self.clauses.len() as u32;
        self.watches[learnt[0].code()].push(ci);
        self.watches[learnt[1].code()].push(ci);
        let assert_lit = learnt[0];
        self.lbd.push(lbd);
        self.is_learned.push(true);
        self.num_learned += 1;
        self.clauses.push(learnt);
        self.enqueue(assert_lit, ci)
    }

    /// Ages the learned database: candidates (learned, not locked as a
    /// reason, LBD > 2) are ranked by `(lbd, len)` and the worst half is
    /// dropped; the budget then grows by 50%. Called at a restart, so the
    /// trail holds only root-level assignments.
    fn reduce_db(&mut self) {
        let n = self.clauses.len();
        let mut locked = vec![false; n];
        for &l in &self.trail {
            let r = self.reason[l.var().index()];
            if r != NO_REASON {
                locked[r as usize] = true;
            }
        }
        let mut cands: Vec<u32> = (0..n as u32)
            .filter(|&ci| {
                let ci = ci as usize;
                self.is_learned[ci] && !locked[ci] && self.lbd[ci] > 2
            })
            .collect();
        self.learned_budget = self.learned_budget.saturating_mul(3) / 2;
        if cands.len() < 2 {
            return;
        }
        cands.sort_by_key(|&ci| {
            let ci = ci as usize;
            (self.lbd[ci], self.clauses[ci].len(), ci)
        });
        let keep_best = cands.len() / 2;
        let mut dropped = vec![false; n];
        for &ci in &cands[keep_best..] {
            dropped[ci as usize] = true;
        }
        let removed = cands.len() - keep_best;
        self.stats.deleted += removed as u64;
        self.num_learned -= removed;
        // Compact in place, remapping clause indices.
        let mut remap = vec![NO_REASON; n];
        let mut w = 0usize;
        for ci in 0..n {
            if dropped[ci] {
                continue;
            }
            remap[ci] = w as u32;
            if w != ci {
                self.clauses.swap(w, ci);
                self.lbd.swap(w, ci);
                self.is_learned.swap(w, ci);
            }
            w += 1;
        }
        self.clauses.truncate(w);
        self.lbd.truncate(w);
        self.is_learned.truncate(w);
        for list in &mut self.watches {
            list.clear();
        }
        for ci in 0..self.clauses.len() {
            let (a, b) = (self.clauses[ci][0], self.clauses[ci][1]);
            self.watches[a.code()].push(ci as u32);
            self.watches[b.code()].push(ci as u32);
        }
        for i in 0..self.trail.len() {
            let vi = self.trail[i].var().index();
            let r = self.reason[vi];
            if r != NO_REASON {
                debug_assert!(remap[r as usize] != NO_REASON, "dropped a locked reason");
                self.reason[vi] = remap[r as usize];
            }
        }
    }

    /// Whether the stored formula is satisfiable under `assumptions`.
    pub fn is_satisfiable(&mut self, order: &VarOrder, assumptions: &[Lit]) -> bool {
        self.solve(order, assumptions).is_some()
    }

    /// Finds the lexicographically least (under `order`, false-first)
    /// model extending `assumptions`, or `None` if there is none — the
    /// same model [`solve_from_state`] and
    /// [`dpll::solve_with_assumptions`](crate::dpll::solve_with_assumptions)
    /// return (see the type docs for the argument).
    ///
    /// The engine is returned to decision level 0 afterwards; learned
    /// clauses persist and speed up later calls.
    pub fn solve(&mut self, order: &VarOrder, assumptions: &[Lit]) -> Option<VarSet> {
        if !self.ok {
            return None;
        }
        debug_assert_eq!(self.decision_level(), 0, "solve re-entered");
        if self.propagate().is_some() {
            self.ok = false;
            return None;
        }
        let root_level = if assumptions.is_empty() {
            0
        } else {
            // One decision level for all assumptions; backjumps never
            // cross it, so a conflict at (or below) it means UNSAT under
            // the assumptions.
            self.trail_lim.push(self.trail.len());
            let mut feasible = true;
            for &a in assumptions {
                if !self.enqueue(a, NO_REASON) {
                    feasible = false;
                    break;
                }
            }
            if !feasible || self.propagate().is_some() {
                self.finish_solve();
                return None;
            }
            1
        };
        let result = self.search(order, root_level);
        self.finish_solve();
        result
    }

    /// Unwinds to level 0 and permanently re-asserts units learned under
    /// assumptions (sound: they are implied by the formula + level-0
    /// facts, not by the assumptions — see `analyze`, which only ever
    /// resolves over stored clauses).
    fn finish_solve(&mut self) {
        self.backtrack(0);
        let units = std::mem::take(&mut self.pending_units);
        for l in units {
            if !self.add_clause_tagged(&[l], false) {
                break; // formula itself is unsatisfiable
            }
        }
    }

    fn search(&mut self, order: &VarOrder, root_level: usize) -> Option<VarSet> {
        let mut restart_idx: u64 = 1;
        let mut budget = RESTART_UNIT * crate::learned::luby(restart_idx);
        let mut conflicts_here: u64 = 0;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() <= root_level {
                    // A root conflict refutes the formula outright (level 0)
                    // or the assumptions (level 1). Mark the former sticky,
                    // the consumed conflict is not re-discoverable.
                    if self.decision_level() == 0 {
                        self.ok = false;
                    }
                    return None;
                }
                let (learnt, bt, lbd) = self.analyze(confl);
                self.backtrack(bt.max(root_level));
                if !self.record_learnt(learnt, lbd) {
                    if self.decision_level() == 0 {
                        self.ok = false;
                    }
                    return None;
                }
                self.activity.decay();
            } else if conflicts_here >= budget {
                // Luby restart; also the safe point to age the database
                // (only root-level reasons can be locked here).
                conflicts_here = 0;
                restart_idx += 1;
                budget = RESTART_UNIT * crate::learned::luby(restart_idx);
                self.stats.restarts += 1;
                self.backtrack(root_level);
                if self.num_learned > self.learned_budget {
                    self.reduce_db();
                }
            } else {
                let next = order
                    .iter()
                    .find(|&v| v.index() < self.num_vars && self.values[v.index()].is_none());
                match next {
                    None => return Some(self.true_set()),
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let fresh = self.enqueue(Lit::neg(v), NO_REASON);
                        debug_assert!(fresh, "decision on an assigned variable");
                    }
                }
            }
        }
    }
}

/// Runs the MSA procedure of [`msa`](crate::msa) *from the engine's
/// current state*: the current assignment plays the role of the
/// conditioning in the scan-based implementation.
///
/// Returns the full set of true variables of the found model (including
/// variables already true in the current state), or `None` if no model
/// extends the current assignment. The engine is restored to its entry
/// state before returning.
///
/// The caller must ensure the current state is propagated and
/// conflict-free (i.e. the last `assume*` returned true and
/// [`Engine::is_ok`] holds).
pub fn msa_from_state(
    engine: &mut Engine,
    order: &VarOrder,
    strategy: MsaStrategy,
) -> Option<VarSet> {
    msa_from_state_with(engine, order, strategy, &mut SearchBackend::Dpll)
}

/// The complete-search backend used by [`msa_from_state_with`] when the
/// greedy closure dead-ends (and by [`MsaStrategy::DpllMinimize`]).
///
/// Both backends return the *same* model — the lexicographically least
/// one under the branching order (see [`CdclEngine::solve`] for why
/// clause learning preserves this) — so the choice is a pure performance
/// knob: results, and everything derived from them, stay bit-identical.
#[derive(Debug)]
pub enum SearchBackend<'a> {
    /// The recursive chronological search of [`solve_from_state`].
    Dpll,
    /// A persistent CDCL solver holding the same clause set as the base
    /// engine; learned clauses accumulate across calls.
    Cdcl(&'a mut CdclEngine),
}

/// [`msa_from_state`] with an explicit complete-search backend.
pub fn msa_from_state_with(
    engine: &mut Engine,
    order: &VarOrder,
    strategy: MsaStrategy,
    backend: &mut SearchBackend<'_>,
) -> Option<VarSet> {
    match strategy {
        MsaStrategy::GreedyClosure => greedy_from_state(engine, order, backend),
        MsaStrategy::GreedyMinimize => {
            greedy_from_state(engine, order, backend).map(|s| minimize_from_state(engine, order, s))
        }
        MsaStrategy::DpllMinimize => {
            complete_search(engine, order, backend).map(|s| minimize_from_state(engine, order, s))
        }
    }
}

/// Runs the backend's complete search from the base engine's current
/// state. The CDCL backend is conditioned by passing the engine's trail
/// as assumptions; both engines hold the same clause set, so propagation
/// closes the same state.
fn complete_search(
    engine: &mut Engine,
    order: &VarOrder,
    backend: &mut SearchBackend<'_>,
) -> Option<VarSet> {
    match backend {
        SearchBackend::Dpll => solve_from_state(engine, order),
        SearchBackend::Cdcl(cdcl) => cdcl.solve(order, engine.trail()),
    }
}

/// The order-driven greedy closure, scanning the stored clauses exactly
/// like the legacy implementation scans the conditioned CNF: repeated
/// in-order passes satisfying each violated clause (violated under
/// "unassigned = false") by assuming its `<`-least eligible positive
/// literal, falling back to [`solve_from_state`] on a dead end.
fn greedy_from_state(
    engine: &mut Engine,
    order: &VarOrder,
    backend: &mut SearchBackend<'_>,
) -> Option<VarSet> {
    let mark = engine.decision_level();
    loop {
        let mut fixed_any = false;
        let mut dead_end = false;
        let mut ci = 0;
        while ci < engine.num_clauses() {
            if let Some(pick) = violated_pick(engine, order, ci) {
                match pick {
                    Some(v) => {
                        if !engine.assume(Lit::pos(v)) {
                            dead_end = true;
                            break;
                        }
                        fixed_any = true;
                    }
                    None => {
                        dead_end = true;
                        break;
                    }
                }
            }
            ci += 1;
        }
        if dead_end {
            // Greedy painted itself into a corner (or no model exists):
            // discard the greedy picks and let the complete search decide.
            engine.backtrack(mark);
            return complete_search(engine, order, backend);
        }
        if !fixed_any {
            let s = engine.true_set();
            engine.backtrack(mark);
            return Some(s);
        }
    }
}

/// If clause `ci` is violated under "unassigned variables are false",
/// returns its `<`-least positive literal not already false (`Some(None)`
/// when no such pick exists). Returns `None` when the clause is fine.
fn violated_pick(engine: &Engine, order: &VarOrder, ci: usize) -> Option<Option<Var>> {
    let lits = engine.clause(ci);
    for &l in lits {
        if engine.lit_value(l).unwrap_or(!l.is_positive()) {
            return None;
        }
    }
    Some(
        order.min(
            lits.iter()
                .filter(|l| l.is_positive())
                .map(|l| l.var())
                .filter(|&v| engine.value(v) != Some(false)),
        ),
    )
}

/// Complete DPLL search from the engine's current state: branches in
/// `order` with default polarity false over unassigned variables below
/// [`Engine::num_vars`]. Returns the full true set of the model found (or
/// `None` if unsatisfiable) and restores the engine's entry state.
pub fn solve_from_state(engine: &mut Engine, order: &VarOrder) -> Option<VarSet> {
    let mark = engine.decision_level();
    let found = search(engine, order);
    let result = found.then(|| engine.true_set());
    engine.backtrack(mark);
    result
}

fn search(engine: &mut Engine, order: &VarOrder) -> bool {
    let branch = order
        .iter()
        .find(|&v| v.index() < engine.num_vars() && engine.value(v).is_none());
    let Some(v) = branch else {
        return true; // all constrained variables assigned, no conflict
    };
    for polarity in [false, true] {
        let lvl = engine.decision_level();
        if engine.assume(Lit::with_polarity(v, polarity)) && search(engine, order) {
            return true;
        }
        engine.backtrack(lvl);
    }
    false
}

/// The reverse-`<`-order minimization sweep of
/// [`MsaStrategy::GreedyMinimize`] on an absolute true set: tries to drop
/// each variable not pinned by the current engine state, keeping the drop
/// only if every stored clause stays satisfied under set membership. Like
/// the scan-based `minimize`, the sweep repeats until it drops nothing —
/// removing a variable can satisfy a clause through a negative literal and
/// free an earlier-considered variable — and must iterate in exactly the
/// same order so both implementations return identical sets.
fn minimize_from_state(engine: &Engine, order: &VarOrder, mut s: VarSet) -> VarSet {
    let members: Vec<Var> = {
        // Variables assigned in the current state cannot be dropped (the
        // scan-based minimize would try and always fail), so skip them.
        let mut m: Vec<Var> = s.iter().filter(|&v| engine.value(v).is_none()).collect();
        order.sort(&mut m);
        m.reverse();
        m
    };
    loop {
        let mut dropped = false;
        for &v in &members {
            if !s.contains(v) {
                continue;
            }
            s.remove(v);
            if engine.satisfied_by(&s) {
                dropped = true;
            } else {
                s.insert(v);
            }
        }
        if !dropped {
            return s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clause;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    fn chain(n: usize) -> Cnf {
        let mut cnf = Cnf::new(n);
        for i in 0..n - 1 {
            cnf.add_clause(Clause::edge(v(i as u32), v(i as u32 + 1)));
        }
        cnf
    }

    #[test]
    fn level0_units_propagate_at_construction() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::edge(v(0), v(1)));
        let engine = Engine::new(&cnf, 3);
        assert!(engine.is_ok());
        assert_eq!(engine.value(v(0)), Some(true));
        assert_eq!(engine.value(v(1)), Some(true));
        assert_eq!(engine.value(v(2)), None);
        assert_eq!(engine.decision_level(), 0);
    }

    #[test]
    fn level0_conflict_marks_not_ok() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(0))]));
        assert!(!Engine::new(&cnf, 1).is_ok());
    }

    #[test]
    fn assume_propagates_and_backtrack_undoes() {
        let cnf = chain(5);
        let mut engine = Engine::new(&cnf, 5);
        assert!(engine.assume(Lit::pos(v(0))));
        for i in 0..5 {
            assert_eq!(engine.value(v(i)), Some(true), "v{i}");
        }
        assert_eq!(engine.decision_level(), 1);
        engine.backtrack(0);
        for i in 0..5 {
            assert_eq!(engine.value(v(i)), None, "v{i}");
        }
        // The engine is reusable after backtracking.
        assert!(engine.assume(Lit::pos(v(4))));
        assert_eq!(engine.value(v(0)), None);
        assert_eq!(engine.value(v(4)), Some(true));
    }

    #[test]
    fn assume_conflict_reports_false() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(1))]));
        let mut engine = Engine::new(&cnf, 2);
        assert!(engine.is_ok());
        assert_eq!(engine.value(v(1)), Some(false)); // level-0 fact
                                                     // ¬v1 and (v0 ⇒ v1) force ¬v0 at level 0 too, so assuming v0
                                                     // conflicts immediately — and the fact survives backtracking.
        assert_eq!(engine.value(v(0)), Some(false));
        assert!(!engine.assume(Lit::pos(v(0))));
        engine.backtrack(0);
        assert_eq!(engine.value(v(0)), Some(false));
        // Assuming a literal that is already a fact is a harmless no-op.
        assert!(engine.assume(Lit::neg(v(0))));
    }

    #[test]
    fn add_clause_at_level0_propagates() {
        let cnf = chain(4);
        let mut engine = Engine::new(&cnf, 4);
        assert!(engine.add_clause(&[Lit::pos(v(1))]));
        assert_eq!(engine.value(v(1)), Some(true));
        assert_eq!(engine.value(v(3)), Some(true));
        assert_eq!(engine.value(v(0)), None);
        // Contradicting the facts kills the engine.
        assert!(!engine.add_clause(&[Lit::neg(v(2))]));
        assert!(!engine.is_ok());
    }

    #[test]
    fn deep_assume_backtrack_to_middle_level() {
        let cnf = Cnf::new(6);
        let mut engine = Engine::new(&cnf, 6);
        for i in 0..4 {
            assert!(engine.assume(Lit::pos(v(i))));
        }
        assert_eq!(engine.decision_level(), 4);
        engine.backtrack(2);
        assert_eq!(engine.value(v(0)), Some(true));
        assert_eq!(engine.value(v(1)), Some(true));
        assert_eq!(engine.value(v(2)), None);
        assert_eq!(engine.value(v(3)), None);
    }

    #[test]
    fn msa_from_state_matches_msa_on_unconditioned_formula() {
        let mut cnf = chain(6);
        cnf.add_clause(Clause::unit(Lit::pos(v(2))));
        let order = VarOrder::natural(6);
        for strategy in MsaStrategy::ALL {
            let legacy = crate::msa_scan(&cnf, &order, strategy).expect("sat");
            let mut engine = Engine::new(&cnf, 6);
            let got = msa_from_state(&mut engine, &order, strategy).expect("sat");
            assert_eq!(got, legacy, "{strategy:?}");
            assert_eq!(engine.decision_level(), 0, "state restored");
        }
    }

    #[test]
    fn msa_from_state_under_assumptions_matches_conditioned_scan() {
        // Conditioning by assumption must equal restricting the formula.
        let mut cnf = Cnf::new(5);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(2), v(3)));
        cnf.add_clause(Clause::implication([v(0)], [v(2), v(4)]));
        let order = VarOrder::natural(5);
        let universe = 5;
        let keep = VarSet::from_iter_with_universe(universe, (0..4).map(v));
        let mut seed = VarSet::empty(universe);
        seed.insert(v(0));
        let conditioned = cnf.restrict(&keep, &seed);
        for strategy in MsaStrategy::ALL {
            let legacy = crate::msa_scan(&conditioned, &order, strategy).expect("sat");
            let mut engine = Engine::new(&cnf, universe);
            assert!(engine.assume_all(&[Lit::neg(v(4)), Lit::pos(v(0))]));
            let got = msa_from_state(&mut engine, &order, strategy).expect("sat");
            // The scan on the conditioned formula excludes the conditioned
            // variable; the engine reports absolute trues.
            let mut expected = legacy.clone();
            expected.insert(v(0));
            assert_eq!(got, expected, "{strategy:?}");
            assert_eq!(engine.decision_level(), 1, "state restored");
        }
    }

    #[test]
    fn solve_from_state_finds_models_and_unsat() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([], [v(0), v(1), v(2)]));
        let order = VarOrder::natural(3);
        let mut engine = Engine::new(&cnf, 3);
        let m = solve_from_state(&mut engine, &order).expect("sat");
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            vec![v(2)],
            "default-false branching"
        );
        // Conditioning away all positives makes it unsat.
        assert!(engine.assume_all(&[Lit::neg(v(0)), Lit::neg(v(1))]));
        assert!(!engine.assume(Lit::neg(v(2))));
        engine.backtrack(1);
        let m = solve_from_state(&mut engine, &order).expect("still sat");
        assert!(m.contains(v(2)));
    }

    /// PHP(pigeons, holes): variable `i * holes + j` = "pigeon i in hole
    /// j". Unsatisfiable whenever `pigeons > holes`.
    fn pigeonhole(pigeons: u32, holes: u32) -> Cnf {
        let mut cnf = Cnf::new((pigeons * holes) as usize);
        let x = |i: u32, j: u32| v(i * holes + j);
        for i in 0..pigeons {
            cnf.add_clause(Clause::implication([], (0..holes).map(|j| x(i, j))));
        }
        for j in 0..holes {
            for i in 0..pigeons {
                for k in i + 1..pigeons {
                    cnf.add_clause(Clause::new(vec![Lit::neg(x(i, j)), Lit::neg(x(k, j))]));
                }
            }
        }
        cnf
    }

    /// Deterministic structured formulas: implication chains, fan-ins and
    /// disjunctions seeded by a tiny LCG (no RNG deps).
    fn structured(seed: u64, n: u32) -> Cnf {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move |m: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % m
        };
        let mut cnf = Cnf::new(n as usize);
        for _ in 0..2 * n {
            let (a, b, c) = (next(n), next(n), next(n));
            let clause = match next(4) {
                0 => Clause::edge(v(a), v(b)),
                1 => Clause::implication([v(a), v(b)], [v(c)]),
                2 => Clause::implication([], [v(a), v(b), v(c)]),
                _ => Clause::new(vec![Lit::neg(v(a)), Lit::pos(v(b))]),
            };
            cnf.add_clause(clause);
        }
        cnf.add_clause(Clause::unit(Lit::pos(v(next(n)))));
        cnf
    }

    #[test]
    fn cdcl_matches_dpll_on_structured_formulas() {
        for seed in 0..24u64 {
            let cnf = structured(seed, 12);
            let order = VarOrder::natural(12);
            let expect = crate::dpll::solve(&cnf, &order);
            let mut cdcl = CdclEngine::new(&cnf, 12);
            let got = cdcl.solve(&order, &[]);
            assert_eq!(got, expect, "seed {seed}");
            // A second solve on the warm engine is identical.
            assert_eq!(cdcl.solve(&order, &[]), expect, "seed {seed} (warm)");
        }
    }

    #[test]
    fn cdcl_matches_dpll_on_permuted_orders() {
        let cnf = structured(7, 10);
        let mut perm: Vec<Var> = (0..10).map(v).collect();
        perm.reverse();
        let orders = [VarOrder::natural(10), VarOrder::from_permutation(perm)];
        for order in &orders {
            let expect = crate::dpll::solve(&cnf, order);
            let mut cdcl = CdclEngine::new(&cnf, 10);
            assert_eq!(cdcl.solve(order, &[]), expect);
        }
    }

    #[test]
    fn cdcl_matches_dpll_under_assumptions() {
        for seed in 0..12u64 {
            let cnf = structured(seed, 10);
            let order = VarOrder::natural(10);
            let mut cdcl = CdclEngine::new(&cnf, 10);
            for a in 0..4u32 {
                let assumptions = [Lit::neg(v(a)), Lit::pos(v(a + 4))];
                let expect =
                    crate::dpll::solve_with_assumptions(&cnf, &order, &assumptions).map(|(m, _)| m);
                // The warm engine answers every assumption set correctly.
                assert_eq!(cdcl.solve(&order, &assumptions), expect, "seed {seed} a{a}");
            }
        }
    }

    #[test]
    fn cdcl_refutes_pigeonhole() {
        let cnf = pigeonhole(4, 3);
        let order = VarOrder::natural(12);
        let mut cdcl = CdclEngine::new(&cnf, 12);
        assert_eq!(cdcl.solve(&order, &[]), None);
        let stats = cdcl.stats();
        assert!(stats.conflicts > 0);
        assert!(stats.learned > 0);
        // UNSAT persists on re-solve and under any assumptions.
        assert_eq!(cdcl.solve(&order, &[Lit::pos(v(0))]), None);
    }

    #[test]
    fn cdcl_refutation_is_short() {
        // On PHP(5, 4) clause learning keeps the refutation small; a
        // chronological search visits orders of magnitude more branches.
        let cnf = pigeonhole(5, 4);
        let order = VarOrder::natural(20);
        let mut cdcl = CdclEngine::new(&cnf, 20);
        assert_eq!(cdcl.solve(&order, &[]), None);
        assert!(
            cdcl.stats().conflicts < 2000,
            "CDCL refutation should be short, got {:?}",
            cdcl.stats()
        );
    }

    #[test]
    fn cdcl_db_reduction_keeps_answers_correct() {
        let cnf = pigeonhole(5, 4);
        let order = VarOrder::natural(20);
        let mut cdcl = CdclEngine::new(&cnf, 20);
        cdcl.set_learned_budget(4); // force aggressive aging
        assert_eq!(cdcl.solve(&order, &[]), None);
        // Reduction happened, and the warm engine still answers correctly
        // on a satisfiable restriction-style query of the same universe.
        let mut sat = CdclEngine::new(&structured(3, 10), 10);
        sat.set_learned_budget(1);
        let order10 = VarOrder::natural(10);
        let expect = crate::dpll::solve(&structured(3, 10), &order10);
        assert_eq!(sat.solve(&order10, &[]), expect);
    }

    #[test]
    fn cdcl_export_import_round_trip() {
        let cnf = pigeonhole(4, 3);
        let order = VarOrder::natural(12);
        let mut first = CdclEngine::new(&cnf, 12);
        assert_eq!(first.solve(&order, &[]), None);
        let learned = first.export_learned();
        assert!(!learned.is_empty());
        // Importing the learned clauses into a fresh engine is sound: the
        // answer is unchanged and the import is counted.
        let mut second = CdclEngine::new(&cnf, 12);
        second.import_clauses(&learned);
        assert_eq!(second.stats().imported, learned.len() as u64);
        assert_eq!(second.solve(&order, &[]), None);
    }

    #[test]
    fn cdcl_backend_matches_dpll_backend_in_msa() {
        for seed in 0..8u64 {
            let cnf = structured(seed, 10);
            let order = VarOrder::natural(10);
            let mut cdcl = CdclEngine::new(&cnf, 10);
            for strategy in MsaStrategy::ALL {
                let mut e1 = Engine::new(&cnf, 10);
                let mut e2 = Engine::new(&cnf, 10);
                let plain = if e1.is_ok() {
                    msa_from_state(&mut e1, &order, strategy)
                } else {
                    None
                };
                let with_cdcl = if e2.is_ok() {
                    msa_from_state_with(
                        &mut e2,
                        &order,
                        strategy,
                        &mut SearchBackend::Cdcl(&mut cdcl),
                    )
                } else {
                    None
                };
                assert_eq!(with_cdcl, plain, "seed {seed} {strategy:?}");
            }
        }
    }

    #[test]
    fn cdcl_assumption_units_persist_soundly() {
        // Learned units under assumptions are formula-implied, so keeping
        // them must not change any later answer.
        let cnf = structured(11, 10);
        let order = VarOrder::natural(10);
        let mut cdcl = CdclEngine::new(&cnf, 10);
        for a in 0..8u32 {
            let assumptions = [Lit::with_polarity(v(a % 10), a % 2 == 0)];
            let expect =
                crate::dpll::solve_with_assumptions(&cnf, &order, &assumptions).map(|(m, _)| m);
            assert_eq!(cdcl.solve(&order, &assumptions), expect, "round {a}");
        }
    }

    #[test]
    fn watch_lists_stay_consistent_under_churn() {
        // Repeated assume/backtrack cycles over a clause with many
        // literals exercise watch migration in both directions.
        let mut cnf = Cnf::new(8);
        cnf.add_clause(Clause::implication([], (0..8).map(v)));
        cnf.add_clause(Clause::implication([v(0), v(1)], [v(7)]));
        let mut engine = Engine::new(&cnf, 8);
        for round in 0..3 {
            for i in 0..7 {
                assert!(
                    engine.assume(Lit::neg(v(i))),
                    "round {round}: ¬v{i} must not conflict"
                );
            }
            assert_eq!(engine.value(v(7)), Some(true), "round {round}: unit forced");
            engine.backtrack(0);
        }
    }
}
