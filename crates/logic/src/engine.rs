//! Incremental propagation engine: two-watched-literal BCP with an
//! assignment trail and decision levels.
//!
//! The legacy [`propagate`](crate::propagate) rescans the whole clause
//! list to a fixpoint on every call, and the reduction algorithms built on
//! it (MSA, DPLL, GBR's progression construction) re-clone and re-restrict
//! the CNF at every conditioning step. This module replaces both costs
//! with the standard incremental machinery of modern SAT solvers:
//!
//! * **Two-watched literals.** Every clause with ≥ 2 unresolved literals
//!   watches exactly two of them, kept at positions 0 and 1 of its literal
//!   array. Propagation only visits the clauses watching a literal that
//!   just became false, instead of every clause.
//! * **Assignment trail + decision levels.** Assignments are pushed onto a
//!   trail; [`Engine::assume`] opens a new decision level and
//!   [`Engine::backtrack`] pops levels in O(undone assignments). GBR
//!   conditions the shared engine on restriction/progression literals by
//!   assuming them instead of cloning restricted CNFs.
//!
//! # Invariants
//!
//! *Watch discipline* — for every stored clause `c` (index `ci`):
//!
//! 1. `c` has at least 2 literals; unit clauses are enqueued on the trail
//!    at level 0 instead of being stored, and empty clauses set
//!    [`Engine::is_ok`] to false.
//! 2. `ci` appears in exactly the watch lists of `c[0]` and `c[1]`.
//! 3. After a completed (non-conflicting) [`Engine::propagate`], no
//!    watched literal is false unless the other watch is true — so a
//!    clause can only become unit or conflicting when one of its two
//!    watched literals becomes false, which is exactly when its watch
//!    list is visited.
//!
//! *Trail* — `trail` lists assigned literals in assignment order;
//! `values[v]` is `Some(b)` iff some literal of `v` is on the trail.
//! `trail_lim[k]` is the trail height when decision level `k + 1` was
//! opened, so `backtrack(l)` unassigns exactly the literals above
//! `trail_lim[l]`. `qhead` marks the propagation frontier: literals below
//! it have had their watch lists processed. Level-0 assignments (facts)
//! are never undone.
//!
//! # Equivalence with the scan-based reference
//!
//! Unit propagation is confluent — from the same partial assignment it
//! reaches the same fixpoint (or a conflict) regardless of the order
//! implications are discovered in. All higher-level procedures here
//! ([`msa_from_state`], [`solve_from_state`]) only inspect the fixpoint,
//! so they return exactly the results of the scan-based
//! [`msa_scan`](crate::msa_scan) / [`dpll::solve`](crate::dpll::solve) on
//! the correspondingly conditioned formula; `tests/engine_differential.rs`
//! checks this on randomized inputs.

use crate::{Cnf, Lit, MsaStrategy, Var, VarOrder, VarSet};

/// An incremental unit-propagation engine over a CNF.
///
/// Build one with [`Engine::new`], then condition it with
/// [`Engine::assume`] / [`Engine::assume_all`] and undo with
/// [`Engine::backtrack`]. Clauses may be added at level 0 with
/// [`Engine::add_clause`] (GBR's learned sets).
///
/// # Examples
///
/// ```
/// use lbr_logic::{Clause, Cnf, Engine, Lit, Var};
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause(Clause::edge(Var::new(0), Var::new(1))); // 0 ⇒ 1
/// let mut engine = Engine::new(&cnf, 3);
/// assert!(engine.assume(Lit::pos(Var::new(0))));
/// assert_eq!(engine.value(Var::new(1)), Some(true)); // propagated
/// engine.backtrack(0);
/// assert_eq!(engine.value(Var::new(1)), None);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    /// Clause literal arrays. Positions 0 and 1 are the watched literals;
    /// watch replacement permutes the array but never changes the set.
    clauses: Vec<Vec<Lit>>,
    /// `watches[l.code()]` = indices of clauses currently watching `l`.
    watches: Vec<Vec<u32>>,
    /// Current assignment, indexed by variable index; `None` = unassigned.
    values: Vec<Option<bool>>,
    /// Assigned literals in assignment order.
    trail: Vec<Lit>,
    /// Trail height at the start of each decision level.
    trail_lim: Vec<usize>,
    /// Propagation frontier into `trail`.
    qhead: usize,
    /// `cnf.num_vars()` of the base formula — the DPLL branching bound.
    num_vars: usize,
    /// Size of the variable universe (`≥ num_vars`; extra variables are
    /// unconstrained but may be assumed and reported in [`Engine::true_set`]).
    universe: usize,
    /// False once a level-0 conflict has been derived: the stored formula
    /// (base CNF plus added clauses) is unsatisfiable.
    ok: bool,
}

impl Engine {
    /// Builds an engine for `cnf` over a universe of at least `universe`
    /// variables, propagating all unit clauses at level 0.
    ///
    /// If the formula is refuted by unit propagation alone (or contains an
    /// empty clause), [`Engine::is_ok`] is false afterwards.
    pub fn new(cnf: &Cnf, universe: usize) -> Self {
        let universe = universe.max(cnf.num_vars());
        let mut engine = Engine {
            clauses: Vec::with_capacity(cnf.len()),
            watches: vec![Vec::new(); 2 * universe],
            values: vec![None; universe],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            num_vars: cnf.num_vars(),
            universe,
            ok: true,
        };
        for clause in cnf.clauses() {
            engine.add_clause(clause.lits());
            if !engine.ok {
                break;
            }
        }
        engine
    }

    /// Whether the stored formula is still possibly satisfiable (no level-0
    /// conflict was derived). Once false, the engine is inert.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// The variable universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of variables of the base CNF (the DPLL branching bound).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Current decision level; 0 holds only facts.
    pub fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// The current value of `v`, or `None` if unassigned.
    #[inline]
    pub fn value(&self, v: Var) -> Option<bool> {
        self.values.get(v.index()).copied().flatten()
    }

    /// The current value of literal `l`, or `None` if its variable is
    /// unassigned.
    #[inline]
    pub fn lit_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| l.eval(b))
    }

    /// The assignment trail, in assignment order.
    pub fn trail(&self) -> &[Lit] {
        &self.trail
    }

    /// Number of stored clauses (unit clauses are absorbed into the trail
    /// and level-0-satisfied clauses are dropped at add time).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The literals of stored clause `ci`. The *set* is stable; the order
    /// within the array changes as watches move.
    pub fn clause(&self, ci: usize) -> &[Lit] {
        &self.clauses[ci]
    }

    /// The set of currently-true variables, over the engine's universe.
    pub fn true_set(&self) -> VarSet {
        let mut s = VarSet::empty(self.universe);
        for &l in &self.trail {
            if l.is_positive() {
                s.insert(l.var());
            }
        }
        s
    }

    /// Whether every stored clause is satisfied by membership in `s`
    /// (variables in `s` true, all others false). Used by the minimization
    /// passes, which reason about total assignments.
    pub fn satisfied_by(&self, s: &VarSet) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(s.contains(l.var()))))
    }

    /// Adds a clause at decision level 0, propagating any consequences.
    ///
    /// Literals false at level 0 are dropped and clauses already satisfied
    /// at level 0 are ignored — both are sound because level-0 assignments
    /// are permanent. Returns [`Engine::is_ok`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if called above decision level 0, or if a
    /// literal's variable is outside the universe.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "add_clause above level 0");
        if !self.ok {
            return false;
        }
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                Some(true) => return true, // satisfied forever
                Some(false) => {}          // falsified forever
                None => kept.push(l),
            }
        }
        match kept.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(kept[0]) || !self.propagate() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[kept[0].code()].push(ci);
                self.watches[kept[1].code()].push(ci);
                self.clauses.push(kept);
                true
            }
        }
    }

    /// Assigns `l` without propagating. Returns false if `l` is already
    /// false (a conflict); assigning an already-true literal is a no-op.
    fn enqueue(&mut self, l: Lit) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.values[l.var().index()] = Some(l.is_positive());
                self.trail.push(l);
                true
            }
        }
    }

    /// Opens a new decision level, assigns `l`, and propagates.
    ///
    /// Returns false on conflict; the level stays open either way, so the
    /// caller backtracks past it (conflicts leave the partial propagation
    /// on the trail, which is why the failed level must be popped).
    pub fn assume(&mut self, l: Lit) -> bool {
        self.trail_lim.push(self.trail.len());
        self.enqueue(l) && self.propagate()
    }

    /// Opens one decision level, assigns all of `lits`, and propagates.
    /// Returns false on conflict (see [`Engine::assume`]).
    pub fn assume_all(&mut self, lits: &[Lit]) -> bool {
        self.trail_lim.push(self.trail.len());
        for &l in lits {
            if !self.enqueue(l) {
                return false;
            }
        }
        self.propagate()
    }

    /// Undoes all assignments above decision level `level`. A no-op if the
    /// engine is already at or below that level.
    pub fn backtrack(&mut self, level: usize) {
        if level >= self.decision_level() {
            return;
        }
        let limit = self.trail_lim[level];
        for &l in &self.trail[limit..] {
            self.values[l.var().index()] = None;
        }
        self.trail.truncate(limit);
        self.trail_lim.truncate(level);
        self.qhead = limit;
    }

    /// Propagates all pending trail literals to a fixpoint using the
    /// watched-literal scheme. Returns false on conflict, in which case the
    /// caller must backtrack past the current level (or, at level 0, treat
    /// the formula as unsatisfiable).
    pub fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negated();
            // Take the watch list so we can mutate clauses while walking it;
            // entries that keep their watch are retained, moved watches are
            // dropped from this list.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut conflict = false;
            'clauses: while i < ws.len() {
                let ci = ws[i] as usize;
                let lits = &mut self.clauses[ci];
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit, "watch list out of sync");
                let first = lits[0];
                if self.values[first.var().index()].map(|b| first.eval(b)) == Some(true) {
                    i += 1; // clause satisfied through the other watch
                    continue;
                }
                for k in 2..lits.len() {
                    let cand = lits[k];
                    if self.values[cand.var().index()].map(|b| cand.eval(b)) != Some(false) {
                        // Move the watch from `false_lit` to `cand`.
                        lits.swap(1, k);
                        self.watches[cand.code()].push(ci as u32);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // No replacement: unit on `first`, or conflict.
                if !self.enqueue(first) {
                    conflict = true;
                    break;
                }
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
            if conflict {
                return false;
            }
        }
        true
    }
}

/// Runs the MSA procedure of [`msa`](crate::msa) *from the engine's
/// current state*: the current assignment plays the role of the
/// conditioning in the scan-based implementation.
///
/// Returns the full set of true variables of the found model (including
/// variables already true in the current state), or `None` if no model
/// extends the current assignment. The engine is restored to its entry
/// state before returning.
///
/// The caller must ensure the current state is propagated and
/// conflict-free (i.e. the last `assume*` returned true and
/// [`Engine::is_ok`] holds).
pub fn msa_from_state(
    engine: &mut Engine,
    order: &VarOrder,
    strategy: MsaStrategy,
) -> Option<VarSet> {
    match strategy {
        MsaStrategy::GreedyClosure => greedy_from_state(engine, order),
        MsaStrategy::GreedyMinimize => {
            greedy_from_state(engine, order).map(|s| minimize_from_state(engine, order, s))
        }
        MsaStrategy::DpllMinimize => {
            solve_from_state(engine, order).map(|s| minimize_from_state(engine, order, s))
        }
    }
}

/// The order-driven greedy closure, scanning the stored clauses exactly
/// like the legacy implementation scans the conditioned CNF: repeated
/// in-order passes satisfying each violated clause (violated under
/// "unassigned = false") by assuming its `<`-least eligible positive
/// literal, falling back to [`solve_from_state`] on a dead end.
fn greedy_from_state(engine: &mut Engine, order: &VarOrder) -> Option<VarSet> {
    let mark = engine.decision_level();
    loop {
        let mut fixed_any = false;
        let mut dead_end = false;
        let mut ci = 0;
        while ci < engine.num_clauses() {
            if let Some(pick) = violated_pick(engine, order, ci) {
                match pick {
                    Some(v) => {
                        if !engine.assume(Lit::pos(v)) {
                            dead_end = true;
                            break;
                        }
                        fixed_any = true;
                    }
                    None => {
                        dead_end = true;
                        break;
                    }
                }
            }
            ci += 1;
        }
        if dead_end {
            // Greedy painted itself into a corner (or no model exists):
            // discard the greedy picks and let the complete search decide.
            engine.backtrack(mark);
            return solve_from_state(engine, order);
        }
        if !fixed_any {
            let s = engine.true_set();
            engine.backtrack(mark);
            return Some(s);
        }
    }
}

/// If clause `ci` is violated under "unassigned variables are false",
/// returns its `<`-least positive literal not already false (`Some(None)`
/// when no such pick exists). Returns `None` when the clause is fine.
fn violated_pick(engine: &Engine, order: &VarOrder, ci: usize) -> Option<Option<Var>> {
    let lits = engine.clause(ci);
    for &l in lits {
        if engine.lit_value(l).unwrap_or(!l.is_positive()) {
            return None;
        }
    }
    Some(
        order.min(
            lits.iter()
                .filter(|l| l.is_positive())
                .map(|l| l.var())
                .filter(|&v| engine.value(v) != Some(false)),
        ),
    )
}

/// Complete DPLL search from the engine's current state: branches in
/// `order` with default polarity false over unassigned variables below
/// [`Engine::num_vars`]. Returns the full true set of the model found (or
/// `None` if unsatisfiable) and restores the engine's entry state.
pub fn solve_from_state(engine: &mut Engine, order: &VarOrder) -> Option<VarSet> {
    let mark = engine.decision_level();
    let found = search(engine, order);
    let result = found.then(|| engine.true_set());
    engine.backtrack(mark);
    result
}

fn search(engine: &mut Engine, order: &VarOrder) -> bool {
    let branch = order
        .iter()
        .find(|&v| v.index() < engine.num_vars() && engine.value(v).is_none());
    let Some(v) = branch else {
        return true; // all constrained variables assigned, no conflict
    };
    for polarity in [false, true] {
        let lvl = engine.decision_level();
        if engine.assume(Lit::with_polarity(v, polarity)) && search(engine, order) {
            return true;
        }
        engine.backtrack(lvl);
    }
    false
}

/// The reverse-`<`-order minimization sweep of
/// [`MsaStrategy::GreedyMinimize`] on an absolute true set: tries to drop
/// each variable not pinned by the current engine state, keeping the drop
/// only if every stored clause stays satisfied under set membership. Like
/// the scan-based `minimize`, the sweep repeats until it drops nothing —
/// removing a variable can satisfy a clause through a negative literal and
/// free an earlier-considered variable — and must iterate in exactly the
/// same order so both implementations return identical sets.
fn minimize_from_state(engine: &Engine, order: &VarOrder, mut s: VarSet) -> VarSet {
    let members: Vec<Var> = {
        // Variables assigned in the current state cannot be dropped (the
        // scan-based minimize would try and always fail), so skip them.
        let mut m: Vec<Var> = s.iter().filter(|&v| engine.value(v).is_none()).collect();
        order.sort(&mut m);
        m.reverse();
        m
    };
    loop {
        let mut dropped = false;
        for &v in &members {
            if !s.contains(v) {
                continue;
            }
            s.remove(v);
            if engine.satisfied_by(&s) {
                dropped = true;
            } else {
                s.insert(v);
            }
        }
        if !dropped {
            return s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clause;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    fn chain(n: usize) -> Cnf {
        let mut cnf = Cnf::new(n);
        for i in 0..n - 1 {
            cnf.add_clause(Clause::edge(v(i as u32), v(i as u32 + 1)));
        }
        cnf
    }

    #[test]
    fn level0_units_propagate_at_construction() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::edge(v(0), v(1)));
        let engine = Engine::new(&cnf, 3);
        assert!(engine.is_ok());
        assert_eq!(engine.value(v(0)), Some(true));
        assert_eq!(engine.value(v(1)), Some(true));
        assert_eq!(engine.value(v(2)), None);
        assert_eq!(engine.decision_level(), 0);
    }

    #[test]
    fn level0_conflict_marks_not_ok() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(0))]));
        assert!(!Engine::new(&cnf, 1).is_ok());
    }

    #[test]
    fn assume_propagates_and_backtrack_undoes() {
        let cnf = chain(5);
        let mut engine = Engine::new(&cnf, 5);
        assert!(engine.assume(Lit::pos(v(0))));
        for i in 0..5 {
            assert_eq!(engine.value(v(i)), Some(true), "v{i}");
        }
        assert_eq!(engine.decision_level(), 1);
        engine.backtrack(0);
        for i in 0..5 {
            assert_eq!(engine.value(v(i)), None, "v{i}");
        }
        // The engine is reusable after backtracking.
        assert!(engine.assume(Lit::pos(v(4))));
        assert_eq!(engine.value(v(0)), None);
        assert_eq!(engine.value(v(4)), Some(true));
    }

    #[test]
    fn assume_conflict_reports_false() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(1))]));
        let mut engine = Engine::new(&cnf, 2);
        assert!(engine.is_ok());
        assert_eq!(engine.value(v(1)), Some(false)); // level-0 fact
                                                     // ¬v1 and (v0 ⇒ v1) force ¬v0 at level 0 too, so assuming v0
                                                     // conflicts immediately — and the fact survives backtracking.
        assert_eq!(engine.value(v(0)), Some(false));
        assert!(!engine.assume(Lit::pos(v(0))));
        engine.backtrack(0);
        assert_eq!(engine.value(v(0)), Some(false));
        // Assuming a literal that is already a fact is a harmless no-op.
        assert!(engine.assume(Lit::neg(v(0))));
    }

    #[test]
    fn add_clause_at_level0_propagates() {
        let cnf = chain(4);
        let mut engine = Engine::new(&cnf, 4);
        assert!(engine.add_clause(&[Lit::pos(v(1))]));
        assert_eq!(engine.value(v(1)), Some(true));
        assert_eq!(engine.value(v(3)), Some(true));
        assert_eq!(engine.value(v(0)), None);
        // Contradicting the facts kills the engine.
        assert!(!engine.add_clause(&[Lit::neg(v(2))]));
        assert!(!engine.is_ok());
    }

    #[test]
    fn deep_assume_backtrack_to_middle_level() {
        let cnf = Cnf::new(6);
        let mut engine = Engine::new(&cnf, 6);
        for i in 0..4 {
            assert!(engine.assume(Lit::pos(v(i))));
        }
        assert_eq!(engine.decision_level(), 4);
        engine.backtrack(2);
        assert_eq!(engine.value(v(0)), Some(true));
        assert_eq!(engine.value(v(1)), Some(true));
        assert_eq!(engine.value(v(2)), None);
        assert_eq!(engine.value(v(3)), None);
    }

    #[test]
    fn msa_from_state_matches_msa_on_unconditioned_formula() {
        let mut cnf = chain(6);
        cnf.add_clause(Clause::unit(Lit::pos(v(2))));
        let order = VarOrder::natural(6);
        for strategy in MsaStrategy::ALL {
            let legacy = crate::msa_scan(&cnf, &order, strategy).expect("sat");
            let mut engine = Engine::new(&cnf, 6);
            let got = msa_from_state(&mut engine, &order, strategy).expect("sat");
            assert_eq!(got, legacy, "{strategy:?}");
            assert_eq!(engine.decision_level(), 0, "state restored");
        }
    }

    #[test]
    fn msa_from_state_under_assumptions_matches_conditioned_scan() {
        // Conditioning by assumption must equal restricting the formula.
        let mut cnf = Cnf::new(5);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(2), v(3)));
        cnf.add_clause(Clause::implication([v(0)], [v(2), v(4)]));
        let order = VarOrder::natural(5);
        let universe = 5;
        let keep = VarSet::from_iter_with_universe(universe, (0..4).map(v));
        let mut seed = VarSet::empty(universe);
        seed.insert(v(0));
        let conditioned = cnf.restrict(&keep, &seed);
        for strategy in MsaStrategy::ALL {
            let legacy = crate::msa_scan(&conditioned, &order, strategy).expect("sat");
            let mut engine = Engine::new(&cnf, universe);
            assert!(engine.assume_all(&[Lit::neg(v(4)), Lit::pos(v(0))]));
            let got = msa_from_state(&mut engine, &order, strategy).expect("sat");
            // The scan on the conditioned formula excludes the conditioned
            // variable; the engine reports absolute trues.
            let mut expected = legacy.clone();
            expected.insert(v(0));
            assert_eq!(got, expected, "{strategy:?}");
            assert_eq!(engine.decision_level(), 1, "state restored");
        }
    }

    #[test]
    fn solve_from_state_finds_models_and_unsat() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([], [v(0), v(1), v(2)]));
        let order = VarOrder::natural(3);
        let mut engine = Engine::new(&cnf, 3);
        let m = solve_from_state(&mut engine, &order).expect("sat");
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            vec![v(2)],
            "default-false branching"
        );
        // Conditioning away all positives makes it unsat.
        assert!(engine.assume_all(&[Lit::neg(v(0)), Lit::neg(v(1))]));
        assert!(!engine.assume(Lit::neg(v(2))));
        engine.backtrack(1);
        let m = solve_from_state(&mut engine, &order).expect("still sat");
        assert!(m.contains(v(2)));
    }

    #[test]
    fn watch_lists_stay_consistent_under_churn() {
        // Repeated assume/backtrack cycles over a clause with many
        // literals exercise watch migration in both directions.
        let mut cnf = Cnf::new(8);
        cnf.add_clause(Clause::implication([], (0..8).map(v)));
        cnf.add_clause(Clause::implication([v(0), v(1)], [v(7)]));
        let mut engine = Engine::new(&cnf, 8);
        for round in 0..3 {
            for i in 0..7 {
                assert!(
                    engine.assume(Lit::neg(v(i))),
                    "round {round}: ¬v{i} must not conflict"
                );
            }
            assert_eq!(engine.value(v(7)), Some(true), "round {round}: unit forced");
            engine.backtrack(0);
        }
    }
}
