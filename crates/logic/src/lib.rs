//! Propositional-logic substrate for logical input reduction.
//!
//! This crate is the logical foundation of the *Logical Bytecode Reduction*
//! reproduction (Kalhauge & Palsberg, PLDI 2021). The paper models the
//! internal dependencies of a failure-inducing input as a propositional
//! formula whose satisfying assignments are exactly the *valid sub-inputs*;
//! the reduction algorithm then needs, from this crate:
//!
//! * [`Cnf`] with conditioning and restriction (`R | x = 1`, "vars not in J
//!   set to 0"),
//! * [`Formula`] for the constraint-generating type checker, lowered to CNF,
//! * [`msa`] — the order-driven approximate **minimal satisfying
//!   assignment** at the heart of the `PROGRESSION` subroutine,
//! * [`Engine`] — an incremental two-watched-literal propagation engine
//!   with an assignment trail and decision levels; GBR conditions one
//!   shared engine by assumption instead of cloning restricted CNFs,
//! * [`dpll`] — a complete solver used as fallback and test oracle,
//! * [`count_models`] — sharpSAT-style model counting (component
//!   decomposition + caching + implicit BCP) to count valid sub-inputs,
//! * [`dimacs`] — interchange with external SAT tooling.
//!
//! # Quick example
//!
//! The paper's running constraint "if we keep that `A` implements `I` and
//! `I` has a signature `m`, we must keep `A.m()`" is the clause
//! `¬[A◁I] ∨ ¬[I.m()] ∨ [A.m()]`:
//!
//! ```
//! use lbr_logic::{Clause, Cnf, VarPool, msa, MsaStrategy, VarOrder};
//!
//! let mut pool = VarPool::new();
//! let a_impl_i = pool.var("[A<I]");
//! let i_m = pool.var("[I.m()]");
//! let a_m = pool.var("[A.m()]");
//!
//! let mut model = Cnf::new(pool.len());
//! model.add_clause(Clause::implication([a_impl_i, i_m], [a_m]));
//! model.add_clause(Clause::unit(lbr_logic::Lit::pos(a_impl_i)));
//! model.add_clause(Clause::unit(lbr_logic::Lit::pos(i_m)));
//!
//! let order = VarOrder::natural(pool.len());
//! let solution = msa(&model, &order, MsaStrategy::GreedyClosure).expect("satisfiable");
//! assert!(solution.contains(a_m)); // A.m() must be kept
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod clause;
mod cnf;
pub mod counting;
pub mod dimacs;
pub mod dpll;
pub mod engine;
mod formula;
pub mod learned;
mod lit;
mod msa;
mod order;
mod propagate;
mod set;
mod simplify;
mod var;

pub use clause::{Clause, ClauseShape};
pub use cnf::{Cnf, ShapeHistogram};
pub use counting::{
    count_models, count_models_parallel, count_models_restricted, count_models_with_stats,
    CountSession, CountingStats,
};
pub use engine::{
    msa_from_state, msa_from_state_with, solve_from_state, CdclEngine, Engine, SearchBackend,
};
pub use formula::Formula;
pub use learned::{luby, CdclStats, SharedClauseStore};
pub use lit::Lit;
pub use msa::{msa, msa_scan, msa_with_solver, MsaStrategy};
pub use order::{VarActivity, VarOrder};
pub use propagate::{propagate, PartialAssignment, Propagation};
pub use set::VarSet;
pub use simplify::{backbone, bcp_simplify, remove_subsumed, BcpSimplified};
pub use var::{Var, VarPool};
