//! CNF simplification: unit-propagation rewriting, subsumption removal,
//! and backbone extraction.
//!
//! Dependency models generated from programs carry redundancy (duplicate
//! and subsumed clauses, forced literals). Simplifying before reduction
//! shrinks the progression machinery's working set and exposes the
//! *backbone* — items that every valid sub-input must keep (or drop),
//! which is useful diagnostic output for bug reports.

use crate::{dpll, Clause, Cnf, Lit, PartialAssignment, Propagation, Var, VarOrder, VarSet};

/// The result of [`bcp_simplify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BcpSimplified {
    /// The rewritten CNF (forced literals removed from all clauses).
    pub cnf: Cnf,
    /// The literals forced by unit propagation, in derivation order.
    pub forced: Vec<Lit>,
}

/// Rewrites `cnf` under its own unit propagation: forced literals become
/// facts (returned separately) and disappear from the remaining clauses.
/// Returns `None` if propagation derives a contradiction (the CNF is
/// unsatisfiable).
pub fn bcp_simplify(cnf: &Cnf) -> Option<BcpSimplified> {
    let mut pa = PartialAssignment::new(cnf.num_vars());
    let forced = match crate::propagate(cnf, &mut pa) {
        Propagation::Conflict => return None,
        Propagation::Implied(lits) => lits,
    };
    let simplified = cnf.condition_by(|v| pa.value(v));
    Some(BcpSimplified {
        cnf: simplified,
        forced,
    })
}

/// Removes subsumed clauses: whenever `c ⊆ d` (as literal sets), `d` is
/// implied by `c` and can be dropped. Also deduplicates. Returns the
/// number of clauses removed.
pub fn remove_subsumed(cnf: &mut Cnf) -> usize {
    let mut clauses: Vec<Clause> = cnf.clauses().to_vec();
    let before = clauses.len();
    // Sort by length so potential subsumers come first.
    clauses.sort_by_key(Clause::len);
    let mut kept: Vec<Clause> = Vec::with_capacity(clauses.len());
    'outer: for c in clauses {
        for k in &kept {
            if subsumes(k, &c) {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    let mut out = Cnf::new(cnf.num_vars());
    for c in kept {
        out.add_clause(c);
    }
    *cnf = out;
    before - cnf.len()
}

/// Whether every literal of `small` occurs in `big`.
fn subsumes(small: &Clause, big: &Clause) -> bool {
    small.len() <= big.len() && small.lits().iter().all(|l| big.lits().contains(l))
}

/// The backbone of a satisfiable CNF: the variables forced true and
/// forced false in *every* model. Returns `None` if the CNF is
/// unsatisfiable.
///
/// Computed with one SAT probe per undecided variable, so this is a
/// diagnostic tool for moderate instances, not an inner-loop primitive.
pub fn backbone(cnf: &Cnf) -> Option<(VarSet, VarSet)> {
    let n = cnf.num_vars();
    let order = VarOrder::natural(n);
    let witness = dpll::solve(cnf, &order)?;
    let mut forced_true = VarSet::empty(n);
    let mut forced_false = VarSet::empty(n);
    let occurring = cnf.occurring_vars();
    for i in 0..n {
        let v = Var::new(i as u32);
        if !occurring.contains(v) {
            continue; // free variables are never backbone
        }
        let flipped = Lit::with_polarity(v, !witness.contains(v));
        if dpll::solve_with_assumptions(cnf, &order, &[flipped]).is_none() {
            if witness.contains(v) {
                forced_true.insert(v);
            } else {
                forced_false.insert(v);
            }
        }
    }
    Some((forced_true, forced_false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn bcp_rewrites_units() {
        // 0, 0⇒1, (1 ∨ 2): forces 0 and 1; the disjunction dissolves.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::implication([], [v(1), v(2)]));
        let s = bcp_simplify(&cnf).expect("satisfiable");
        assert_eq!(s.forced.len(), 2);
        assert!(s.cnf.is_empty(), "{:?}", s.cnf);
    }

    #[test]
    fn bcp_detects_contradiction() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::unit(Lit::neg(v(0))));
        assert!(bcp_simplify(&cnf).is_none());
    }

    #[test]
    fn subsumption_drops_weaker_clauses() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([], [v(0), v(1), v(2)]));
        cnf.add_clause(Clause::implication([], [v(0), v(1)]));
        cnf.add_clause(Clause::implication([], [v(0), v(1)])); // duplicate
        let removed = remove_subsumed(&mut cnf);
        assert_eq!(removed, 2);
        assert_eq!(cnf.len(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn subsumption_preserves_models() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::implication([v(0), v(2)], [v(1), v(3)])); // subsumed
        cnf.add_clause(Clause::implication([], [v(2), v(3)]));
        let before = crate::count_models(&cnf);
        remove_subsumed(&mut cnf);
        assert_eq!(crate::count_models(&cnf), before);
    }

    #[test]
    fn backbone_finds_forced_literals() {
        // 0; 0⇒1; (¬2 ∨ ¬1) forces 2 false; 3 is free.
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(2)), Lit::neg(v(1))]));
        let (t, f) = backbone(&cnf).expect("satisfiable");
        assert!(t.contains(v(0)) && t.contains(v(1)));
        assert!(f.contains(v(2)));
        assert!(!t.contains(v(3)) && !f.contains(v(3)));
    }

    #[test]
    fn backbone_of_unsat_is_none() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::unit(Lit::neg(v(0))));
        assert!(backbone(&cnf).is_none());
    }

    #[test]
    fn backbone_deep_implications() {
        // (0 ∨ 1) ∧ (0 ⇒ 2) ∧ (1 ⇒ 2): 2 is backbone though never a unit.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([], [v(0), v(1)]));
        cnf.add_clause(Clause::edge(v(0), v(2)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        let (t, _) = backbone(&cnf).expect("satisfiable");
        assert!(t.contains(v(2)));
        assert!(!t.contains(v(0)) && !t.contains(v(1)));
    }
}
