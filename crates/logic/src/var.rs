//! Propositional variables and the interning pool that names them.

use std::collections::HashMap;
use std::fmt;

/// A propositional variable, identified by a dense index.
///
/// Variables are cheap copyable handles. Their human-readable names (such as
/// `[A.m()!code]` in the paper) live in a [`VarPool`].
///
/// # Examples
///
/// ```
/// use lbr_logic::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the dense index of this variable.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` representation.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for Var {
    fn from(index: u32) -> Self {
        Var(index)
    }
}

/// An interning pool assigning dense [`Var`] indices to string names.
///
/// The reduction front ends (FJI, bytecode items) describe the removable
/// pieces of an input by name; the pool maps those names to variables used in
/// the CNF dependency model and back, so that solutions and progressions can
/// be printed the way the paper prints them.
///
/// # Examples
///
/// ```
/// use lbr_logic::VarPool;
/// let mut pool = VarPool::new();
/// let a = pool.var("[A]");
/// let b = pool.var("[B]");
/// assert_ne!(a, b);
/// assert_eq!(pool.var("[A]"), a); // interned
/// assert_eq!(pool.name(a), "[A]");
/// assert_eq!(pool.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VarPool {
    names: Vec<String>,
    index: HashMap<String, Var>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its variable. Repeated calls with the same
    /// name return the same variable.
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let v = Var::new(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), v);
        v
    }

    /// Looks up a previously interned name.
    pub fn lookup(&self, name: &str) -> Option<Var> {
        self.index.get(name).copied()
    }

    /// Returns the name of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by this pool.
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no variable has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all variables in index order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len() as u32).map(Var::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        let v = Var::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(Var::from(42u32), v);
    }

    #[test]
    fn pool_interns() {
        let mut p = VarPool::new();
        let a = p.var("x");
        let b = p.var("y");
        let a2 = p.var("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(p.name(b), "y");
        assert_eq!(p.lookup("y"), Some(b));
        assert_eq!(p.lookup("z"), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        let all: Vec<Var> = p.iter().collect();
        assert_eq!(all, vec![a, b]);
    }

    #[test]
    fn empty_pool() {
        let p = VarPool::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn var_display() {
        assert_eq!(Var::new(7).to_string(), "v7");
        assert_eq!(format!("{:?}", Var::new(7)), "v7");
    }
}
