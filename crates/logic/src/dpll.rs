//! A small complete DPLL SAT solver.
//!
//! Used as (a) the fallback inside [`msa`](crate::msa) when the greedy
//! closure hits a dead end, and (b) the reference oracle in tests. Branching
//! follows the variable order with default polarity *false*, which biases
//! models toward few true variables — the polarity a minimal satisfying
//! assignment wants.

use crate::{Cnf, Lit, PartialAssignment, Propagation, VarOrder, VarSet};

/// Statistics from a [`solve`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpllStats {
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
}

/// Decides satisfiability of `cnf`, returning a model as its set of true
/// variables, branching in `order` with default polarity false.
///
/// Returns `None` if the formula is unsatisfiable.
///
/// # Examples
///
/// ```
/// use lbr_logic::{dpll, Clause, Cnf, Var, VarOrder};
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause(Clause::implication([], [Var::new(0), Var::new(1)]));
/// let model = dpll::solve(&cnf, &VarOrder::natural(2)).expect("satisfiable");
/// assert!(cnf.eval(&model));
/// ```
pub fn solve(cnf: &Cnf, order: &VarOrder) -> Option<VarSet> {
    solve_with_assumptions(cnf, order, &[]).map(|(m, _)| m)
}

/// Like [`solve`], with assumption literals fixed up front; also returns
/// search statistics.
pub fn solve_with_assumptions(
    cnf: &Cnf,
    order: &VarOrder,
    assumptions: &[Lit],
) -> Option<(VarSet, DpllStats)> {
    debug_assert!(order.len() >= cnf.num_vars(), "order too small for cnf");
    let mut assignment = PartialAssignment::new(order.len().max(cnf.num_vars()));
    for &l in assumptions {
        if !assignment.assign(l) {
            return None;
        }
    }
    let mut stats = DpllStats::default();
    if search(cnf, order, &mut assignment, &mut stats) {
        Some((assignment.true_set(), stats))
    } else {
        None
    }
}

fn search(
    cnf: &Cnf,
    order: &VarOrder,
    assignment: &mut PartialAssignment,
    stats: &mut DpllStats,
) -> bool {
    let snapshot = assignment.clone();
    match crate::propagate(cnf, assignment) {
        Propagation::Conflict => {
            *assignment = snapshot;
            stats.conflicts += 1;
            return false;
        }
        Propagation::Implied(_) => {}
    }
    let branch_var = order
        .iter()
        .find(|&v| v.index() < cnf.num_vars() && assignment.value(v).is_none());
    let Some(v) = branch_var else {
        return true; // all constrained variables assigned, no conflict
    };
    stats.decisions += 1;
    for polarity in [false, true] {
        let undo = assignment.clone();
        assignment.assign(Lit::with_polarity(v, polarity));
        if search(cnf, order, assignment, stats) {
            return true;
        }
        *assignment = undo;
    }
    *assignment = snapshot;
    false
}

/// Decides whether `cnf` is satisfiable.
pub fn is_satisfiable(cnf: &Cnf) -> bool {
    solve(cnf, &VarOrder::natural(cnf.num_vars())).is_some()
}

/// Enumerates every model of `cnf` over all `cnf.num_vars()` variables, up
/// to `limit` models.
///
/// The search is exhaustive — use only when the model count is known to be
/// small (e.g. verifying Theorem 3.1 on the paper's 20-variable example,
/// which has 6,766 models).
pub fn all_models(cnf: &Cnf, limit: usize) -> Vec<VarSet> {
    let n = cnf.num_vars();
    let mut out = Vec::new();
    let mut assignment = PartialAssignment::new(n);
    enumerate(cnf, 0, &mut assignment, &mut out, limit);
    out
}

fn enumerate(
    cnf: &Cnf,
    next_var: usize,
    assignment: &mut PartialAssignment,
    out: &mut Vec<VarSet>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    // Quick conflict check: any clause fully falsified?
    let mut satisfiable_here = true;
    for c in cnf.clauses() {
        let mut open = false;
        let mut sat = false;
        for &l in c.lits() {
            match assignment.eval_lit(l) {
                Some(true) => {
                    sat = true;
                    break;
                }
                Some(false) => {}
                None => open = true,
            }
        }
        if !sat && !open {
            satisfiable_here = false;
            break;
        }
    }
    if !satisfiable_here {
        return;
    }
    if next_var == cnf.num_vars() {
        out.push(assignment.true_set());
        return;
    }
    let v = crate::Var::new(next_var as u32);
    for polarity in [false, true] {
        assignment.assign(Lit::with_polarity(v, polarity));
        enumerate(cnf, next_var + 1, assignment, out, limit);
        assignment.unassign(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clause, Var};

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn sat_prefers_false() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([], [v(0), v(1), v(2)]));
        let m = solve(&cnf, &VarOrder::natural(3)).expect("sat");
        assert!(cnf.eval(&m));
        // Default-false branching sets v0=false, v1=false, then v2 is forced.
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![v(2)]);
    }

    #[test]
    fn unsat_detected() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(1))]));
        assert!(solve(&cnf, &VarOrder::natural(2)).is_none());
        assert!(!is_satisfiable(&cnf));
    }

    #[test]
    fn assumptions_respected() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        let (m, _) =
            solve_with_assumptions(&cnf, &VarOrder::natural(2), &[Lit::pos(v(0))]).expect("sat");
        assert!(m.contains(v(0)) && m.contains(v(1)));
        // Contradictory assumptions are unsat.
        assert!(solve_with_assumptions(
            &cnf,
            &VarOrder::natural(2),
            &[Lit::pos(v(0)), Lit::neg(v(0))]
        )
        .is_none());
    }

    #[test]
    fn order_changes_model() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::implication([], [v(0), v(1)]));
        let m = solve(&cnf, &VarOrder::from_permutation(vec![v(1), v(0)])).expect("sat");
        // Branch on v1 first (false), forcing v0.
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![v(0)]);
    }

    #[test]
    fn empty_cnf_sat_with_empty_model() {
        let cnf = Cnf::new(4);
        let m = solve(&cnf, &VarOrder::natural(4)).expect("sat");
        assert!(m.is_empty());
    }

    #[test]
    fn all_models_enumerates() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([], [v(0), v(1)]));
        let models = all_models(&cnf, 100);
        assert_eq!(models.len() as u128, crate::count_models(&cnf));
        for m in &models {
            assert!(cnf.eval(m));
        }
        // Limit respected.
        assert_eq!(all_models(&cnf, 2).len(), 2);
    }

    #[test]
    fn hard_instance_pigeonhole_3_2() {
        // 3 pigeons, 2 holes: unsatisfiable. Var p*2+h = pigeon p in hole h.
        let mut cnf = Cnf::new(6);
        for p in 0..3u32 {
            cnf.add_clause(Clause::implication([], [v(p * 2), v(p * 2 + 1)]));
        }
        for h in 0..2u32 {
            for p1 in 0..3u32 {
                for p2 in (p1 + 1)..3 {
                    cnf.add_clause(Clause::new(vec![
                        Lit::neg(v(p1 * 2 + h)),
                        Lit::neg(v(p2 * 2 + h)),
                    ]));
                }
            }
        }
        assert!(!is_satisfiable(&cnf));
    }
}
