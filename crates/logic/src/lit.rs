//! Literals: a variable or its negation.

use crate::Var;
use std::fmt;

/// A literal — a [`Var`] with a polarity.
///
/// Encoded as `var << 1 | negated` so literals sort first by variable and
/// then positive-before-negative, which keeps clause canonicalization cheap.
///
/// # Examples
///
/// ```
/// use lbr_logic::{Lit, Var};
/// let x = Var::new(0);
/// assert!(Lit::pos(x).is_positive());
/// assert!(!Lit::neg(x).is_positive());
/// assert_eq!(Lit::pos(x).negated(), Lit::neg(x));
/// assert_eq!(Lit::neg(x).var(), x);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub const fn pos(v: Var) -> Self {
        Lit(v.raw() << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub const fn neg(v: Var) -> Self {
        Lit(v.raw() << 1 | 1)
    }

    /// Builds a literal with an explicit polarity (`true` = positive).
    #[inline]
    pub const fn with_polarity(v: Var, positive: bool) -> Self {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub const fn var(self) -> Var {
        Var::new(self.0 >> 1)
    }

    /// Whether the literal is the positive occurrence of its variable.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The opposite-polarity literal of the same variable.
    #[inline]
    pub const fn negated(self) -> Self {
        Lit(self.0 ^ 1)
    }

    /// Evaluates the literal under a truth value for its variable.
    #[inline]
    pub const fn eval(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }

    /// Dense code usable as an array index (`2 * var + neg`).
    #[inline]
    pub const fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Var> for Lit {
    fn from(v: Var) -> Self {
        Lit::pos(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_and_var() {
        let v = Var::new(5);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert_eq!(p.negated(), n);
        assert_eq!(n.negated(), p);
        assert_eq!(Lit::with_polarity(v, true), p);
        assert_eq!(Lit::with_polarity(v, false), n);
    }

    #[test]
    fn eval_matches_polarity() {
        let v = Var::new(0);
        assert!(Lit::pos(v).eval(true));
        assert!(!Lit::pos(v).eval(false));
        assert!(Lit::neg(v).eval(false));
        assert!(!Lit::neg(v).eval(true));
    }

    #[test]
    fn ordering_groups_by_variable() {
        let a = Var::new(1);
        let b = Var::new(2);
        let mut lits = vec![Lit::neg(b), Lit::pos(a), Lit::neg(a), Lit::pos(b)];
        lits.sort();
        assert_eq!(
            lits,
            vec![Lit::pos(a), Lit::neg(a), Lit::pos(b), Lit::neg(b)]
        );
    }

    #[test]
    fn codes_are_dense() {
        assert_eq!(Lit::pos(Var::new(0)).code(), 0);
        assert_eq!(Lit::neg(Var::new(0)).code(), 1);
        assert_eq!(Lit::pos(Var::new(1)).code(), 2);
    }

    #[test]
    fn display() {
        let v = Var::new(3);
        assert_eq!(Lit::pos(v).to_string(), "v3");
        assert_eq!(Lit::neg(v).to_string(), "!v3");
    }
}
