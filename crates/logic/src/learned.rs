//! Learned-clause machinery shared by the CDCL engine and its clients:
//! the Luby restart sequence, clause-database aging policy, and a
//! component-keyed store that lets isomorphic sub-formulas reuse each
//! other's learned clauses across probes.
//!
//! # Clause-database lifecycle
//!
//! The [`CdclEngine`](crate::CdclEngine) appends every 1UIP conflict
//! clause to its clause list, tagged with its *literal block distance*
//! (LBD — the number of distinct decision levels among its literals; a
//! small LBD means the clause connects few levels and tends to stay
//! useful). When the learned population exceeds a budget, the engine ages
//! the database: learned clauses are ranked by `(lbd, len)` and the worst
//! half is dropped, except *glue* clauses (LBD ≤ 2) and clauses currently
//! locked as the reason of an assignment on the trail. The budget then
//! grows geometrically so the solver always makes progress.
//!
//! # Sharing across components and probes
//!
//! Connected components of a dependency model are frequently isomorphic
//! (the counter's canonical-renaming cache exploits exactly this).
//! A clause learned while solving one component is, after renaming, a
//! valid implied clause of every isomorphic component — learned clauses
//! are resolution products of the component's own clauses, so they hold
//! in any renaming of it. [`SharedClauseStore`] keys canonically renamed
//! learned clauses by the component's canonical key, letting the model
//! counter's satisfiability probes start warm on components it has seen —
//! in this probe or a previous one.

use crate::{Lit, Var};
use std::collections::HashMap;

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4,
/// 8, … (`i` is 1-based). CDCL restart intervals follow this sequence
/// scaled by a constant conflict budget; the schedule is universally
/// within a constant factor of the optimal fixed schedule.
///
/// # Examples
///
/// ```
/// use lbr_logic::learned::luby;
/// let prefix: Vec<u64> = (1..=9).map(luby).collect();
/// assert_eq!(prefix, [1, 1, 2, 1, 1, 2, 4, 1, 1]);
/// ```
pub fn luby(mut i: u64) -> u64 {
    // luby(2^k - 1) = 2^(k-1); for 2^(k-1) <= i < 2^k - 1 the block is a
    // repetition of the prefix, so recurse on the offset into it.
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

/// Counters of a CDCL run; purely informational and deterministic for a
/// given formula, order and assumption sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdclStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Trail literals assigned by propagation.
    pub propagations: u64,
    /// Luby restarts performed.
    pub restarts: u64,
    /// Clauses learned from conflicts.
    pub learned: u64,
    /// Learned clauses dropped by database aging.
    pub deleted: u64,
    /// Clauses imported from a [`SharedClauseStore`] or a peer engine.
    pub imported: u64,
}

/// A component-keyed store of canonically renamed learned clauses.
///
/// Keys are the model counter's renaming-invariant canonical component
/// keys; values are learned clauses with variables replaced by canonical
/// ids (the first-occurrence numbering the key itself uses). Isomorphic
/// components therefore share one entry, and the same component hit on a
/// later probe retrieves its clauses warm. See the module docs for the
/// soundness argument.
#[derive(Debug, Default)]
pub struct SharedClauseStore {
    by_key: HashMap<Vec<u64>, Vec<Vec<(u32, bool)>>>,
    hits: u64,
    misses: u64,
    stored: u64,
}

/// Cap on clauses recorded per component: the store is a warm-start
/// cache, not an archive, and retrieval cost is linear in what it holds.
const STORE_CLAUSES_PER_KEY: usize = 32;
/// Cap on the width of stored clauses; long clauses rarely re-propagate.
const STORE_MAX_WIDTH: usize = 8;

impl SharedClauseStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct component keys with stored clauses.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Successful lookups so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Failed lookups so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total clauses currently stored (across all keys).
    pub fn stored_clauses(&self) -> u64 {
        self.stored
    }

    /// Records `clauses` (in concrete variables) for the component with
    /// canonical key `key`, where `canon[i]` is the concrete variable with
    /// canonical id `i`. Clauses wider than the store's width cap, or
    /// mentioning variables outside the component, are skipped.
    pub fn record(&mut self, key: &[u64], canon: &[Var], clauses: &[Vec<Lit>]) {
        if clauses.is_empty() {
            return;
        }
        let rename: HashMap<Var, u32> = canon
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let slot = self.by_key.entry(key.to_vec()).or_default();
        'clauses: for clause in clauses {
            if clause.is_empty() || clause.len() > STORE_MAX_WIDTH {
                continue;
            }
            if slot.len() >= STORE_CLAUSES_PER_KEY {
                break;
            }
            let mut canonical: Vec<(u32, bool)> = Vec::with_capacity(clause.len());
            for &l in clause {
                match rename.get(&l.var()) {
                    Some(&id) => canonical.push((id, l.is_positive())),
                    None => continue 'clauses, // crosses the component boundary
                }
            }
            canonical.sort_unstable();
            if !slot.contains(&canonical) {
                slot.push(canonical);
                self.stored += 1;
            }
        }
    }

    /// Retrieves the clauses stored for `key`, renamed into the concrete
    /// variables of this occurrence (`canon[i]` = concrete variable with
    /// canonical id `i`). Returns an empty vec (and counts a miss) when
    /// the component has not been seen.
    pub fn lookup(&mut self, key: &[u64], canon: &[Var]) -> Vec<Vec<Lit>> {
        match self.by_key.get(key) {
            None => {
                self.misses += 1;
                Vec::new()
            }
            Some(stored) => {
                self.hits += 1;
                stored
                    .iter()
                    .filter(|c| c.iter().all(|&(id, _)| (id as usize) < canon.len()))
                    .map(|c| {
                        c.iter()
                            .map(|&(id, pos)| Lit::with_polarity(canon[id as usize], pos))
                            .collect()
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix() {
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn luby_powers() {
        // Position 2^k - 1 holds 2^(k-1).
        for k in 1..=10u32 {
            assert_eq!(luby((1u64 << k) - 1), 1u64 << (k - 1), "k={k}");
        }
    }

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn store_round_trips_under_renaming() {
        let mut store = SharedClauseStore::new();
        let key = vec![1, 2, u64::MAX, 3];
        // Component A over {v5, v9}: clause (v5 ∨ ¬v9).
        store.record(&key, &[v(5), v(9)], &[vec![Lit::pos(v(5)), Lit::neg(v(9))]]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.stored_clauses(), 1);
        // Isomorphic component B over {v2, v7} retrieves the renamed clause.
        let got = store.lookup(&key, &[v(2), v(7)]);
        assert_eq!(got, vec![vec![Lit::pos(v(2)), Lit::neg(v(7))]]);
        assert_eq!(store.hits(), 1);
        assert!(store.lookup(&[9, 9, 9], &[v(0)]).is_empty());
        assert_eq!(store.misses(), 1);
    }

    #[test]
    fn store_skips_foreign_and_wide_clauses() {
        let mut store = SharedClauseStore::new();
        let key = vec![7];
        // Mentions v3, which is not in the component: skipped.
        store.record(&key, &[v(0)], &[vec![Lit::pos(v(3))]]);
        assert_eq!(store.stored_clauses(), 0);
        // Wider than the cap: skipped.
        let wide: Vec<Lit> = (0..12).map(|i| Lit::pos(v(i))).collect();
        let vars: Vec<Var> = (0..12).map(v).collect();
        store.record(&key, &vars, &[wide]);
        assert_eq!(store.stored_clauses(), 0);
        // Duplicates collapse.
        store.record(&key, &[v(0), v(1)], &[vec![Lit::pos(v(0)), Lit::pos(v(1))]]);
        store.record(&key, &[v(0), v(1)], &[vec![Lit::pos(v(1)), Lit::pos(v(0))]]);
        assert_eq!(store.stored_clauses(), 1);
    }
}
