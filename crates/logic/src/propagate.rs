//! Partial assignments and Boolean constraint propagation (unit propagation).

use crate::{Cnf, Lit, Var};

/// A partial truth assignment over a fixed variable universe.
///
/// # Examples
///
/// ```
/// use lbr_logic::{Lit, PartialAssignment, Var};
/// let mut pa = PartialAssignment::new(3);
/// pa.assign(Lit::pos(Var::new(1)));
/// assert_eq!(pa.value(Var::new(1)), Some(true));
/// assert_eq!(pa.value(Var::new(0)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialAssignment {
    values: Vec<Option<bool>>,
}

impl PartialAssignment {
    /// Creates a fully unassigned partial assignment over `n` variables.
    pub fn new(n: usize) -> Self {
        PartialAssignment {
            values: vec![None; n],
        }
    }

    /// Number of variables in the universe.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value assigned to `v`, if any.
    #[inline]
    pub fn value(&self, v: Var) -> Option<bool> {
        self.values[v.index()]
    }

    /// Makes `lit` true. Returns `false` if this contradicts an existing
    /// assignment (and leaves the assignment unchanged).
    pub fn assign(&mut self, lit: Lit) -> bool {
        match self.values[lit.var().index()] {
            None => {
                self.values[lit.var().index()] = Some(lit.is_positive());
                true
            }
            Some(b) => b == lit.is_positive(),
        }
    }

    /// Clears the value of `v`.
    pub fn unassign(&mut self, v: Var) {
        self.values[v.index()] = None;
    }

    /// Whether every variable has a value.
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(|v| v.is_some())
    }

    /// The set of variables assigned true, as a
    /// [`VarSet`](crate::VarSet) over the same universe (unassigned
    /// variables count as false).
    pub fn true_set(&self) -> crate::VarSet {
        let mut s = crate::VarSet::empty(self.values.len());
        for (i, v) in self.values.iter().enumerate() {
            if *v == Some(true) {
                s.insert(Var::new(i as u32));
            }
        }
        s
    }

    /// Evaluates `lit` under the assignment, `None` if its variable is
    /// unassigned.
    #[inline]
    pub fn eval_lit(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|b| lit.eval(b))
    }

    /// Number of assigned variables.
    pub fn assigned_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }
}

/// The outcome of unit propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Propagation {
    /// Propagation reached a fixpoint; the listed literals were newly
    /// implied (in implication order).
    Implied(Vec<Lit>),
    /// A clause became empty: the assignment cannot be extended to a model.
    Conflict,
}

impl Propagation {
    /// Whether propagation ended in a conflict.
    pub fn is_conflict(&self) -> bool {
        matches!(self, Propagation::Conflict)
    }
}

/// Runs unit propagation of `cnf` under `assignment`, extending the
/// assignment in place with every implied literal.
///
/// This is the `BCP` building block of the *reference* implementations:
/// the scan-based [`dpll`](crate::dpll) solver and
/// [`msa_scan`](crate::msa_scan). It rescans the whole clause list to a
/// fixpoint, which is `O(clauses · implied)` per call — fine for one-shot
/// queries, but quadratic when an algorithm re-propagates after every
/// conditioning step. The production path ([`msa`](crate::msa) and GBR's
/// progression construction) therefore uses the incremental
/// [`Engine`](crate::Engine), which watches two literals per clause and
/// only visits clauses whose watched literal just became false. Unit
/// propagation is confluent, so both implementations derive the same
/// fixpoint (or both report a conflict) from the same assignment.
pub fn propagate(cnf: &Cnf, assignment: &mut PartialAssignment) -> Propagation {
    let mut implied = Vec::new();
    loop {
        let mut changed = false;
        for clause in cnf.clauses() {
            let mut unassigned: Option<Lit> = None;
            let mut unassigned_count = 0;
            let mut satisfied = false;
            for &l in clause.lits() {
                match assignment.eval_lit(l) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {}
                    None => {
                        unassigned_count += 1;
                        if unassigned.is_none() {
                            unassigned = Some(l);
                        }
                    }
                }
            }
            if satisfied {
                continue;
            }
            match unassigned_count {
                0 => return Propagation::Conflict,
                1 => {
                    let l = unassigned.expect("one unassigned literal");
                    assignment.assign(l);
                    implied.push(l);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return Propagation::Implied(implied);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clause;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn assign_and_conflict() {
        let mut pa = PartialAssignment::new(2);
        assert!(pa.assign(Lit::pos(v(0))));
        assert!(pa.assign(Lit::pos(v(0)))); // consistent re-assign
        assert!(!pa.assign(Lit::neg(v(0)))); // contradiction
        assert_eq!(pa.value(v(0)), Some(true));
        assert_eq!(pa.assigned_count(), 1);
        pa.unassign(v(0));
        assert_eq!(pa.value(v(0)), None);
    }

    #[test]
    fn propagates_chain() {
        // 0, 0=>1, 1=>2
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        let mut pa = PartialAssignment::new(3);
        let res = propagate(&cnf, &mut pa);
        assert!(!res.is_conflict());
        assert!(pa.is_complete());
        assert_eq!(pa.true_set().len(), 3);
    }

    #[test]
    fn detects_conflict() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::unit(Lit::neg(v(0))));
        let mut pa = PartialAssignment::new(1);
        assert!(propagate(&cnf, &mut pa).is_conflict());
    }

    #[test]
    fn leaves_unforced_unassigned() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([], [v(0), v(1)])); // 0 | 1 — no units
        let mut pa = PartialAssignment::new(3);
        match propagate(&cnf, &mut pa) {
            Propagation::Implied(lits) => assert!(lits.is_empty()),
            Propagation::Conflict => panic!("no conflict expected"),
        }
        assert_eq!(pa.assigned_count(), 0);
    }

    #[test]
    fn propagation_respects_existing_assignment() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::implication([], [v(0), v(1)]));
        let mut pa = PartialAssignment::new(2);
        pa.assign(Lit::neg(v(0)));
        let res = propagate(&cnf, &mut pa);
        assert!(!res.is_conflict());
        assert_eq!(pa.value(v(1)), Some(true));
    }
}
