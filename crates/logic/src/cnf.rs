//! Conjunctive normal form formulas and the operations reduction needs.

use crate::{Clause, ClauseShape, Lit, Var, VarSet};
use std::fmt;

/// A formula in conjunctive normal form over variables `0..num_vars`.
///
/// `Cnf` is the dependency model `R_I` of the Input Reduction Problem
/// (Definition 4.1 of the paper): a satisfying assignment — written as its
/// set of true variables — corresponds to a valid sub-input.
///
/// # Examples
///
/// ```
/// use lbr_logic::{Clause, Cnf, Var, VarSet};
/// let a = Var::new(0);
/// let b = Var::new(1);
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause(Clause::edge(a, b)); // a ⇒ b
/// let mut s = VarSet::empty(2);
/// s.insert(a);
/// assert!(!cnf.eval(&s));
/// s.insert(b);
/// assert!(cnf.eval(&s));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    clauses: Vec<Clause>,
    num_vars: usize,
}

impl Cnf {
    /// Creates an empty (trivially true) CNF over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            clauses: Vec::new(),
            num_vars,
        }
    }

    /// Number of variables in the universe (including ones no clause uses).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grows the variable universe to at least `n`.
    pub fn ensure_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Adds a clause, dropping tautologies and growing the universe as
    /// needed. Returns `true` if the clause was kept.
    pub fn add_clause(&mut self, clause: Clause) -> bool {
        if clause.is_tautology() {
            return false;
        }
        self.ensure_vars(clause.var_bound());
        self.clauses.push(clause);
        true
    }

    /// Conjoins all clauses of `other` into `self`.
    pub fn and(&mut self, other: &Cnf) {
        self.ensure_vars(other.num_vars);
        for c in &other.clauses {
            self.add_clause(c.clone());
        }
    }

    /// The clauses of this CNF.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether there are no clauses (the formula is trivially true).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluates under the complete assignment "true iff member of
    /// `true_set`".
    pub fn eval(&self, true_set: &VarSet) -> bool {
        self.clauses.iter().all(|c| c.eval(true_set))
    }

    /// The set of variables that occur in some clause.
    pub fn occurring_vars(&self) -> VarSet {
        let mut s = VarSet::empty(self.num_vars);
        for c in &self.clauses {
            for l in c.lits() {
                s.insert(l.var());
            }
        }
        s
    }

    /// Conditions the CNF on the given literal values (the paper's
    /// `R | x = 1, y = 0`): satisfied clauses disappear and falsified
    /// literals are removed from their clauses. The variable universe is
    /// unchanged.
    ///
    /// Conditioning can produce the empty clause, in which case the result
    /// is unsatisfiable (see [`Cnf::has_empty_clause`]).
    pub fn condition<I: IntoIterator<Item = Lit>>(&self, lits: I) -> Cnf {
        let mut value: Vec<Option<bool>> = vec![None; self.num_vars];
        for l in lits {
            value[l.var().index()] = Some(l.is_positive());
        }
        self.condition_by(|v| value[v.index()])
    }

    /// Conditions by an arbitrary partial assignment function.
    pub fn condition_by<F: Fn(Var) -> Option<bool>>(&self, value: F) -> Cnf {
        let mut out = Cnf::new(self.num_vars);
        'clauses: for c in &self.clauses {
            let mut kept = Vec::new();
            for &l in c.lits() {
                match value(l.var()) {
                    Some(b) if l.eval(b) => continue 'clauses, // clause satisfied
                    Some(_) => {}                              // literal falsified, drop it
                    None => kept.push(l),
                }
            }
            out.clauses.push(Clause::new(kept));
        }
        out
    }

    /// Restricts to a variable subset `J` by setting every variable outside
    /// `J` to false (the paper's "`R⁺` with vars not in `J` set to 0"), and
    /// additionally setting every variable of `forced_true` to true.
    pub fn restrict(&self, keep: &VarSet, forced_true: &VarSet) -> Cnf {
        self.condition_by(|v| {
            if forced_true.contains(v) {
                Some(true)
            } else if !keep.contains(v) {
                Some(false)
            } else {
                None
            }
        })
    }

    /// Whether conditioning has produced an empty clause, making the formula
    /// unsatisfiable.
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(|c| c.is_empty())
    }

    /// The fraction of clauses that are graph constraints (edges or positive
    /// units). The paper reports 97.5% for its benchmark models.
    pub fn graph_fraction(&self) -> f64 {
        if self.clauses.is_empty() {
            return 1.0;
        }
        let graph = self
            .clauses
            .iter()
            .filter(|c| c.is_graph_constraint())
            .count();
        graph as f64 / self.clauses.len() as f64
    }

    /// Counts clauses by shape, useful for model statistics.
    pub fn shape_histogram(&self) -> ShapeHistogram {
        let mut h = ShapeHistogram::default();
        for c in &self.clauses {
            match c.shape() {
                ClauseShape::Empty => h.empty += 1,
                ClauseShape::UnitPositive(_) => h.unit_positive += 1,
                ClauseShape::UnitNegative(_) => h.unit_negative += 1,
                ClauseShape::Edge { .. } => h.edge += 1,
                ClauseShape::PositiveDisjunction => h.positive_disjunction += 1,
                ClauseShape::NegativeDisjunction => h.negative_disjunction += 1,
                ClauseShape::General => h.general += 1,
            }
        }
        h
    }

    /// Removes duplicate clauses (and subsumed duplicates of identical
    /// literal sets), preserving first-occurrence order. Returns the number
    /// of clauses removed.
    pub fn dedup_clauses(&mut self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let before = self.clauses.len();
        self.clauses.retain(|c| seen.insert(c.clone()));
        before - self.clauses.len()
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cnf[{} vars] ", self.num_vars)?;
        f.debug_list().entries(&self.clauses).finish()
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<T: IntoIterator<Item = Clause>>(iter: T) -> Self {
        let mut cnf = Cnf::new(0);
        for c in iter {
            cnf.add_clause(c);
        }
        cnf
    }
}

/// Clause-shape counts produced by [`Cnf::shape_histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct ShapeHistogram {
    pub empty: usize,
    pub unit_positive: usize,
    pub unit_negative: usize,
    pub edge: usize,
    pub positive_disjunction: usize,
    pub negative_disjunction: usize,
    pub general: usize,
}

impl ShapeHistogram {
    /// Total number of clauses counted.
    pub fn total(&self) -> usize {
        self.empty
            + self.unit_positive
            + self.unit_negative
            + self.edge
            + self.positive_disjunction
            + self.negative_disjunction
            + self.general
    }

    /// Number of clauses that are graph constraints.
    pub fn graph(&self) -> usize {
        self.unit_positive + self.edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn add_and_eval() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::unit(Lit::pos(v(2))));
        assert_eq!(cnf.num_vars(), 3);
        let mut s = VarSet::empty(3);
        s.insert(v(2));
        assert!(cnf.eval(&s));
        s.insert(v(0));
        assert!(!cnf.eval(&s));
        s.insert(v(1));
        assert!(cnf.eval(&s));
    }

    #[test]
    fn tautologies_dropped() {
        let mut cnf = Cnf::new(2);
        assert!(!cnf.add_clause(Clause::new(vec![Lit::pos(v(0)), Lit::neg(v(0))])));
        assert!(cnf.is_empty());
    }

    #[test]
    fn conditioning() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::edge(v(0), v(1))); // !0 | 1
        cnf.add_clause(Clause::implication([v(1)], [v(2)]));
        // Setting 0 = true leaves (1) and (!1 | 2).
        let c1 = cnf.condition([Lit::pos(v(0))]);
        assert_eq!(c1.len(), 2);
        assert_eq!(c1.clauses()[0], Clause::unit(Lit::pos(v(1))));
        // Setting 0 = false satisfies the first clause.
        let c2 = cnf.condition([Lit::neg(v(0))]);
        assert_eq!(c2.len(), 1);
        // Setting 0 = true and 1 = false yields the empty clause.
        let c3 = cnf.condition([Lit::pos(v(0)), Lit::neg(v(1))]);
        assert!(c3.has_empty_clause());
    }

    #[test]
    fn restrict_sets_outside_false() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([], [v(0), v(1)])); // 0 | 1
        let keep = VarSet::from_iter_with_universe(3, [v(1)]);
        let none = VarSet::empty(3);
        let r = cnf.restrict(&keep, &none);
        assert_eq!(r.clauses()[0], Clause::unit(Lit::pos(v(1))));
        // Forcing v1 true instead satisfies the clause entirely.
        let forced = VarSet::from_iter_with_universe(3, [v(1)]);
        let r2 = cnf.restrict(&keep, &forced);
        assert!(r2.is_empty());
    }

    #[test]
    fn graph_fraction_and_histogram() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::unit(Lit::pos(v(2))));
        cnf.add_clause(Clause::implication([v(0), v(1)], [v(3)]));
        cnf.add_clause(Clause::implication([], [v(1), v(3)]));
        let h = cnf.shape_histogram();
        assert_eq!(h.edge, 1);
        assert_eq!(h.unit_positive, 1);
        assert_eq!(h.general, 1);
        assert_eq!(h.positive_disjunction, 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.graph(), 2);
        assert!((cnf.graph_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dedup() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(0), v(1)));
        assert_eq!(cnf.dedup_clauses(), 1);
        assert_eq!(cnf.len(), 1);
    }

    #[test]
    fn occurring_vars() {
        let mut cnf = Cnf::new(10);
        cnf.add_clause(Clause::edge(v(2), v(7)));
        let occ = cnf.occurring_vars();
        assert_eq!(occ.len(), 2);
        assert!(occ.contains(v(2)) && occ.contains(v(7)));
    }

    #[test]
    fn empty_cnf_is_true() {
        let cnf = Cnf::new(5);
        assert!(cnf.eval(&VarSet::empty(5)));
        assert!((cnf.graph_fraction() - 1.0).abs() < 1e-9);
    }
}
