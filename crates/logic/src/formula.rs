//! Propositional formulas and their conversion to CNF.
//!
//! The constraint-generating type checker of Section 3 produces formulas of
//! the shape `(a₁ ∧ … ∧ aₙ) ⇒ ψ` where `ψ` is built from conjunction and
//! disjunction of variables (e.g. the `mAny` disjunctions). [`Formula`]
//! represents those and converts them to [`Cnf`] by negation normal form and
//! distribution, which is linear for the shapes the type rules generate.

use crate::{Clause, Cnf, Lit, Var, VarSet};
use std::fmt;

/// A propositional formula.
///
/// # Examples
///
/// ```
/// use lbr_logic::{Formula, Var, VarSet};
/// let a = Var::new(0);
/// let b = Var::new(1);
/// // a ⇒ b
/// let f = Formula::var(a).implies(Formula::var(b));
/// let cnf = f.to_cnf();
/// assert_eq!(cnf.len(), 1);
/// let mut s = VarSet::empty(2);
/// s.insert(a);
/// assert!(!f.eval(&s));
/// s.insert(b);
/// assert!(f.eval(&s));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// A constant truth value.
    Const(bool),
    /// A variable.
    Var(Var),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction of zero or more formulas (empty = true).
    And(Vec<Formula>),
    /// Disjunction of zero or more formulas (empty = false).
    Or(Vec<Formula>),
}

impl Formula {
    /// The constant `true`.
    pub fn tt() -> Self {
        Formula::Const(true)
    }

    /// The constant `false`.
    pub fn ff() -> Self {
        Formula::Const(false)
    }

    /// A variable formula.
    pub fn var(v: Var) -> Self {
        Formula::Var(v)
    }

    /// Negation with constant folding. (An associated constructor like
    /// [`Formula::and`], deliberately named after the connective.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Self {
        match f {
            Formula::Const(b) => Formula::Const(!b),
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// N-ary conjunction with flattening and constant folding.
    pub fn and<I: IntoIterator<Item = Formula>>(fs: I) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::Const(true) => {}
                Formula::Const(false) => return Formula::ff(),
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::tt(),
            1 => out.pop().expect("length checked"),
            _ => Formula::And(out),
        }
    }

    /// N-ary disjunction with flattening and constant folding.
    pub fn or<I: IntoIterator<Item = Formula>>(fs: I) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::Const(false) => {}
                Formula::Const(true) => return Formula::tt(),
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::ff(),
            1 => out.pop().expect("length checked"),
            _ => Formula::Or(out),
        }
    }

    /// The implication `self ⇒ rhs`.
    pub fn implies(self, rhs: Formula) -> Self {
        Formula::or([Formula::not(self), rhs])
    }

    /// Conjunction of two formulas.
    pub fn and2(self, rhs: Formula) -> Self {
        Formula::and([self, rhs])
    }

    /// Disjunction of two formulas.
    pub fn or2(self, rhs: Formula) -> Self {
        Formula::or([self, rhs])
    }

    /// Evaluates under the complete assignment "true iff member of
    /// `true_set`".
    pub fn eval(&self, true_set: &VarSet) -> bool {
        match self {
            Formula::Const(b) => *b,
            Formula::Var(v) => true_set.contains(*v),
            Formula::Not(f) => !f.eval(true_set),
            Formula::And(fs) => fs.iter().all(|f| f.eval(true_set)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(true_set)),
        }
    }

    /// Collects the variables occurring in the formula.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Formula::Const(_) => {}
            Formula::Var(v) => out.push(*v),
            Formula::Not(f) => f.collect_vars(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
        }
    }

    /// Converts to CNF via negation normal form and distribution of `∨` over
    /// `∧`.
    ///
    /// This is exact (no auxiliary variables). The dependency formulas of the
    /// type rules are conjunctions of implications whose right-hand sides are
    /// small, so the distribution does not blow up; pathological inputs cost
    /// time exponential in the nesting of `∨` over `∧`.
    pub fn to_cnf(&self) -> Cnf {
        let mut cnf = Cnf::new(0);
        self.to_cnf_into(&mut cnf);
        cnf
    }

    /// Appends this formula's clauses to an existing CNF (conjunction).
    pub fn to_cnf_into(&self, cnf: &mut Cnf) {
        let nnf = self.to_nnf(false);
        nnf.distribute(cnf);
    }

    /// Negation normal form: push negations to literals.
    fn to_nnf(&self, negate: bool) -> Nnf {
        match (self, negate) {
            (Formula::Const(b), n) => Nnf::Const(*b != n),
            (Formula::Var(v), n) => Nnf::Lit(Lit::with_polarity(*v, !n)),
            (Formula::Not(f), n) => f.to_nnf(!n),
            (Formula::And(fs), false) | (Formula::Or(fs), true) => {
                Nnf::And(fs.iter().map(|f| f.to_nnf(negate)).collect())
            }
            (Formula::Or(fs), false) | (Formula::And(fs), true) => {
                Nnf::Or(fs.iter().map(|f| f.to_nnf(negate)).collect())
            }
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Const(b) => write!(f, "{b}"),
            Formula::Var(v) => write!(f, "{v}"),
            Formula::Not(inner) => write!(f, "!{inner:?}"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Negation normal form used internally by CNF conversion.
enum Nnf {
    Const(bool),
    Lit(Lit),
    And(Vec<Nnf>),
    Or(Vec<Nnf>),
}

impl Nnf {
    /// Distributes into clauses appended to `cnf`.
    fn distribute(&self, cnf: &mut Cnf) {
        match self {
            Nnf::Const(true) => {}
            Nnf::Const(false) => {
                cnf.add_clause(Clause::empty());
            }
            Nnf::Lit(l) => {
                cnf.add_clause(Clause::unit(*l));
            }
            Nnf::And(fs) => {
                for f in fs {
                    f.distribute(cnf);
                }
            }
            Nnf::Or(fs) => {
                // Each disjunct yields a set of clauses; the disjunction is
                // the cross product.
                let mut acc: Vec<Vec<Lit>> = vec![Vec::new()];
                for f in fs {
                    let mut sub = Cnf::new(0);
                    f.distribute(&mut sub);
                    if sub.is_empty() {
                        // Disjunct is true: whole disjunction is true.
                        return;
                    }
                    let mut next = Vec::with_capacity(acc.len() * sub.len());
                    for base in &acc {
                        for c in sub.clauses() {
                            let mut lits = base.clone();
                            lits.extend_from_slice(c.lits());
                            next.push(lits);
                        }
                    }
                    acc = next;
                }
                for lits in acc {
                    cnf.add_clause(Clause::new(lits));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    fn fv(i: u32) -> Formula {
        Formula::var(v(i))
    }

    /// Exhaustively checks that `f` and its CNF agree on all assignments
    /// over `n` variables.
    fn assert_equisat(f: &Formula, n: usize) {
        let cnf = f.to_cnf();
        for bits in 0..(1u64 << n) {
            let mut s = VarSet::empty(n);
            for i in 0..n {
                if bits >> i & 1 == 1 {
                    s.insert(v(i as u32));
                }
            }
            assert_eq!(f.eval(&s), cnf.eval(&s), "mismatch at {s:?} for {f:?}");
        }
    }

    #[test]
    fn constants_fold() {
        assert_eq!(Formula::and([Formula::tt(), Formula::tt()]), Formula::tt());
        assert_eq!(Formula::and([fv(0), Formula::ff()]), Formula::ff());
        assert_eq!(Formula::or([Formula::ff(), Formula::ff()]), Formula::ff());
        assert_eq!(Formula::or([fv(0), Formula::tt()]), Formula::tt());
        assert_eq!(Formula::not(Formula::not(fv(0))), fv(0));
    }

    #[test]
    fn implication_cnf() {
        // (a & b) => (c | d) is one clause.
        let f = Formula::and([fv(0), fv(1)]).implies(Formula::or([fv(2), fv(3)]));
        let cnf = f.to_cnf();
        assert_eq!(cnf.len(), 1);
        assert_eq!(
            cnf.clauses()[0],
            Clause::implication([v(0), v(1)], [v(2), v(3)])
        );
        assert_equisat(&f, 4);
    }

    #[test]
    fn implication_with_conjunction_rhs() {
        // a => (b & c) is two clauses.
        let f = fv(0).implies(Formula::and([fv(1), fv(2)]));
        let cnf = f.to_cnf();
        assert_eq!(cnf.len(), 2);
        assert_equisat(&f, 3);
    }

    #[test]
    fn nested_distribution() {
        let f = Formula::or([Formula::and([fv(0), fv(1)]), Formula::and([fv(2), fv(3)])]);
        let cnf = f.to_cnf();
        assert_eq!(cnf.len(), 4);
        assert_equisat(&f, 4);
    }

    #[test]
    fn false_becomes_empty_clause() {
        let f = fv(0).implies(Formula::ff());
        let cnf = f.to_cnf();
        assert_eq!(cnf.len(), 1);
        assert_eq!(cnf.clauses()[0], Clause::unit(Lit::neg(v(0))));
        let g = Formula::ff();
        assert!(g.to_cnf().has_empty_clause());
    }

    #[test]
    fn vars_collected() {
        let f = Formula::and([fv(3), Formula::not(fv(1)), fv(3)]);
        assert_eq!(f.vars(), vec![v(1), v(3)]);
    }

    #[test]
    fn demorgan_equisat() {
        let f = Formula::not(Formula::and([
            fv(0),
            Formula::or([fv(1), Formula::not(fv(2))]),
        ]));
        assert_equisat(&f, 3);
    }

    #[test]
    fn tautological_or_is_dropped() {
        let f = Formula::or([fv(0), Formula::not(fv(0))]);
        let cnf = f.to_cnf();
        assert!(cnf.is_empty());
    }
}
