//! DIMACS CNF serialization, for interoperability with external SAT tools
//! (e.g. feeding a dependency model to sharpSAT, as the paper did).

use crate::{Clause, Cnf, Lit, Var};
use std::fmt::Write as _;

/// An error produced while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line where the problem was found.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// Renders `cnf` in DIMACS CNF format. Variables are 1-based as the format
/// requires.
///
/// # Examples
///
/// ```
/// use lbr_logic::{dimacs, Clause, Cnf, Var};
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause(Clause::edge(Var::new(0), Var::new(1)));
/// let text = dimacs::to_dimacs(&cnf);
/// assert!(text.starts_with("p cnf 2 1"));
/// ```
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.len());
    for c in cnf.clauses() {
        for l in c.lits() {
            let n = l.var().index() as i64 + 1;
            let _ = write!(out, "{} ", if l.is_positive() { n } else { -n });
        }
        out.push_str("0\n");
    }
    out
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, non-integer tokens,
/// variable indices exceeding the declared count, or clauses missing their
/// `0` terminator.
pub fn from_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut cnf = Cnf::new(0);
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: "expected 'p cnf <vars> <clauses>'".into(),
                });
            }
            let vars: usize =
                parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseDimacsError {
                        line: lineno,
                        message: "bad variable count".into(),
                    })?;
            num_vars = Some(vars);
            cnf.ensure_vars(vars);
            continue;
        }
        let declared = num_vars.ok_or_else(|| ParseDimacsError {
            line: lineno,
            message: "clause before 'p cnf' header".into(),
        })?;
        for tok in line.split_whitespace() {
            let n: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("bad literal {tok:?}"),
            })?;
            if n == 0 {
                cnf.add_clause(Clause::new(std::mem::take(&mut current)));
            } else {
                let idx = n.unsigned_abs() as usize;
                if idx > declared {
                    return Err(ParseDimacsError {
                        line: lineno,
                        message: format!("literal {n} exceeds declared {declared} variables"),
                    });
                }
                let var = Var::new((idx - 1) as u32);
                current.push(Lit::with_polarity(var, n > 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "unterminated clause (missing trailing 0)".into(),
        });
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::implication([v(1), v(2)], [v(3)]));
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        let text = to_dimacs(&cnf);
        let back = from_dimacs(&text).expect("parse");
        assert_eq!(back.num_vars(), 4);
        assert_eq!(back.clauses(), cnf.clauses());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "c a comment\n\np cnf 2 1\nc another\n1 -2 0\n";
        let cnf = from_dimacs(text).expect("parse");
        assert_eq!(cnf.len(), 1);
        assert_eq!(
            cnf.clauses()[0],
            Clause::new(vec![Lit::pos(v(0)), Lit::neg(v(1))])
        );
    }

    #[test]
    fn rejects_missing_header() {
        assert!(from_dimacs("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_unterminated_clause() {
        assert!(from_dimacs("p cnf 2 1\n1 2\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let err = from_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn clause_spanning_lines() {
        let cnf = from_dimacs("p cnf 3 1\n1 2\n3 0\n").expect("parse");
        assert_eq!(cnf.len(), 1);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }
}
