//! DIMACS CNF serialization, for interoperability with external SAT tools
//! (e.g. feeding a dependency model to sharpSAT, as the paper did).

use crate::{Clause, Cnf, Lit, Var};
use std::fmt::Write as _;

/// An error produced while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line where the problem was found.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// Renders `cnf` in DIMACS CNF format. Variables are 1-based as the format
/// requires.
///
/// # Examples
///
/// ```
/// use lbr_logic::{dimacs, Clause, Cnf, Var};
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause(Clause::edge(Var::new(0), Var::new(1)));
/// let text = dimacs::to_dimacs(&cnf);
/// assert!(text.starts_with("p cnf 2 1"));
/// ```
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.len());
    for c in cnf.clauses() {
        for l in c.lits() {
            let n = l.var().index() as i64 + 1;
            let _ = write!(out, "{} ", if l.is_positive() { n } else { -n });
        }
        out.push_str("0\n");
    }
    out
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, non-integer tokens,
/// variable indices exceeding the declared count, or clauses missing their
/// `0` terminator.
pub fn from_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut cnf = Cnf::new(0);
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: "expected 'p cnf <vars> <clauses>'".into(),
                });
            }
            let vars: usize =
                parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseDimacsError {
                        line: lineno,
                        message: "bad variable count".into(),
                    })?;
            num_vars = Some(vars);
            cnf.ensure_vars(vars);
            continue;
        }
        let declared = num_vars.ok_or_else(|| ParseDimacsError {
            line: lineno,
            message: "clause before 'p cnf' header".into(),
        })?;
        for tok in line.split_whitespace() {
            let n: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("bad literal {tok:?}"),
            })?;
            if n == 0 {
                cnf.add_clause(Clause::new(std::mem::take(&mut current)));
            } else {
                let idx = n.unsigned_abs() as usize;
                if idx > declared {
                    return Err(ParseDimacsError {
                        line: lineno,
                        message: format!("literal {n} exceeds declared {declared} variables"),
                    });
                }
                let var = Var::new((idx - 1) as u32);
                current.push(Lit::with_polarity(var, n > 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "unterminated clause (missing trailing 0)".into(),
        });
    }
    Ok(cnf)
}

/// Marker comment separating base clauses from learned clauses in
/// [`to_dimacs_with_learned`] output.
const LEARNED_MARKER: &str = "c learned";

/// Renders a CDCL engine state — base CNF plus learned clauses — as DIMACS
/// text an external solver can replay.
///
/// All clauses count toward the header (external solvers need no special
/// handling: learned clauses are implied, so the formula is equivalent),
/// and the learned section is prefixed with a `c learned` marker comment so
/// [`from_dimacs_with_learned`] can split the two groups back apart.
///
/// # Examples
///
/// ```
/// use lbr_logic::{dimacs, CdclEngine, Clause, Cnf, Var, VarOrder};
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause(Clause::edge(Var::new(0), Var::new(1)));
/// let engine = CdclEngine::new(&cnf, 2);
/// let text = dimacs::to_dimacs_with_learned(&cnf, &engine.export_learned());
/// let (base, learned) = dimacs::from_dimacs_with_learned(&text).unwrap();
/// assert_eq!(base.clauses(), cnf.clauses());
/// assert!(learned.is_empty());
/// ```
pub fn to_dimacs_with_learned(cnf: &Cnf, learned: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "p cnf {} {}",
        cnf.num_vars(),
        cnf.len() + learned.len()
    );
    for c in cnf.clauses() {
        write_clause(&mut out, c.lits());
    }
    if !learned.is_empty() {
        out.push_str(LEARNED_MARKER);
        out.push('\n');
        for c in learned {
            write_clause(&mut out, c);
        }
    }
    out
}

fn write_clause(out: &mut String, lits: &[Lit]) {
    for l in lits {
        let n = l.var().index() as i64 + 1;
        let _ = write!(out, "{} ", if l.is_positive() { n } else { -n });
    }
    out.push_str("0\n");
}

/// Parses DIMACS text produced by [`to_dimacs_with_learned`], returning the
/// base CNF and the learned clauses separately. Text without a `c learned`
/// marker parses as a base CNF with no learned clauses, so plain
/// [`to_dimacs`] output round-trips too.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] under the same conditions as
/// [`from_dimacs`].
pub fn from_dimacs_with_learned(text: &str) -> Result<(Cnf, Vec<Vec<Lit>>), ParseDimacsError> {
    // Split at the marker line; each half is plain DIMACS (the learned half
    // gets a synthetic header so the shared parser accepts it).
    let marker = text.lines().position(|l| l.trim() == LEARNED_MARKER);
    let Some(marker) = marker else {
        return Ok((from_dimacs(text)?, Vec::new()));
    };
    let base_text: String = text
        .lines()
        .take(marker)
        .map(|l| format!("{l}\n"))
        .collect();
    let base = from_dimacs(&base_text)?;
    let learned_text: String = std::iter::once(format!("p cnf {} 0\n", base.num_vars()))
        .chain(text.lines().skip(marker + 1).map(|l| format!("{l}\n")))
        .collect();
    let learned_cnf = from_dimacs(&learned_text).map_err(|mut e| {
        e.line += marker; // report positions in the original text
        e
    })?;
    let learned = learned_cnf
        .clauses()
        .iter()
        .map(|c| c.lits().to_vec())
        .collect();
    Ok((base, learned))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::implication([v(1), v(2)], [v(3)]));
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        let text = to_dimacs(&cnf);
        let back = from_dimacs(&text).expect("parse");
        assert_eq!(back.num_vars(), 4);
        assert_eq!(back.clauses(), cnf.clauses());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "c a comment\n\np cnf 2 1\nc another\n1 -2 0\n";
        let cnf = from_dimacs(text).expect("parse");
        assert_eq!(cnf.len(), 1);
        assert_eq!(
            cnf.clauses()[0],
            Clause::new(vec![Lit::pos(v(0)), Lit::neg(v(1))])
        );
    }

    #[test]
    fn rejects_missing_header() {
        assert!(from_dimacs("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_unterminated_clause() {
        assert!(from_dimacs("p cnf 2 1\n1 2\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let err = from_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn clause_spanning_lines() {
        let cnf = from_dimacs("p cnf 3 1\n1 2\n3 0\n").expect("parse");
        assert_eq!(cnf.len(), 1);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn learned_round_trip_from_real_engine_state() {
        // An unsatisfiable pigeonhole forces the engine to learn clauses;
        // the exported state must round-trip exactly.
        let (pigeons, holes) = (4u32, 3u32);
        let mut cnf = Cnf::new((pigeons * holes) as usize);
        let x = |i: u32, j: u32| v(i * holes + j);
        for i in 0..pigeons {
            cnf.add_clause(Clause::implication([], (0..holes).map(|j| x(i, j))));
        }
        for j in 0..holes {
            for i in 0..pigeons {
                for k in i + 1..pigeons {
                    cnf.add_clause(Clause::new(vec![Lit::neg(x(i, j)), Lit::neg(x(k, j))]));
                }
            }
        }
        let mut engine = crate::CdclEngine::new(&cnf, 12);
        assert_eq!(engine.solve(&crate::VarOrder::natural(12), &[]), None);
        let learned = engine.export_learned();
        assert!(!learned.is_empty(), "refutation must learn clauses");

        let text = to_dimacs_with_learned(&cnf, &learned);
        let (base_back, learned_back) = from_dimacs_with_learned(&text).expect("parse");
        assert_eq!(base_back.clauses(), cnf.clauses());
        assert_eq!(learned_back, learned);
        // The header counts both groups, so external solvers that ignore
        // the marker still read a well-formed equivalent formula.
        let merged = from_dimacs(&text).expect("parse as plain dimacs");
        assert_eq!(merged.len(), cnf.len() + learned.len());
    }

    #[test]
    fn learned_round_trip_without_learned_section() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        let text = to_dimacs_with_learned(&cnf, &[]);
        assert!(!text.contains("c learned"));
        let (base, learned) = from_dimacs_with_learned(&text).expect("parse");
        assert_eq!(base.clauses(), cnf.clauses());
        assert!(learned.is_empty());
        // Plain to_dimacs output parses through the learned-aware reader.
        let (base2, learned2) = from_dimacs_with_learned(&to_dimacs(&cnf)).expect("parse");
        assert_eq!(base2.clauses(), cnf.clauses());
        assert!(learned2.is_empty());
    }
}
