//! Differential tests: the incremental watched-literal engine must agree
//! exactly with the scan-based reference implementations on randomized
//! CNFs — same BCP fixpoints, same MSA sets, same DPLL verdicts, under no
//! conditioning and under random assumption sets.

use lbr_logic::{
    dpll, engine, msa, msa_scan, Clause, Cnf, Engine, Lit, MsaStrategy, PartialAssignment,
    Propagation, Var, VarOrder, VarSet,
};
use lbr_prng::{SliceChoose, SplitMix64};

fn v(i: u32) -> Var {
    Var::new(i)
}

/// A random mixed-polarity CNF: edges, general implications, positive
/// disjunctions, and a few purely negative clauses.
fn random_cnf(rng: &mut SplitMix64, nvars: usize) -> Cnf {
    let mut cnf = Cnf::new(nvars);
    let nclauses = rng.gen_range(1..3 * nvars);
    for _ in 0..nclauses {
        let len = rng.gen_range(1..=4usize);
        let lits: Vec<Lit> = (0..len)
            .map(|_| {
                let var = v(rng.gen_range(0..nvars as u32));
                Lit::with_polarity(var, rng.gen_bool(0.6))
            })
            .collect();
        cnf.add_clause(Clause::new(lits));
    }
    cnf
}

/// A random variable order (a shuffled permutation).
fn random_order(rng: &mut SplitMix64, nvars: usize) -> VarOrder {
    let perm: Vec<Var> = (0..nvars as u32)
        .map(v)
        .collect::<Vec<_>>()
        .shuffled(rng)
        .into_iter()
        .copied()
        .collect();
    VarOrder::from_permutation(perm)
}

#[test]
fn engine_level0_bcp_matches_scan_bcp() {
    for seed in 0..200u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let nvars = rng.gen_range(2..24usize);
        let cnf = random_cnf(&mut rng, nvars);
        let mut pa = PartialAssignment::new(nvars);
        let scan_conflict = matches!(lbr_logic::propagate(&cnf, &mut pa), Propagation::Conflict);
        let engine = Engine::new(&cnf, nvars);
        assert_eq!(
            !engine.is_ok(),
            scan_conflict,
            "seed {seed}: conflict verdicts differ"
        );
        if engine.is_ok() {
            for i in 0..nvars {
                assert_eq!(
                    engine.value(v(i as u32)),
                    pa.value(v(i as u32)),
                    "seed {seed}: value of v{i} differs at level 0"
                );
            }
        }
    }
}

#[test]
fn engine_msa_matches_scan_msa() {
    for seed in 0..200u64 {
        let mut rng = SplitMix64::seed_from_u64(1000 + seed);
        let nvars = rng.gen_range(2..20usize);
        let cnf = random_cnf(&mut rng, nvars);
        let order = random_order(&mut rng, nvars);
        for strategy in MsaStrategy::ALL {
            let scan = msa_scan(&cnf, &order, strategy);
            let fast = msa(&cnf, &order, strategy);
            assert_eq!(fast, scan, "seed {seed} {strategy:?}");
        }
    }
}

#[test]
fn engine_msa_under_assumptions_matches_restricted_scan() {
    for seed in 0..150u64 {
        let mut rng = SplitMix64::seed_from_u64(2000 + seed);
        let nvars = rng.gen_range(4..18usize);
        let cnf = random_cnf(&mut rng, nvars);
        let order = random_order(&mut rng, nvars);
        // A random restriction: keep ~2/3 of the variables.
        let keep = VarSet::from_iter_with_universe(
            nvars,
            (0..nvars as u32).map(v).filter(|_| rng.gen_bool(0.66)),
        );
        let no_force = VarSet::empty(nvars);
        let restricted = cnf.restrict(&keep, &no_force);
        let assumptions: Vec<Lit> = (0..nvars as u32)
            .map(v)
            .filter(|x| !keep.contains(*x))
            .map(Lit::neg)
            .collect();
        for strategy in MsaStrategy::ALL {
            let scan = msa_scan(&restricted, &order, strategy);
            let mut eng = Engine::new(&cnf, nvars);
            let fast = if eng.is_ok() && eng.assume_all(&assumptions) {
                engine::msa_from_state(&mut eng, &order, strategy)
            } else {
                None
            };
            // The engine reports absolute trues; under a pure restriction
            // (no forced-true seeds) the scan's set is already absolute.
            assert_eq!(fast, scan, "seed {seed} {strategy:?}");
        }
    }
}

#[test]
fn engine_dpll_matches_scan_dpll() {
    for seed in 0..200u64 {
        let mut rng = SplitMix64::seed_from_u64(3000 + seed);
        let nvars = rng.gen_range(2..16usize);
        let cnf = random_cnf(&mut rng, nvars);
        let order = random_order(&mut rng, nvars);
        let scan = dpll::solve(&cnf, &order);
        let mut eng = Engine::new(&cnf, nvars);
        let fast = if eng.is_ok() {
            engine::solve_from_state(&mut eng, &order)
        } else {
            None
        };
        assert_eq!(fast, scan, "seed {seed}");
    }
}

#[test]
fn assume_backtrack_roundtrip_preserves_state() {
    for seed in 0..100u64 {
        let mut rng = SplitMix64::seed_from_u64(4000 + seed);
        let nvars = rng.gen_range(4..20usize);
        let cnf = random_cnf(&mut rng, nvars);
        let mut eng = Engine::new(&cnf, nvars);
        if !eng.is_ok() {
            continue;
        }
        let baseline: Vec<Option<bool>> = (0..nvars as u32).map(|i| eng.value(v(i))).collect();
        // Random walks of assumptions, then full backtracking.
        for _ in 0..4 {
            let depth = rng.gen_range(1..=4usize);
            for _ in 0..depth {
                let var = v(rng.gen_range(0..nvars as u32));
                let lit = Lit::with_polarity(var, rng.gen_bool(0.5));
                if !eng.assume(lit) {
                    break; // conflict: state above the failed level is junk
                }
            }
            eng.backtrack(0);
            let now: Vec<Option<bool>> = (0..nvars as u32).map(|i| eng.value(v(i))).collect();
            assert_eq!(now, baseline, "seed {seed}: level-0 state corrupted");
            assert!(eng.trail().len() <= nvars);
        }
        // After the churn the engine still answers queries correctly.
        let order = VarOrder::natural(nvars);
        let scan = msa_scan(&cnf, &order, MsaStrategy::GreedyClosure);
        let fast = engine::msa_from_state(&mut eng, &order, MsaStrategy::GreedyClosure);
        assert_eq!(fast, scan, "seed {seed}");
    }
}
