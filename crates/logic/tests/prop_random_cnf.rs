//! Property tests over random CNFs (≤ 12 variables).
//!
//! Every formula is small enough to brute-force, so the fast paths are
//! checked against exhaustive or reference implementations:
//!
//! - `msa` (incremental engine) and `msa_scan` (rescan reference) return
//!   identical sets for every strategy and order — the documented contract.
//! - Any returned assignment is a genuine model (member of the exhaustive
//!   `all_models` enumeration), and `msa` finds one iff the formula is
//!   satisfiable.
//! - The minimizing strategies return sets that are minimal with respect to
//!   single removals, checked by actually removing each member.
//! - Unit propagation in the watched-literal `Engine` agrees with the naive
//!   full-rescan `propagate`, both from scratch and under random assumptions.

use lbr_logic::{
    dpll, msa, msa_scan, propagate, Clause, Cnf, Engine, Lit, MsaStrategy, PartialAssignment,
    Propagation, Var, VarOrder, VarSet,
};
use lbr_prng::SplitMix64;

/// A random CNF with `1..=12` variables and short mixed-polarity clauses.
fn random_cnf(rng: &mut SplitMix64) -> Cnf {
    let n = rng.gen_range(1usize..=12);
    let mut cnf = Cnf::new(n);
    let clauses = rng.gen_range(1usize..=2 * n + 4);
    for _ in 0..clauses {
        let width = rng.gen_range(1usize..=3);
        let lits: Vec<Lit> = (0..width)
            .map(|_| {
                let v = Var::new(rng.gen_range(0usize..n) as u32);
                if rng.gen_bool(0.5) {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect();
        cnf.add_clause(Clause::new(lits)); // tautologies are silently dropped
    }
    cnf
}

/// Exhaustive model set; `None` sentinel is impossible at ≤ 12 vars since the
/// limit exceeds 2^12.
fn models(cnf: &Cnf) -> Vec<VarSet> {
    let out = dpll::all_models(cnf, 1 << 13);
    assert!(out.len() < 1 << 13, "enumeration hit the limit");
    out
}

#[test]
fn msa_engine_matches_scan_for_every_strategy_and_order() {
    let mut rng = SplitMix64::seed_from_u64(0x1060_31C5);
    for _ in 0..300 {
        let cnf = random_cnf(&mut rng);
        let natural = VarOrder::natural(cnf.num_vars());
        for order in [natural.reversed(), natural] {
            for strategy in MsaStrategy::ALL {
                let fast = msa(&cnf, &order, strategy);
                let scan = msa_scan(&cnf, &order, strategy);
                assert_eq!(
                    fast,
                    scan,
                    "{}: engine/scan disagree on {cnf:?}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn msa_results_are_models_and_existence_matches_brute_force() {
    let mut rng = SplitMix64::seed_from_u64(0x5A7_15F1);
    for _ in 0..300 {
        let cnf = random_cnf(&mut rng);
        let order = VarOrder::natural(cnf.num_vars());
        let all = models(&cnf);
        let satisfiable = !all.is_empty();
        assert_eq!(dpll::is_satisfiable(&cnf), satisfiable);
        assert_eq!(dpll::solve(&cnf, &order).is_some(), satisfiable);
        for strategy in MsaStrategy::ALL {
            match msa(&cnf, &order, strategy) {
                Some(m) => {
                    assert!(satisfiable, "{}: model for unsat formula", strategy.name());
                    assert!(
                        all.contains(&m),
                        "{}: {m:?} not among the {} brute-force models of {cnf:?}",
                        strategy.name(),
                        all.len()
                    );
                }
                None => assert!(
                    !satisfiable,
                    "{}: missed a model of {cnf:?}",
                    strategy.name()
                ),
            }
        }
    }
}

#[test]
fn minimizing_strategies_are_single_removal_minimal() {
    let mut rng = SplitMix64::seed_from_u64(0x3141_5A1F);
    for _ in 0..300 {
        let cnf = random_cnf(&mut rng);
        let order = VarOrder::natural(cnf.num_vars());
        for strategy in [MsaStrategy::GreedyMinimize, MsaStrategy::DpllMinimize] {
            let Some(m) = msa(&cnf, &order, strategy) else {
                continue;
            };
            for v in m.iter().collect::<Vec<_>>() {
                let mut smaller = m.clone();
                smaller.remove(v);
                assert!(
                    !cnf.eval(&smaller),
                    "{}: {v:?} is removable from {m:?} for {cnf:?}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn engine_propagation_matches_naive_rescan() {
    let mut rng = SplitMix64::seed_from_u64(0xE9_61_4E);
    for _ in 0..300 {
        let cnf = random_cnf(&mut rng);
        let n = cnf.num_vars();
        let mut engine = Engine::new(&cnf, n);
        let mut pa = PartialAssignment::new(n);
        let scan_ok = !matches!(propagate(&cnf, &mut pa), Propagation::Conflict);
        assert_eq!(engine.is_ok(), scan_ok, "initial BCP disagrees on {cnf:?}");
        if !scan_ok {
            continue;
        }
        for i in 0..n {
            let v = Var::new(i as u32);
            assert_eq!(
                engine.value(v),
                pa.value(v),
                "{v:?} after initial BCP of {cnf:?}"
            );
        }

        // Push random assumptions; both sides must imply the same values or
        // both detect the conflict.
        for _ in 0..n {
            let v = Var::new(rng.gen_range(0usize..n) as u32);
            if engine.value(v).is_some() {
                continue;
            }
            let lit = if rng.gen_bool(0.5) {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            };
            let engine_ok = engine.assume(lit);
            pa.assign(lit);
            let scan_ok = !matches!(propagate(&cnf, &mut pa), Propagation::Conflict);
            assert_eq!(
                engine_ok, scan_ok,
                "conflict detection after {lit:?} on {cnf:?}"
            );
            if !engine_ok {
                break;
            }
            for i in 0..n {
                let u = Var::new(i as u32);
                assert_eq!(
                    engine.value(u),
                    pa.value(u),
                    "{u:?} after assuming {lit:?} on {cnf:?}"
                );
            }
        }
    }
}
