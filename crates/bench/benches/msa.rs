//! A1 — MSA strategy ablation: cost of the three approximate
//! minimal-satisfying-assignment procedures on a real dependency model.

use lbr_bench::microbench::bench;
use lbr_jreduce::build_model;
use lbr_logic::{msa, MsaStrategy, VarOrder};
use lbr_workload::{generate, WorkloadConfig};

fn main() {
    let program = generate(&WorkloadConfig {
        seed: 5,
        classes: 36,
        interfaces: 9,
        plant: lbr_decompiler::BugKind::ALL.to_vec(),
        ..WorkloadConfig::default()
    });
    let model = build_model(&program).expect("valid input");
    let order = lbr_core::closure_size_order(&model.cnf);
    let natural = VarOrder::natural(model.cnf.num_vars());

    for strategy in MsaStrategy::ALL {
        bench(&format!("msa/closure-order/{}", strategy.name()), || {
            msa(&model.cnf, &order, strategy)
                .expect("satisfiable")
                .len()
        });
        bench(&format!("msa/natural-order/{}", strategy.name()), || {
            msa(&model.cnf, &natural, strategy)
                .expect("satisfiable")
                .len()
        });
    }
}
