//! A1 — MSA strategy ablation: cost of the three approximate
//! minimal-satisfying-assignment procedures on a real dependency model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbr_jreduce::build_model;
use lbr_logic::{msa, MsaStrategy, VarOrder};
use lbr_workload::{generate, WorkloadConfig};

fn bench_msa(c: &mut Criterion) {
    let program = generate(&WorkloadConfig {
        seed: 5,
        classes: 36,
        interfaces: 9,
        plant: lbr_decompiler::BugKind::ALL.to_vec(),
        ..WorkloadConfig::default()
    });
    let model = build_model(&program).expect("valid input");
    let order = lbr_core::closure_size_order(&model.cnf);
    let natural = VarOrder::natural(model.cnf.num_vars());

    let mut group = c.benchmark_group("msa");
    for strategy in MsaStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("closure-order", strategy.name()),
            &strategy,
            |b, &s| b.iter(|| msa(&model.cnf, &order, s).expect("satisfiable").len()),
        );
        group.bench_with_input(
            BenchmarkId::new("natural-order", strategy.name()),
            &strategy,
            |b, &s| b.iter(|| msa(&model.cnf, &natural, s).expect("satisfiable").len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_msa);
criterion_main!(benches);
