//! Class-file substrate benchmarks: binary writer/reader throughput and
//! whole-program verification.

use lbr_bench::microbench::bench;
use lbr_classfile::{read_program, verify_program, write_program};
use lbr_workload::{generate, WorkloadConfig};

fn programs() -> Vec<(usize, lbr_classfile::Program)> {
    [12usize, 48, 96]
        .into_iter()
        .map(|classes| {
            let p = generate(&WorkloadConfig {
                seed: 9,
                classes,
                interfaces: classes / 4,
                plant: vec![],
                ..WorkloadConfig::default()
            });
            (classes, p)
        })
        .collect()
}

fn main() {
    for (classes, program) in programs() {
        let bytes = write_program(&program);
        println!("# {classes} classes = {} bytes", bytes.len());
        bench(&format!("classfile-write/{classes}"), || {
            write_program(&program).len()
        });
        bench(&format!("classfile-read/{classes}"), || {
            read_program(&bytes).expect("decodes").len()
        });
        bench(&format!("classfile-verify/{classes}"), || {
            verify_program(&program).len()
        });
    }
}
