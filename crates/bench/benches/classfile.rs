//! Class-file substrate benchmarks: binary writer/reader throughput and
//! whole-program verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lbr_classfile::{read_program, verify_program, write_program};
use lbr_workload::{generate, WorkloadConfig};

fn programs() -> Vec<(usize, lbr_classfile::Program)> {
    [12usize, 48, 96]
        .into_iter()
        .map(|classes| {
            let p = generate(&WorkloadConfig {
                seed: 9,
                classes,
                interfaces: classes / 4,
                plant: vec![],
                ..WorkloadConfig::default()
            });
            (classes, p)
        })
        .collect()
}

fn bench_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("classfile-write");
    for (classes, program) in programs() {
        let bytes = write_program(&program).len() as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::from_parameter(classes), &program, |b, p| {
            b.iter(|| write_program(p).len())
        });
    }
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("classfile-read");
    for (classes, program) in programs() {
        let bytes = write_program(&program);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(classes), &bytes, |b, data| {
            b.iter(|| read_program(data).expect("decodes").len())
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("classfile-verify");
    for (classes, program) in programs() {
        group.bench_with_input(BenchmarkId::from_parameter(classes), &program, |b, p| {
            b.iter(|| verify_program(p).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_write, bench_read, bench_verify);
criterion_main!(benches);
