//! End-to-end pipeline benchmarks: one full reduction per strategy on a
//! small NJR-like benchmark (this is the expensive, headline comparison —
//! Criterion sample counts are reduced accordingly).

use criterion::{criterion_group, criterion_main, Criterion};
use lbr_core::LossyPick;
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{build_model, run_reduction, Strategy};
use lbr_logic::MsaStrategy;
use lbr_workload::{generate, WorkloadConfig};

fn bench_pipeline(c: &mut Criterion) {
    let program = generate(&WorkloadConfig {
        seed: 13,
        classes: 24,
        interfaces: 8,
        plant: BugSet::decompiler_a().kinds().to_vec(),
        ..WorkloadConfig::default()
    });
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
    assert!(oracle.is_failing());

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for strategy in [
        Strategy::JReduce,
        Strategy::Logical(MsaStrategy::GreedyClosure),
        Strategy::Lossy(LossyPick::FirstFirst),
        Strategy::Lossy(LossyPick::LastLast),
    ] {
        group.bench_function(strategy.name(), |b| {
            b.iter(|| {
                run_reduction(&program, &oracle, strategy, 0.0)
                    .expect("reduces")
                    .final_metrics
                    .bytes
            })
        });
    }
    group.finish();
}

fn bench_model_generation(c: &mut Criterion) {
    let program = generate(&WorkloadConfig {
        seed: 13,
        classes: 48,
        interfaces: 12,
        plant: vec![],
        ..WorkloadConfig::default()
    });
    c.bench_function("build-model-48-classes", |b| {
        b.iter(|| build_model(&program).expect("valid").cnf.len())
    });
}

criterion_group!(benches, bench_pipeline, bench_model_generation);
criterion_main!(benches);
