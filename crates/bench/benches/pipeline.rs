//! End-to-end pipeline benchmarks: one full reduction per strategy on a
//! small NJR-like benchmark (this is the expensive, headline comparison).

use lbr_bench::microbench::bench;
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{build_model, run_reduction};
use lbr_workload::{generate, WorkloadConfig};

fn bench_pipeline() {
    let program = generate(&WorkloadConfig {
        seed: 13,
        classes: 24,
        interfaces: 8,
        plant: BugSet::decompiler_a().kinds().to_vec(),
        ..WorkloadConfig::default()
    });
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
    assert!(oracle.is_failing());

    for strategy in ["jreduce", "logical/greedy", "lossy-1", "lossy-2"] {
        bench(&format!("pipeline/{strategy}"), || {
            run_reduction(&program, &oracle, strategy, 0.0)
                .expect("reduces")
                .final_metrics
                .bytes
        });
    }
}

fn bench_model_generation() {
    let program = generate(&WorkloadConfig {
        seed: 13,
        classes: 48,
        interfaces: 12,
        plant: vec![],
        ..WorkloadConfig::default()
    });
    bench("build-model-48-classes", || {
        build_model(&program).expect("valid").cnf.len()
    });
}

fn main() {
    bench_pipeline();
    bench_model_generation();
}
