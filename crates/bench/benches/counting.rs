//! Model-counting benchmarks: the Section 2 example (6,766 models) and
//! larger structured instances (component decomposition at work).

use lbr_bench::microbench::bench;
use lbr_fji::{figure1_program, figure2_dependency_cnf, ItemRegistry};
use lbr_logic::{count_models, Clause, Cnf, Var};

fn bench_figure2() {
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let cnf = figure2_dependency_cnf(&reg);
    bench("count-figure2", || {
        let n = count_models(&cnf);
        assert_eq!(n, 6_766);
        n
    });
}

fn bench_forests() {
    for n in [40usize, 80, 160] {
        // Chains of 4 plus one mAny-style clause per chain.
        let mut cnf = Cnf::new(n);
        for k in 0..n / 4 {
            for i in 0..3 {
                cnf.add_clause(Clause::edge(
                    Var::new((4 * k + i) as u32),
                    Var::new((4 * k + i + 1) as u32),
                ));
            }
            cnf.add_clause(Clause::implication(
                [Var::new((4 * k) as u32)],
                [Var::new((4 * k + 1) as u32), Var::new((4 * k + 2) as u32)],
            ));
        }
        bench(&format!("count-forest/{n}"), || count_models(&cnf));
    }
}

fn main() {
    bench_figure2();
    bench_forests();
}
