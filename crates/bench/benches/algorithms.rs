//! Core-algorithm microbenchmarks: GBR vs Binary Reduction vs ddmin on
//! synthetic dependency forests (no bytecode involved).

use lbr_bench::microbench::bench;
use lbr_core::{
    binary_reduction, closure_size_order, ddmin, generalized_binary_reduction, DepGraph, GbrConfig,
    Instance, TestOutcome,
};
use lbr_logic::{Clause, Cnf, Var, VarSet};

/// `n` variables arranged as chains of 4 (`4k ⇒ 4k+1 ⇒ 4k+2 ⇒ 4k+3`).
fn forest_cnf(n: usize) -> Cnf {
    let mut cnf = Cnf::new(n);
    for k in 0..n / 4 {
        for i in 0..3 {
            cnf.add_clause(Clause::edge(
                Var::new((4 * k + i) as u32),
                Var::new((4 * k + i + 1) as u32),
            ));
        }
    }
    cnf
}

/// The bug needs the tails of two specific chains.
fn needed(n: usize) -> [Var; 2] {
    [Var::new((n / 2 + 3) as u32), Var::new(3)]
}

fn bench_gbr() {
    for n in [64usize, 256, 1024] {
        let cnf = forest_cnf(n);
        let order = closure_size_order(&cnf);
        let instance = Instance::over_all_vars(cnf);
        let [a, b] = needed(n);
        bench(&format!("gbr-forest/{n}"), || {
            let mut bug = |s: &VarSet| s.contains(a) && s.contains(b);
            generalized_binary_reduction(&instance, &order, &mut bug, &GbrConfig::default())
                .expect("reduces")
                .solution
                .len()
        });
    }
}

fn bench_binary_reduction() {
    for n in [64usize, 256, 1024] {
        let cnf = forest_cnf(n);
        let graph = DepGraph::from_graph_cnf(&cnf).expect("graph constraints");
        let [a, b] = needed(n);
        bench(&format!("binary-reduction-forest/{n}"), || {
            let mut bug = |s: &VarSet| s.contains(a) && s.contains(b);
            binary_reduction(&graph, &mut bug)
                .expect("reduces")
                .solution
                .len()
        });
    }
}

fn bench_ddmin() {
    for n in [64usize, 256] {
        let cnf = forest_cnf(n);
        let atoms: Vec<VarSet> = (0..n as u32)
            .map(|i| VarSet::from_iter_with_universe(n, [Var::new(i)]))
            .collect();
        let [a, b] = needed(n);
        bench(&format!("ddmin-forest/{n}"), || {
            let (result, _) = ddmin(&atoms, n, |s| {
                if !cnf.eval(s) {
                    TestOutcome::Unresolved
                } else if s.contains(a) && s.contains(b) {
                    TestOutcome::Fail
                } else {
                    TestOutcome::Pass
                }
            });
            result.len()
        });
    }
}

fn main() {
    bench_gbr();
    bench_binary_reduction();
    bench_ddmin();
}
