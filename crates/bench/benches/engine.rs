//! Incremental propagation engine vs the scan baseline, and the CDCL
//! solver vs DPLL.
//!
//! Four levels: raw MSA (engine-backed `msa` vs the preserved
//! `msa_scan`), repeated assumption probes (one warm CDCL engine reusing
//! learned clauses vs cold DPLL per probe), one full GBR reduction
//! (`PropagationMode::Incremental` under DPLL vs CDCL vs `LegacyScan`),
//! and the end-to-end pipeline (`RunOptions::default()` vs CDCL vs
//! `RunOptions::legacy()`). The speedup ratios back the numbers quoted
//! in `EXPERIMENTS.md`.

use lbr_bench::microbench::{bench, fmt_duration};
use lbr_core::{
    closure_size_order, generalized_binary_reduction, EngineChoice, GbrConfig, Instance, Oracle,
    PropagationMode,
};
use lbr_jreduce::{build_model, run_reduction_with, RunOptions};
use lbr_logic::{dpll, msa, msa_scan, CdclEngine, Lit, MsaStrategy, VarSet};
use lbr_workload::{generate, WorkloadConfig};

fn main() {
    let program = generate(&WorkloadConfig {
        seed: 5,
        classes: 36,
        interfaces: 9,
        plant: lbr_decompiler::BugKind::ALL.to_vec(),
        ..WorkloadConfig::default()
    });
    let model = build_model(&program).expect("valid input");
    let order = closure_size_order(&model.cnf);

    let engine = bench("msa/engine", || {
        msa(&model.cnf, &order, MsaStrategy::GreedyClosure)
            .expect("satisfiable")
            .len()
    });
    let scan = bench("msa/scan", || {
        msa_scan(&model.cnf, &order, MsaStrategy::GreedyClosure)
            .expect("satisfiable")
            .len()
    });
    println!(
        "  -> msa speedup: {:.1}x ({} vs {})",
        scan.as_secs_f64() / engine.as_secs_f64().max(1e-12),
        fmt_duration(scan),
        fmt_duration(engine)
    );

    // Repeated assumption probes — the solver workload of a reduction
    // run. DPLL restarts from scratch on every probe; one warm CDCL
    // engine carries its learned clauses from probe to probe.
    let probe_vars: Vec<Lit> = (0..model.cnf.num_vars())
        .map(|i| Lit::pos(lbr_logic::Var::new(i as u32)))
        .step_by(3)
        .collect();
    let dpll_probes = bench("solve/dpll-probes", || {
        let mut models = 0usize;
        for &l in &probe_vars {
            if dpll::solve_with_assumptions(&model.cnf, &order, &[l]).is_some() {
                models += 1;
            }
        }
        models
    });
    let cdcl_probes = bench("solve/cdcl-probes", || {
        let mut engine = CdclEngine::new(&model.cnf, model.cnf.num_vars());
        let mut models = 0usize;
        for &l in &probe_vars {
            if engine.solve(&order, &[l]).is_some() {
                models += 1;
            }
        }
        models
    });
    println!(
        "  -> probe speedup (cdcl vs dpll): {:.1}x ({} vs {})",
        dpll_probes.as_secs_f64() / cdcl_probes.as_secs_f64().max(1e-12),
        fmt_duration(dpll_probes),
        fmt_duration(cdcl_probes)
    );

    // One GBR search against a fixed (cheap) predicate: incremental
    // propagation backed by DPLL, by CDCL, and the legacy scan baseline.
    let instance = Instance::new(VarSet::full(model.cnf.num_vars()), model.cnf.clone());
    let needed = instance.vars.iter().take(3).collect::<Vec<_>>();
    let mut gbr_times = Vec::new();
    for (name, mode, engine_choice) in [
        (
            "incremental-dpll",
            PropagationMode::Incremental,
            EngineChoice::Dpll,
        ),
        (
            "incremental-cdcl",
            PropagationMode::Incremental,
            EngineChoice::Cdcl,
        ),
        (
            "legacy-scan",
            PropagationMode::LegacyScan,
            EngineChoice::Dpll,
        ),
    ] {
        let t = bench(&format!("gbr/{name}"), || {
            let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
            let mut oracle = Oracle::new(&mut bug, 0.0);
            let config = GbrConfig {
                propagation: mode,
                engine: engine_choice,
                ..GbrConfig::default()
            };
            generalized_binary_reduction(&instance, &order, &mut oracle, &config)
                .expect("reduces")
                .solution
                .len()
        });
        gbr_times.push(t);
    }
    println!(
        "  -> gbr speedup vs scan: dpll {:.1}x, cdcl {:.1}x",
        gbr_times[2].as_secs_f64() / gbr_times[0].as_secs_f64().max(1e-12),
        gbr_times[2].as_secs_f64() / gbr_times[1].as_secs_f64().max(1e-12)
    );

    // Probe-cost breakdown: what one oracle probe is made of.
    let registry = &model.registry;
    let keep = VarSet::full(model.cnf.num_vars());
    let probe_oracle =
        lbr_decompiler::DecompilerOracle::new(&program, lbr_decompiler::BugSet::decompiler_a());
    bench("probe/reduce-program", || {
        lbr_jreduce::reduce_program(&program, registry, &keep).len()
    });
    let candidate = lbr_jreduce::reduce_program(&program, registry, &keep);
    bench("probe/byte-size", || {
        lbr_classfile::program_byte_size(&candidate)
    });
    bench("probe/decompile-errors", || {
        probe_oracle.errors(&candidate).len()
    });

    // End-to-end pipeline: real decompiler predicate, memo on vs off.
    let oracle =
        lbr_decompiler::DecompilerOracle::new(&program, lbr_decompiler::BugSet::decompiler_a());
    let mut pipeline_times = Vec::new();
    for (name, options) in [
        ("default", RunOptions::default()),
        (
            "cdcl",
            RunOptions {
                engine: EngineChoice::Cdcl,
                ..RunOptions::default()
            },
        ),
        ("legacy", RunOptions::legacy()),
    ] {
        let t = bench(&format!("pipeline/logical-greedy/{name}"), || {
            run_reduction_with(&program, &oracle, "logical/greedy", 0.0, &options)
                .expect("reduces")
                .final_metrics
                .bytes
        });
        pipeline_times.push(t);
    }
    println!(
        "  -> end-to-end speedup vs legacy: dpll {:.1}x, cdcl {:.1}x",
        pipeline_times[2].as_secs_f64() / pipeline_times[0].as_secs_f64().max(1e-12),
        pipeline_times[2].as_secs_f64() / pipeline_times[1].as_secs_f64().max(1e-12)
    );
}
