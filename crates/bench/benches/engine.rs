//! Incremental propagation engine vs the scan baseline.
//!
//! Three levels: raw MSA (engine-backed `msa` vs the preserved
//! `msa_scan`), one full GBR reduction (`PropagationMode::Incremental` vs
//! `LegacyScan`), and the end-to-end pipeline with and without oracle
//! memoization (`RunOptions::default()` vs `RunOptions::legacy()`). The
//! speedup ratios back the numbers quoted in `EXPERIMENTS.md`.

use lbr_bench::microbench::{bench, fmt_duration};
use lbr_core::PropagationMode;
use lbr_core::{closure_size_order, generalized_binary_reduction, GbrConfig, Instance, Oracle};
use lbr_jreduce::{build_model, run_reduction_with, RunOptions, Strategy};
use lbr_logic::{msa, msa_scan, MsaStrategy, VarSet};
use lbr_workload::{generate, WorkloadConfig};

fn main() {
    let program = generate(&WorkloadConfig {
        seed: 5,
        classes: 36,
        interfaces: 9,
        plant: lbr_decompiler::BugKind::ALL.to_vec(),
        ..WorkloadConfig::default()
    });
    let model = build_model(&program).expect("valid input");
    let order = closure_size_order(&model.cnf);

    let engine = bench("msa/engine", || {
        msa(&model.cnf, &order, MsaStrategy::GreedyClosure)
            .expect("satisfiable")
            .len()
    });
    let scan = bench("msa/scan", || {
        msa_scan(&model.cnf, &order, MsaStrategy::GreedyClosure)
            .expect("satisfiable")
            .len()
    });
    println!(
        "  -> msa speedup: {:.1}x ({} vs {})",
        scan.as_secs_f64() / engine.as_secs_f64().max(1e-12),
        fmt_duration(scan),
        fmt_duration(engine)
    );

    // One GBR search against a fixed (cheap) predicate.
    let instance = Instance::new(VarSet::full(model.cnf.num_vars()), model.cnf.clone());
    let needed = instance.vars.iter().take(3).collect::<Vec<_>>();
    let mut gbr_times = Vec::new();
    for (name, mode) in [
        ("incremental", PropagationMode::Incremental),
        ("legacy-scan", PropagationMode::LegacyScan),
    ] {
        let t = bench(&format!("gbr/{name}"), || {
            let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
            let mut oracle = Oracle::new(&mut bug, 0.0);
            let config = GbrConfig {
                propagation: mode,
                ..GbrConfig::default()
            };
            generalized_binary_reduction(&instance, &order, &mut oracle, &config)
                .expect("reduces")
                .solution
                .len()
        });
        gbr_times.push(t);
    }
    println!(
        "  -> gbr speedup: {:.1}x",
        gbr_times[1].as_secs_f64() / gbr_times[0].as_secs_f64().max(1e-12)
    );

    // Probe-cost breakdown: what one oracle probe is made of.
    let registry = &model.registry;
    let keep = VarSet::full(model.cnf.num_vars());
    let probe_oracle =
        lbr_decompiler::DecompilerOracle::new(&program, lbr_decompiler::BugSet::decompiler_a());
    bench("probe/reduce-program", || {
        lbr_jreduce::reduce_program(&program, registry, &keep).len()
    });
    let candidate = lbr_jreduce::reduce_program(&program, registry, &keep);
    bench("probe/byte-size", || {
        lbr_classfile::program_byte_size(&candidate)
    });
    bench("probe/decompile-errors", || {
        probe_oracle.errors(&candidate).len()
    });

    // End-to-end pipeline: real decompiler predicate, memo on vs off.
    let oracle =
        lbr_decompiler::DecompilerOracle::new(&program, lbr_decompiler::BugSet::decompiler_a());
    let mut pipeline_times = Vec::new();
    for (name, options) in [
        ("default", RunOptions::default()),
        ("legacy", RunOptions::legacy()),
    ] {
        let t = bench(&format!("pipeline/logical-greedy/{name}"), || {
            run_reduction_with(
                &program,
                &oracle,
                Strategy::Logical(MsaStrategy::GreedyClosure),
                0.0,
                &options,
            )
            .expect("reduces")
            .final_metrics
            .bytes
        });
        pipeline_times.push(t);
    }
    println!(
        "  -> end-to-end speedup: {:.1}x",
        pipeline_times[1].as_secs_f64() / pipeline_times[0].as_secs_f64().max(1e-12)
    );
}
