//! The evaluation harness: runs strategy × benchmark grids and renders
//! every table and figure of the paper's Section 5.
//!
//! The `eval` binary drives this library; Criterion benches reuse the same
//! suite construction. Experiment index (see `DESIGN.md`):
//!
//! * `stats` — the benchmark-statistics paragraph (geo-means),
//! * `fig8a` — cumulative frequency of time and final relative sizes,
//! * `fig8b` — mean reduction factor over (modeled) time,
//! * `lossy` — the two lossy encodings vs the full reducer,
//! * `ablate-msa`, `ablate-order`, `ddmin` — ablations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod microbench;

use lbr_core::{EngineChoice, Input, InputOracle, ProbeStats, ReductionTrace};
use lbr_jreduce::{OrderChoice, ReductionSession, RunOptions};
use lbr_service::{atomic_write_str, Json};
use lbr_workload::{
    geometric_mean, stack_suite, suite, suite_stats, Benchmark, StackBenchmark, SuiteConfig,
    SuiteStats,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration of an evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Suite seed.
    pub seed: u64,
    /// Number of generated programs (≤ 3 failing instances each).
    pub programs: usize,
    /// Workload scale factor.
    pub scale: f64,
    /// Modeled seconds per tool invocation (the paper measured ≈33 s).
    pub cost_per_call_secs: f64,
    /// Worker threads for [`run_grid`] (`0` = one per available core).
    /// Results are deterministic and identically ordered at any setting.
    pub threads: usize,
    /// Performance options forwarded to every reduction run (propagation
    /// mode, oracle memoization).
    pub options: RunOptions,
    /// When set, [`run_grid`] persists every finished (benchmark,
    /// strategy) job as `slot-<index>.json` in this directory the moment
    /// it completes — written atomically (temp + `fsync` + rename), so a
    /// grid run killed at any instant leaves only complete, parseable
    /// slot files and loses at most the jobs still in flight.
    pub slot_dir: Option<PathBuf>,
    /// Timing repetitions per (benchmark, strategy) job: the reported
    /// `wall_secs` is the minimum over this many identical runs. Every
    /// other field is deterministic, so repeats only de-noise the wall
    /// clock (use with `threads: 1` for gate-quality numbers).
    pub repeats: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            seed: 42,
            programs: 8,
            scale: 1.0,
            cost_per_call_secs: 33.0,
            threads: 0,
            options: RunOptions::default(),
            slot_dir: None,
            repeats: 1,
        }
    }
}

impl EvalConfig {
    /// Builds the classfile benchmark suite for this configuration.
    pub fn suite(&self) -> Vec<Benchmark> {
        suite(&SuiteConfig {
            seed: self.seed,
            programs: self.programs,
            scale: self.scale,
        })
    }

    /// Builds the stackvm benchmark suite for this configuration. The
    /// classfile suite yields up to three failing instances per program;
    /// three modules per `programs` unit keeps the grids comparably
    /// sized across formats.
    pub fn stack_suite(&self) -> Vec<StackBenchmark> {
        stack_suite(self.seed, self.programs * 3)
    }
}

/// What the evaluation grid needs from a benchmark, abstracted over the
/// frontend: a stable name, the input to reduce, and its oracle. The
/// same grid machinery — work pool, slot persistence, soundness checks —
/// then serves every format behind the [`Input`] trait.
pub trait EvalBenchmark: Sync {
    /// The frontend's input type.
    type Input: Input;
    /// The frontend's oracle type.
    type Oracle: InputOracle<Self::Input>;
    /// Stable benchmark name (unique within a suite).
    fn name(&self) -> &str;
    /// The input to reduce.
    fn input(&self) -> &Self::Input;
    /// Builds the oracle for this benchmark.
    fn oracle(&self) -> Self::Oracle;
}

impl EvalBenchmark for Benchmark {
    type Input = lbr_classfile::Program;
    type Oracle = lbr_decompiler::DecompilerOracle;
    fn name(&self) -> &str {
        &self.name
    }
    fn input(&self) -> &lbr_classfile::Program {
        &self.program
    }
    fn oracle(&self) -> lbr_decompiler::DecompilerOracle {
        Benchmark::oracle(self)
    }
}

impl EvalBenchmark for StackBenchmark {
    type Input = lbr_stackvm::Module;
    type Oracle = lbr_stackvm::StackOracle;
    fn name(&self) -> &str {
        &self.name
    }
    fn input(&self) -> &lbr_stackvm::Module {
        &self.module
    }
    fn oracle(&self) -> lbr_stackvm::StackOracle {
        StackBenchmark::oracle(self)
    }
}

/// One (benchmark, strategy) outcome, flattened for reporting.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// Input format (`classfile`, `stackvm` — [`Input::FORMAT`]).
    pub format: String,
    /// Strategy name.
    pub strategy: String,
    /// Classes before reduction.
    pub initial_classes: usize,
    /// Bytes before reduction.
    pub initial_bytes: usize,
    /// Classes after reduction.
    pub final_classes: usize,
    /// Bytes after reduction.
    pub final_bytes: usize,
    /// Predicate invocations.
    pub calls: u64,
    /// Wall-clock seconds of the run.
    pub wall_secs: f64,
    /// Modeled tool seconds (`calls × cost`).
    pub modeled_secs: f64,
    /// Reduction-over-time trace (sizes in bytes).
    pub trace: ReductionTrace,
    /// Item count of the logical model (0 for class-graph strategies).
    pub items: usize,
    /// Clause count of the logical model.
    pub clauses: usize,
    /// Graph-constraint fraction of the model.
    pub graph_fraction: f64,
    /// Soundness: errors preserved and result verifies.
    pub sound: bool,
    /// The run's unified probe accounting (memo hits/misses, useful vs
    /// speculative vs critical-path calls). Serialized through
    /// [`ProbeStats::fields`], so the CSV columns and JSON keys can never
    /// drift from the other frontends.
    pub probe_stats: ProbeStats,
}

impl RunRecord {
    /// Final relative byte size.
    pub fn relative_bytes(&self) -> f64 {
        self.final_bytes as f64 / self.initial_bytes.max(1) as f64
    }

    /// Final relative class count.
    pub fn relative_classes(&self) -> f64 {
        self.final_classes as f64 / self.initial_classes.max(1) as f64
    }

    /// Oracle probes answered from the memo (0 with memoization off).
    pub fn cache_hits(&self) -> u64 {
        self.probe_stats.memo_hits
    }

    /// Oracle probes that ran the tool under memoization.
    pub fn cache_misses(&self) -> u64 {
        self.probe_stats.memo_misses
    }
}

fn record_of<B: EvalBenchmark>(
    benchmark: &B,
    report: lbr_jreduce::ReductionReport<B::Input>,
) -> RunRecord {
    RunRecord {
        benchmark: benchmark.name().to_owned(),
        format: B::Input::FORMAT.to_owned(),
        strategy: report.strategy.clone(),
        initial_classes: report.initial.classes,
        initial_bytes: report.initial.bytes,
        final_classes: report.final_metrics.classes,
        final_bytes: report.final_metrics.bytes,
        calls: report.predicate_calls,
        wall_secs: report.wall_secs,
        modeled_secs: report.modeled_secs,
        trace: report.trace.clone(),
        items: report.model_stats.map_or(0, |s| s.items),
        clauses: report.model_stats.map_or(0, |s| s.clauses),
        graph_fraction: report.model_stats.map_or(0.0, |s| s.graph_fraction),
        sound: report.errors_preserved && report.still_valid,
        probe_stats: report.probe_stats,
    }
}

/// The machine-readable form of one grid slot (see
/// [`EvalConfig::slot_dir`]): the full [`RunRecord`] minus the trace,
/// plus the trace's digest so runs can be compared for bit-identity.
pub fn record_doc(r: &RunRecord) -> Json {
    let mut fields: std::collections::BTreeMap<String, Json> = [
        ("benchmark", Json::str(&r.benchmark)),
        ("format", Json::str(&r.format)),
        ("strategy", Json::str(&r.strategy)),
        ("initial_classes", Json::count(r.initial_classes as u64)),
        ("initial_bytes", Json::count(r.initial_bytes as u64)),
        ("final_classes", Json::count(r.final_classes as u64)),
        ("final_bytes", Json::count(r.final_bytes as u64)),
        ("calls", Json::count(r.calls)),
        ("wall_secs", Json::Num(r.wall_secs)),
        ("modeled_secs", Json::Num(r.modeled_secs)),
        (
            "trace_digest",
            Json::str(format!("{:016x}", r.trace.digest())),
        ),
        ("sound", Json::Bool(r.sound)),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_owned(), v))
    .collect();
    fields.extend(
        r.probe_stats
            .fields()
            .iter()
            .map(|&(k, v)| (k.to_owned(), Json::count(v))),
    );
    Json::Obj(fields)
}

/// Atomically persists one finished grid job into the slot directory.
fn write_slot(dir: &Path, index: usize, result: &Result<RunRecord, String>) {
    let doc = match result {
        Ok(record) => record_doc(record),
        Err(e) => Json::obj([("error", Json::str(e))]),
    };
    let path = dir.join(format!("slot-{index:04}.json"));
    if let Err(e) = atomic_write_str(&path, &doc.render()) {
        eprintln!("warning: cannot persist {}: {e}", path.display());
    }
}

fn run_one<B: EvalBenchmark>(
    config: &EvalConfig,
    b: &B,
    strategy: &str,
) -> Result<RunRecord, String> {
    let oracle = b.oracle();
    let run = || {
        ReductionSession::new(b.input(), &oracle)
            .strategy(strategy)
            .cost_per_call(config.cost_per_call_secs)
            .options(config.options)
            .run()
            .map_err(|e| format!("{} / {strategy}: {e}", b.name()))
    };
    let mut report = run()?;
    // An unsound or non-round-tripping result must surface as a failed
    // job (eval exits non-zero), not as a quietly wrong table row.
    lbr_jreduce::check_report(&report)
        .map_err(|e| format!("{} / {strategy}: invalid result: {e}", b.name()))?;
    // Extra repeats only de-noise wall_secs (keep the fastest run); the
    // search itself is deterministic, so checking the first run suffices.
    for _ in 1..config.repeats.max(1) {
        let again = run()?;
        if again.wall_secs < report.wall_secs {
            report = again;
        }
    }
    Ok(record_of(b, report))
}

/// Runs `strategies` over the whole suite, skipping (and reporting) failed
/// runs.
///
/// With `config.threads != 1` the (benchmark, strategy) jobs are evaluated
/// by a scoped-thread work pool: workers claim job indices from an atomic
/// counter and write results into per-job slots, so the returned records
/// are in exactly the same order — and bit-identical — to a sequential
/// run. Each job builds its own oracle; nothing is shared across jobs.
pub fn run_grid<B: EvalBenchmark>(
    config: &EvalConfig,
    benchmarks: &[B],
    strategies: &[&str],
) -> Vec<RunRecord> {
    let jobs: Vec<(&B, &str)> = benchmarks
        .iter()
        .flat_map(|b| strategies.iter().map(move |&s| (b, s)))
        .collect();
    let workers = match config.threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(jobs.len().max(1));

    let slot_dir = config.slot_dir.as_deref();
    if let Some(dir) = slot_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create slot dir {}: {e}", dir.display());
        }
    }

    let slots: Vec<Option<Result<RunRecord, String>>> = if workers <= 1 {
        jobs.iter()
            .enumerate()
            .map(|(i, &(b, strategy))| {
                let result = run_one(config, b, strategy);
                if let Some(dir) = slot_dir {
                    write_slot(dir, i, &result);
                }
                Some(result)
            })
            .collect()
    } else {
        // One lock per job slot: a worker finishing a long run never
        // contends with workers storing unrelated results, unlike a single
        // mutex over the whole result vector.
        let slots: Vec<Mutex<Option<Result<RunRecord, String>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(b, strategy)) = jobs.get(i) else {
                        break;
                    };
                    let result = run_one(config, b, strategy);
                    if let Some(dir) = slot_dir {
                        write_slot(dir, i, &result);
                    }
                    *slots[i].lock().expect("result slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("result slot"))
            .collect()
    };

    let mut out = Vec::new();
    for slot in slots {
        match slot.expect("every job was claimed") {
            Ok(record) => out.push(record),
            Err(warning) => eprintln!("warning: {warning}"),
        }
    }
    out
}

/// The strategies of the headline comparison (Figure 8a/8b).
pub fn headline_strategies() -> Vec<&'static str> {
    vec!["jreduce", "logical/greedy"]
}

/// E7 — the baseline-zoo comparison: the headline pair plus the
/// validity-filtered ddmin, HDD, transformation-pass, and trace-guided
/// strategies, run over both frontends' suites by the `compare`
/// experiment.
pub fn compare_strategies() -> Vec<&'static str> {
    vec![
        "jreduce",
        "logical/greedy",
        "ddmin-items",
        "hdd",
        "transform",
        "logical/trace-guided",
    ]
}

/// A4 — the engine/order ablation grid: the headline strategies plus the
/// CDCL engine and the learned/portfolio probe-order variants of the
/// logical reducer. The rows are distinguished by the strategy label,
/// which the pipeline suffixes with every non-default option (`+cdcl`,
/// `+order-learned`, `+order-portfolio`), so one results file can gate
/// all of them at once. The caller's `slot_dir` is ignored — the variant
/// grids would otherwise overwrite each other's slot files.
pub fn run_engine_grid<B: EvalBenchmark>(config: &EvalConfig, benchmarks: &[B]) -> Vec<RunRecord> {
    let logical = "logical/greedy";
    let variants: [(&str, RunOptions); 5] = [
        ("jreduce", config.options),
        (logical, config.options),
        (
            logical,
            RunOptions {
                engine: EngineChoice::Cdcl,
                ..config.options
            },
        ),
        (
            logical,
            RunOptions {
                engine: EngineChoice::Cdcl,
                order: OrderChoice::Learned,
                ..config.options
            },
        ),
        (
            logical,
            RunOptions {
                order: OrderChoice::Portfolio,
                ..config.options
            },
        ),
    ];
    let mut records = Vec::new();
    for (strategy, options) in variants {
        let cfg = EvalConfig {
            options,
            slot_dir: None,
            ..config.clone()
        };
        records.extend(run_grid(&cfg, benchmarks, &[strategy]));
    }
    records
}

/// The strategies of the lossy-encoding comparison.
pub fn lossy_strategies() -> Vec<&'static str> {
    vec!["logical/greedy", "lossy-1", "lossy-2"]
}

fn records_of<'r>(records: &'r [RunRecord], strategy: &str) -> Vec<&'r RunRecord> {
    records.iter().filter(|r| r.strategy == strategy).collect()
}

fn fmt_secs(s: f64) -> String {
    let total = s.round() as i64;
    format!(
        "{}:{:02}:{:02}",
        total / 3600,
        (total % 3600) / 60,
        total % 60
    )
}

// ----------------------------------------------------------------------
// Experiment renderers.
// ----------------------------------------------------------------------

/// E2 — the "Statistics" paragraph.
pub fn render_stats(stats: &SuiteStats, records: &[RunRecord]) -> String {
    let logical = records_of(records, "logical/greedy");
    let items = geometric_mean(logical.iter().map(|r| r.items as f64));
    let clauses = geometric_mean(logical.iter().map(|r| r.clauses as f64));
    let graph = if logical.is_empty() {
        0.0
    } else {
        logical.iter().map(|r| r.graph_fraction).sum::<f64>() / logical.len() as f64
    };
    let mut out = String::new();
    let _ = writeln!(out, "# E2: Benchmark statistics (geometric means)");
    let _ = writeln!(
        out,
        "#     paper: 227 instances, 184 classes, 285 KB, 9.2 errors,"
    );
    let _ = writeln!(
        out,
        "#            2.9k items, 8.7k clauses, 97.5% graph clauses"
    );
    let _ = writeln!(out, "instances            {}", stats.benchmarks);
    let _ = writeln!(out, "classes              {:.1}", stats.classes);
    let _ = writeln!(
        out,
        "bytes                {:.0} ({:.1} KB)",
        stats.bytes,
        stats.bytes / 1024.0
    );
    let _ = writeln!(out, "errors               {:.1}", stats.errors);
    let _ = writeln!(out, "reducible items      {items:.0}");
    let _ = writeln!(out, "model clauses        {clauses:.0}");
    let _ = writeln!(out, "graph-clause share   {:.1}%", 100.0 * graph);
    out
}

/// E3 — Figure 8a: cumulative frequency of time spent and final relative
/// sizes (classes and bytes), plus the geometric-mean summary row.
pub fn render_fig8a(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# E3: Figure 8a — cumulative frequency diagrams");
    let _ = writeln!(
        out,
        "#     paper geo-means: time 218.6s (jreduce) vs 680.7s (ours, 3.1x);"
    );
    let _ = writeln!(
        out,
        "#     classes 22.8% vs 8.4%; bytes 24.3% vs 4.6% (5.3x better)"
    );
    for strategy in ["jreduce", "logical/greedy"] {
        let rs = records_of(records, strategy);
        if rs.is_empty() {
            continue;
        }
        let gm_time = geometric_mean(rs.iter().map(|r| r.modeled_secs));
        let gm_classes = geometric_mean(rs.iter().map(|r| 100.0 * r.relative_classes()));
        let gm_bytes = geometric_mean(rs.iter().map(|r| 100.0 * r.relative_bytes()));
        let _ = writeln!(out, "\n## {strategy}  (n = {})", rs.len());
        let _ = writeln!(
            out,
            "geo-mean: time {} ({gm_time:.1}s)  classes {gm_classes:.1}%  bytes {gm_bytes:.1}%",
            fmt_secs(gm_time)
        );
        let _ = writeln!(out, "cumulative frequency (fraction of benchmarks ≤ x):");
        let _ = writeln!(
            out,
            "{:>10} {:>12} {:>12} {:>12}",
            "quantile", "time(s)", "classes%", "bytes%"
        );
        let mut times: Vec<f64> = rs.iter().map(|r| r.modeled_secs).collect();
        let mut classes: Vec<f64> = rs.iter().map(|r| 100.0 * r.relative_classes()).collect();
        let mut bytes: Vec<f64> = rs.iter().map(|r| 100.0 * r.relative_bytes()).collect();
        times.sort_by(f64::total_cmp);
        classes.sort_by(f64::total_cmp);
        bytes.sort_by(f64::total_cmp);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let idx = ((q * rs.len() as f64).ceil() as usize).clamp(1, rs.len()) - 1;
            let _ = writeln!(
                out,
                "{:>10} {:>12.1} {:>12.1} {:>12.1}",
                format!("{:.0}%", q * 100.0),
                times[idx],
                classes[idx],
                bytes[idx]
            );
        }
    }
    // Headline ratios.
    let j = records_of(records, "jreduce");
    let l = records_of(records, "logical/greedy");
    if !j.is_empty() && !l.is_empty() {
        let jb = geometric_mean(j.iter().map(|r| r.relative_bytes()));
        let lb = geometric_mean(l.iter().map(|r| r.relative_bytes()));
        let jt = geometric_mean(j.iter().map(|r| r.modeled_secs.max(1.0)));
        let lt = geometric_mean(l.iter().map(|r| r.modeled_secs.max(1.0)));
        let _ = writeln!(
            out,
            "\nheadline: ours reduces bytes {:.1}x better than jreduce ({:.1}% vs {:.1}%), {:.1}x slower",
            jb / lb.max(1e-9),
            100.0 * lb,
            100.0 * jb,
            lt / jt.max(1e-9),
        );
    }
    out
}

/// E4 — Figure 8b: mean reduction factor over modeled time.
pub fn render_fig8b(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# E4: Figure 8b — mean reduction over time");
    let _ = writeln!(
        out,
        "#     series: reduction factor (initial/best bytes so far), modeled time"
    );
    let max_time = records
        .iter()
        .map(|r| r.modeled_secs)
        .fold(0.0f64, f64::max)
        .max(1.0);
    let steps = 24;
    let strategies: Vec<String> = {
        let mut s: Vec<String> = records.iter().map(|r| r.strategy.clone()).collect();
        s.sort();
        s.dedup();
        s
    };
    let _ = write!(out, "{:>10}", "time(s)");
    for s in &strategies {
        let _ = write!(out, " {s:>22}");
    }
    let _ = writeln!(out);
    for step in 0..=steps {
        let t = max_time * step as f64 / steps as f64;
        let _ = write!(out, "{t:>10.0}");
        for s in &strategies {
            let rs = records_of(records, s);
            let factor = geometric_mean(rs.iter().map(|r| {
                let best = r
                    .trace
                    .best_at_modeled_time(t)
                    .unwrap_or(r.initial_bytes as u64);
                r.initial_bytes as f64 / best.max(1) as f64
            }));
            let _ = write!(out, " {factor:>21.2}x");
        }
        let _ = writeln!(out);
    }
    out
}

/// E5 — the lossy-encoding comparison.
pub fn render_lossy(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# E5: Lossy encodings vs the full logical reducer");
    let _ = writeln!(
        out,
        "#     paper: lossy-1/2 produce 5%/8% more bytes; ours strictly"
    );
    let _ = writeln!(
        out,
        "#     better on 48%/51% of benchmarks (79%/84% with ≥5% non-graph)"
    );
    let logical = records_of(records, "logical/greedy");
    for lossy_name in ["lossy-1", "lossy-2"] {
        let lossy = records_of(records, lossy_name);
        if lossy.is_empty() || logical.is_empty() {
            continue;
        }
        // Pair by benchmark.
        let mut more_bytes = Vec::new();
        let mut strictly_better = 0usize;
        let mut strictly_better_nongraph = 0usize;
        let mut nongraph_total = 0usize;
        let mut paired = 0usize;
        for l in &logical {
            if let Some(x) = lossy.iter().find(|r| r.benchmark == l.benchmark) {
                paired += 1;
                more_bytes.push(x.final_bytes as f64 / l.final_bytes.max(1) as f64);
                if l.final_bytes < x.final_bytes {
                    strictly_better += 1;
                }
                if l.graph_fraction <= 0.95 {
                    nongraph_total += 1;
                    if l.final_bytes < x.final_bytes {
                        strictly_better_nongraph += 1;
                    }
                }
            }
        }
        let gm = geometric_mean(more_bytes.iter().copied());
        let _ = writeln!(
            out,
            "\n{lossy_name}: {:.1}% more bytes than logical (geo-mean, n={paired})",
            100.0 * (gm - 1.0)
        );
        let _ = writeln!(
            out,
            "logical strictly better on {:.0}% of benchmarks",
            100.0 * strictly_better as f64 / paired.max(1) as f64
        );
        if nongraph_total > 0 {
            let _ = writeln!(
                out,
                "  … {:.0}% of the {} benchmarks with ≥5% non-graph clauses",
                100.0 * strictly_better_nongraph as f64 / nongraph_total as f64,
                nongraph_total
            );
        }
    }
    out
}

/// A1/A2/A3 — ablation tables (one row per strategy).
pub fn render_ablation(records: &[RunRecord], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let strategies: Vec<String> = {
        let mut s: Vec<String> = records.iter().map(|r| r.strategy.clone()).collect();
        s.sort();
        s.dedup();
        s
    };
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "strategy", "n", "bytes%", "classes%", "calls", "sound"
    );
    for s in &strategies {
        let rs = records_of(records, s);
        let bytes = geometric_mean(rs.iter().map(|r| 100.0 * r.relative_bytes()));
        let classes = geometric_mean(rs.iter().map(|r| 100.0 * r.relative_classes()));
        let calls = geometric_mean(rs.iter().map(|r| r.calls as f64));
        let sound = rs.iter().all(|r| r.sound);
        let _ = writeln!(
            out,
            "{s:<24} {:>8} {bytes:>9.1}% {classes:>9.1}% {calls:>10.0} {:>8}",
            rs.len(),
            if sound { "yes" } else { "NO" }
        );
    }
    out
}

/// E7 — the baseline-zoo table: one row per (strategy, format) pair with
/// geometric-mean sizes and predicate-call counts, so the trace-guided
/// mode's call savings against plain GBR are directly readable. Rows
/// follow [`compare_strategies`] order (then any extra strategies found
/// in the records, sorted), formats within a strategy sorted.
pub fn render_compare(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# E7: strategy zoo × input format");
    let _ = writeln!(
        out,
        "#     geo-means per (strategy, format); calls is the predicate-call count"
    );
    let mut order: Vec<String> = compare_strategies()
        .into_iter()
        .map(str::to_owned)
        .collect();
    let mut extra: Vec<String> = records
        .iter()
        .map(|r| r.strategy.clone())
        .filter(|s| !order.contains(s))
        .collect();
    extra.sort();
    extra.dedup();
    order.extend(extra);
    let mut formats: Vec<String> = records.iter().map(|r| r.format.clone()).collect();
    formats.sort();
    formats.dedup();
    let _ = writeln!(
        out,
        "{:<24} {:<10} {:>4} {:>10} {:>10} {:>10} {:>8}",
        "strategy", "format", "n", "bytes%", "classes%", "calls", "sound"
    );
    for s in &order {
        for format in &formats {
            let rs: Vec<&RunRecord> = records
                .iter()
                .filter(|r| &r.strategy == s && &r.format == format)
                .collect();
            if rs.is_empty() {
                continue;
            }
            let bytes = geometric_mean(rs.iter().map(|r| 100.0 * r.relative_bytes()));
            let classes = geometric_mean(rs.iter().map(|r| 100.0 * r.relative_classes()));
            let calls = geometric_mean(rs.iter().map(|r| r.calls as f64));
            let sound = rs.iter().all(|r| r.sound);
            let _ = writeln!(
                out,
                "{s:<24} {format:<10} {:>4} {bytes:>9.1}% {classes:>9.1}% {calls:>10.1} {:>8}",
                rs.len(),
                if sound { "yes" } else { "NO" }
            );
        }
    }
    // The headline claim of the trace-guided mode: fewer predicate calls
    // than the plain greedy GBR it layers on, per format.
    for format in &formats {
        let calls_of = |name: &str| {
            let rs: Vec<&RunRecord> = records
                .iter()
                .filter(|r| r.strategy == name && &r.format == format)
                .collect();
            (!rs.is_empty()).then(|| geometric_mean(rs.iter().map(|r| r.calls as f64)))
        };
        if let (Some(plain), Some(traced)) =
            (calls_of("logical/greedy"), calls_of("logical/trace-guided"))
        {
            let _ = writeln!(
                out,
                "\n{format}: trace-guided makes {traced:.1} calls (geo-mean) vs {plain:.1} for logical/greedy ({:+.1}%)",
                100.0 * (traced / plain.max(1e-9) - 1.0)
            );
        }
    }
    out
}

/// E6 — per-error reduction: one GBR search per distinct compiler error
/// (the paper's long-running cases: "73 searches … 951 decompilations").
pub fn render_per_error<B: EvalBenchmark>(config: &EvalConfig, benchmarks: &[B]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# E6: per-error reduction (one search per distinct error)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>9} {:>14} {:>16} {:>10}",
        "benchmark", "errors", "searches", "tool runs", "witness bytes", "hit rate"
    );
    let mut witness_sizes: Vec<f64> = Vec::new();
    for b in benchmarks {
        let oracle = b.oracle();
        match ReductionSession::new(b.input(), &oracle)
            .cost_per_call(config.cost_per_call_secs)
            .options(config.options)
            .run_per_error()
        {
            Ok(report) => {
                let gm = geometric_mean(report.errors.iter().map(|(_, s)| s.bytes as f64));
                witness_sizes.extend(report.errors.iter().map(|(_, s)| s.bytes as f64));
                let _ = writeln!(
                    out,
                    "{:<12} {:>7} {:>9} {:>14} {:>15.0}g {:>9.0}%",
                    b.name(),
                    oracle.error_count(),
                    report.errors.len(),
                    report.total_calls,
                    gm,
                    100.0 * report.cache_hit_rate()
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{:<12} failed: {e}", b.name());
            }
        }
    }
    let _ = writeln!(
        out,
        "\nper-error witnesses are tiny: geo-mean {:.0} bytes across {} searches",
        geometric_mean(witness_sizes.iter().copied()),
        witness_sizes.len()
    );
    out
}

/// Renders the full per-run CSV (for external plotting).
pub fn render_csv(records: &[RunRecord]) -> String {
    // The probe-stat columns (header and values) come straight from
    // `ProbeStats::fields`, the one canonical spelling of those counters.
    let stat_names: Vec<&str> = ProbeStats::default()
        .fields()
        .iter()
        .map(|&(k, _)| k)
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "benchmark,strategy,initial_classes,initial_bytes,final_classes,final_bytes,calls,wall_secs,modeled_secs,items,clauses,graph_fraction,sound,{}",
        stat_names.join(",")
    );
    for r in records {
        let stat_values: Vec<String> = r
            .probe_stats
            .fields()
            .iter()
            .map(|&(_, v)| v.to_string())
            .collect();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{:.3},{:.1},{},{},{:.4},{},{}",
            r.benchmark,
            r.strategy,
            r.initial_classes,
            r.initial_bytes,
            r.final_classes,
            r.final_bytes,
            r.calls,
            r.wall_secs,
            r.modeled_secs,
            r.items,
            r.clauses,
            r.graph_fraction,
            r.sound,
            stat_values.join(",")
        );
    }
    out
}

/// Renders machine-readable results (the `BENCH_results.json` payload):
/// one object per run plus per-strategy aggregates with total wall time,
/// predicate calls, and cache hit rates. Hand-rolled JSON — the harness
/// stays dependency-free.
pub fn render_json(records: &[RunRecord]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::new();
    out.push_str("{\n  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"benchmark\": \"{}\", \"format\": \"{}\", \"strategy\": \"{}\", \"initial_bytes\": {}, \"final_bytes\": {}, \"initial_classes\": {}, \"final_classes\": {}, \"predicate_calls\": {}, \"wall_secs\": {:.6}, \"modeled_secs\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}, \"useful_calls\": {}, \"speculative_calls\": {}, \"critical_path_calls\": {}, \"sound\": {}}}",
            esc(&r.benchmark),
            esc(&r.format),
            esc(&r.strategy),
            r.initial_bytes,
            r.final_bytes,
            r.initial_classes,
            r.final_classes,
            r.calls,
            r.wall_secs,
            r.modeled_secs,
            r.cache_hits(),
            r.cache_misses(),
            r.probe_stats.useful_calls,
            r.probe_stats.speculative_calls,
            r.probe_stats.critical_path_calls,
            r.sound
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"strategies\": [\n");
    // Aggregate per (format, strategy): a stackvm run of `logical/greedy`
    // must not fold into the classfile aggregate of the same strategy.
    let strategies: Vec<(String, String)> = {
        let mut s: Vec<(String, String)> = records
            .iter()
            .map(|r| (r.format.clone(), r.strategy.clone()))
            .collect();
        s.sort();
        s.dedup();
        s
    };
    for (i, (format, s)) in strategies.iter().enumerate() {
        let rs: Vec<&RunRecord> = records
            .iter()
            .filter(|r| &r.strategy == s && &r.format == format)
            .collect();
        let wall: f64 = rs.iter().map(|r| r.wall_secs).sum();
        let calls: u64 = rs.iter().map(|r| r.calls).sum();
        let hits: u64 = rs.iter().map(|r| r.cache_hits()).sum();
        let misses: u64 = rs.iter().map(|r| r.cache_misses()).sum();
        let useful: u64 = rs.iter().map(|r| r.probe_stats.useful_calls).sum();
        let speculative: u64 = rs.iter().map(|r| r.probe_stats.speculative_calls).sum();
        let critical: u64 = rs.iter().map(|r| r.probe_stats.critical_path_calls).sum();
        let hit_rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let bytes_pct = geometric_mean(rs.iter().map(|r| 100.0 * r.relative_bytes()));
        let _ = write!(
            out,
            "    {{\"format\": \"{}\", \"strategy\": \"{}\", \"runs\": {}, \"wall_secs\": {:.6}, \"predicate_calls\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \"useful_calls\": {}, \"speculative_calls\": {}, \"critical_path_calls\": {}, \"geo_mean_bytes_pct\": {:.2}}}",
            esc(format),
            esc(s),
            rs.len(),
            wall,
            calls,
            hits,
            misses,
            hit_rate,
            useful,
            speculative,
            critical,
            bytes_pct
        );
        out.push_str(if i + 1 < strategies.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Convenience for tests and benches: one small suite.
pub fn small_suite() -> Vec<Benchmark> {
    EvalConfig {
        programs: 2,
        scale: 0.6,
        ..EvalConfig::default()
    }
    .suite()
}

/// Re-export for the `eval` binary and benches.
pub use lbr_workload::SuiteStats as Stats;

/// Computes suite statistics (thin wrapper, re-exported for `eval`).
pub fn compute_stats(benchmarks: &[Benchmark]) -> SuiteStats {
    suite_stats(benchmarks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_runs_and_renders() {
        let config = EvalConfig {
            programs: 1,
            scale: 0.4,
            ..EvalConfig::default()
        };
        let benchmarks = config.suite();
        assert!(!benchmarks.is_empty());
        let records = run_grid(&config, &benchmarks, &headline_strategies());
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.sound), "all runs must be sound");
        assert!(
            records
                .iter()
                .all(|r| r.probe_stats.useful_calls == r.calls
                    && r.probe_stats.speculative_calls == 0),
            "sequential runs: useful == calls, no speculation"
        );
        let json = render_json(&records);
        assert!(json.contains("\"speculative_calls\""));
        assert!(render_csv(&records).contains("critical_path_calls"));
        let stats = compute_stats(&benchmarks);
        for text in [
            render_stats(&stats, &records),
            render_fig8a(&records),
            render_fig8b(&records),
            render_ablation(&records, "test"),
            render_csv(&records),
            render_json(&records),
        ] {
            assert!(!text.is_empty());
        }
    }

    #[test]
    fn stackvm_grid_runs_and_tags_format() {
        let config = EvalConfig {
            programs: 1,
            ..EvalConfig::default()
        };
        let benchmarks = config.stack_suite();
        assert!(!benchmarks.is_empty());
        let records = run_grid(&config, &benchmarks, &headline_strategies());
        assert_eq!(records.len(), benchmarks.len() * 2);
        assert!(records.iter().all(|r| r.sound), "all runs must be sound");
        assert!(records.iter().all(|r| r.format == "stackvm"));
        let json = render_json(&records);
        assert!(json.contains("\"format\": \"stackvm\""));
        // Mixed-format records aggregate per (format, strategy): the same
        // strategy name shows up once per frontend.
        let classfile = run_grid(&config, &config.suite(), &["jreduce"]);
        let mut mixed = records.clone();
        mixed.extend(classfile);
        let json = render_json(&mixed);
        assert!(json.contains("\"format\": \"classfile\", \"strategy\": \"jreduce\""));
        assert!(json.contains("\"format\": \"stackvm\", \"strategy\": \"jreduce\""));
    }

    #[test]
    fn parallel_grid_matches_sequential_and_legacy_options() {
        let base = EvalConfig {
            programs: 1,
            scale: 0.4,
            ..EvalConfig::default()
        };
        let benchmarks = base.suite();
        let strategies = headline_strategies();
        let sequential = run_grid(
            &EvalConfig {
                threads: 1,
                ..base.clone()
            },
            &benchmarks,
            &strategies,
        );
        let parallel = run_grid(
            &EvalConfig {
                threads: 4,
                ..base.clone()
            },
            &benchmarks,
            &strategies,
        );
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.benchmark, p.benchmark);
            assert_eq!(s.strategy, p.strategy);
            assert_eq!(s.final_bytes, p.final_bytes);
            assert_eq!(s.final_classes, p.final_classes);
            assert_eq!(s.calls, p.calls);
        }
        // The legacy (scan + no memo) options must give the same results.
        let legacy = run_grid(
            &EvalConfig {
                threads: 1,
                options: RunOptions::legacy(),
                ..base
            },
            &benchmarks,
            &strategies,
        );
        assert_eq!(sequential.len(), legacy.len());
        for (s, l) in sequential.iter().zip(&legacy) {
            assert_eq!(s.final_bytes, l.final_bytes);
            assert_eq!(s.calls, l.calls);
            assert_eq!(l.cache_hits() + l.cache_misses(), 0, "legacy runs no cache");
        }
        let json = render_json(&sequential);
        assert!(json.contains("\"strategies\""));
        assert!(json.contains("cache_hit_rate"));
    }

    #[test]
    fn grid_persists_slots_atomically() {
        let dir = std::env::temp_dir().join(format!("lbr-slots-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EvalConfig {
            programs: 1,
            scale: 0.4,
            threads: 2,
            slot_dir: Some(dir.clone()),
            ..EvalConfig::default()
        };
        let benchmarks = config.suite();
        let records = run_grid(&config, &benchmarks, &headline_strategies());
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        assert_eq!(files.len(), records.len(), "one slot file per finished job");
        for (path, record) in files.iter().zip(&records) {
            let doc = Json::parse(&std::fs::read_to_string(path).unwrap())
                .expect("every slot file is complete, parseable JSON");
            assert_eq!(doc.str_field("benchmark"), Some(record.benchmark.as_str()));
            assert_eq!(doc.str_field("strategy"), Some(record.strategy.as_str()));
            assert_eq!(
                doc.u64_field("final_bytes"),
                Some(record.final_bytes as u64)
            );
            assert_eq!(
                doc.str_field("trace_digest"),
                Some(format!("{:016x}", record.trace.digest()).as_str())
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lossy_render_pairs_benchmarks() {
        let config = EvalConfig {
            programs: 1,
            scale: 0.4,
            ..EvalConfig::default()
        };
        let benchmarks = config.suite();
        let records = run_grid(&config, &benchmarks, &lossy_strategies());
        let text = render_lossy(&records);
        assert!(text.contains("lossy-1"));
    }
}
