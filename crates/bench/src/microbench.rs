//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace builds offline, so the bench targets (declared with
//! `harness = false`) cannot use Criterion. This module provides the small
//! part we need: warm-up, automatic iteration-count calibration to a target
//! measurement time, and a median-of-samples report printed one line per
//! benchmark.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How long each calibrated measurement aims to run.
const TARGET: Duration = Duration::from_millis(200);
/// Samples taken per benchmark; the median is reported.
const SAMPLES: usize = 5;

/// Times `f`, printing `name: <median per-iteration time>`; returns the
/// median per-iteration duration so callers can assert on regressions.
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) -> Duration {
    // Warm-up and calibration: how many iterations fill TARGET?
    let start = Instant::now();
    black_box(f());
    let once = start.elapsed().max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed() / iters
        })
        .collect();
    samples.sort();
    let median = samples[SAMPLES / 2];
    println!(
        "{name:<44} {:>12} /iter  ({iters} iters/sample)",
        fmt_duration(median)
    );
    median
}

/// Formats a duration with a unit that keeps 3-4 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}
