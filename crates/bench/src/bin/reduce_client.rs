//! Command-line client for the reduction daemon (`lbr-serviced`).
//!
//! ```text
//! reduce-client (--state-dir DIR | --addr HOST:PORT) <op> [args]
//!
//! ops:
//!   submit --input bench.lbrc [--decompiler a|b|c|all] [--strategy S]
//!          [--out reduced.lbrc] [--priority N] [--cost SECS]
//!          [--probe-threads N] [--probe-latency-micros N]
//!          [--deadline-secs F] [--wait] [--events]
//!   status --id N
//!   result --id N [--wait]
//!   cancel --id N
//!   stats
//!   shutdown
//!   ping
//! ```
//!
//! `--binary` negotiates the compact binary framing over one persistent
//! connection (daemons that do not offer it transparently fall back to
//! line JSON); `--events` streams `running`/`progress` events to stderr
//! while a `submit --wait` blocks, instead of the client polling.
//!
//! Responses are printed to stdout as one JSON document. Exit status:
//! `0` on success (for `result --wait`, only when the job finished
//! `done`), `1` on daemon/job errors, `2` on usage errors.

use lbr_service::{Client, Connection, Json};
use std::path::Path;

fn usage() -> ! {
    eprintln!("usage: reduce-client (--state-dir DIR | --addr HOST:PORT) <op> [args]");
    eprintln!("ops: submit status result cancel stats shutdown ping (try --help)");
    std::process::exit(2);
}

fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: reduce-client (--state-dir DIR | --addr HOST:PORT) <op> [args]");
        println!();
        println!("ops:");
        println!("  submit --input bench.lbrc [--decompiler a|b|c|all] [--strategy S]");
        println!("         [--out reduced.lbrc] [--priority N] [--cost SECS]");
        println!("         [--probe-threads N] [--probe-latency-micros N]");
        println!("         [--deadline-secs F] [--wait]");
        println!("  status --id N          show a job's phase");
        println!("  result --id N [--wait] fetch (or block for) a job's result");
        println!("  cancel --id N          cooperatively cancel a job");
        println!("  stats                  queue depth, cache hit rates, utilization");
        println!("  shutdown               stop the daemon (running jobs checkpoint)");
        println!("  ping                   liveness check");
        println!();
        println!("  --binary               negotiate compact binary framing");
        println!("  --events               stream job progress events to stderr");
        return;
    }

    let mut addr: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut op: Option<String> = None;
    let mut id: Option<u64> = None;
    let mut wait = false;
    let mut binary = false;
    let mut events = false;
    // submit fields, passed through as the job spec.
    let mut spec: Vec<(&'static str, Json)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--addr" => addr = Some(value()),
            "--state-dir" => state_dir = Some(value()),
            "--id" => {
                id = Some(value().parse().unwrap_or_else(|_| {
                    eprintln!("--id takes a number");
                    std::process::exit(2);
                }))
            }
            "--wait" => wait = true,
            "--binary" => binary = true,
            "--events" => events = true,
            "--input" => spec.push(("input", Json::str(value()))),
            "--decompiler" | "-d" => spec.push(("decompiler", Json::str(value()))),
            "--strategy" | "-s" => spec.push(("strategy", Json::str(value()))),
            "--out" | "-o" => spec.push(("output", Json::str(value()))),
            "--priority" => spec.push((
                "priority",
                Json::count(value().parse().unwrap_or_else(|_| {
                    eprintln!("--priority takes a number");
                    std::process::exit(2);
                })),
            )),
            "--cost" => spec.push((
                "cost",
                Json::Num(value().parse().unwrap_or_else(|_| {
                    eprintln!("--cost takes seconds");
                    std::process::exit(2);
                })),
            )),
            "--probe-threads" => spec.push((
                "probe_threads",
                Json::count(value().parse().unwrap_or_else(|_| {
                    eprintln!("--probe-threads takes a number");
                    std::process::exit(2);
                })),
            )),
            "--probe-latency-micros" => spec.push((
                "probe_latency_micros",
                Json::count(value().parse().unwrap_or_else(|_| {
                    eprintln!("--probe-latency-micros takes a number");
                    std::process::exit(2);
                })),
            )),
            "--deadline-secs" => spec.push((
                "deadline_secs",
                Json::Num(value().parse().unwrap_or_else(|_| {
                    eprintln!("--deadline-secs takes seconds");
                    std::process::exit(2);
                })),
            )),
            other if !other.starts_with('-') && op.is_none() => op = Some(other.to_owned()),
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let client = match (addr, state_dir) {
        (Some(addr), _) => Client::connect(addr),
        (None, Some(dir)) => Client::from_state_dir(Path::new(&dir))
            .unwrap_or_else(|e| fail(format!("no daemon at {dir}: {e}"))),
        (None, None) => usage(),
    };
    let Some(op) = op else { usage() };
    let need_id = || id.unwrap_or_else(|| usage());

    if binary || events {
        run_over_connection(&client, &op, spec, id, wait, binary, events);
        return;
    }

    match op.as_str() {
        "ping" => {
            if client.ping() {
                println!("{{\"ok\":true}}");
            } else {
                fail(format!("no daemon answering at {}", client.addr()));
            }
        }
        "submit" => {
            let job_id = client
                .submit(&Json::obj_from(spec))
                .unwrap_or_else(|e| fail(format!("submit: {e}")));
            if wait {
                let result = client
                    .wait_result(job_id)
                    .unwrap_or_else(|e| fail(format!("waiting on job {job_id}: {e}")));
                println!("{}", result.render());
                if result.str_field("status") != Some("done") {
                    std::process::exit(1);
                }
            } else {
                println!("{{\"id\":{job_id}}}");
            }
        }
        "status" => {
            let doc = client
                .status(need_id())
                .unwrap_or_else(|e| fail(format!("status: {e}")));
            println!("{}", doc.render());
        }
        "result" => {
            let job_id = need_id();
            let result = if wait {
                client.wait_result(job_id)
            } else {
                client
                    .expect_ok(&Json::obj([
                        ("op", Json::str("result")),
                        ("id", Json::count(job_id)),
                    ]))
                    .map(|r| r.get("result").cloned().unwrap_or(Json::Null))
            }
            .unwrap_or_else(|e| fail(format!("result: {e}")));
            println!("{}", result.render());
            if result.str_field("status") != Some("done") {
                std::process::exit(1);
            }
        }
        "cancel" => {
            client
                .cancel(need_id())
                .unwrap_or_else(|e| fail(format!("cancel: {e}")));
            println!("{{\"ok\":true}}");
        }
        "stats" => {
            let doc = client
                .stats()
                .unwrap_or_else(|e| fail(format!("stats: {e}")));
            println!("{}", doc.render());
        }
        "shutdown" => {
            client
                .shutdown()
                .unwrap_or_else(|e| fail(format!("shutdown: {e}")));
            println!("{{\"ok\":true}}");
        }
        other => {
            eprintln!("unknown op {other} (try --help)");
            std::process::exit(2);
        }
    }
}

/// The persistent-connection path: negotiated framing, optional event
/// stream. Used whenever `--binary` or `--events` is requested.
fn run_over_connection(
    client: &Client,
    op: &str,
    spec: Vec<(&'static str, Json)>,
    id: Option<u64>,
    wait: bool,
    binary: bool,
    events: bool,
) {
    let mut conn = Connection::negotiate(client.addr(), binary)
        .unwrap_or_else(|e| fail(format!("cannot connect to {}: {e}", client.addr())));
    if binary && conn.framing() != lbr_service::Framing::Binary {
        eprintln!("note: daemon does not offer binary framing, using JSON");
    }
    let need_id = || id.unwrap_or_else(|| usage());
    let expect = |r: std::io::Result<Json>, what: &str| -> Json {
        r.unwrap_or_else(|e| fail(format!("{what}: {e}")))
    };
    match op {
        "ping" => {
            expect(
                conn.expect_ok(&Json::obj([("op", Json::str("ping"))])),
                "ping",
            );
            println!("{{\"ok\":true}}");
        }
        "submit" => {
            let job_id = conn
                .submit(&Json::obj_from(spec), events)
                .unwrap_or_else(|e| fail(format!("submit: {e}")));
            if !wait {
                println!("{{\"id\":{job_id}}}");
                return;
            }
            let result = if events {
                // The terminal event carries the result; progress goes to
                // stderr as it streams in.
                loop {
                    let ev = expect(conn.next_event(), "event stream");
                    match ev.str_field("event") {
                        Some("terminal") => break ev.get("result").cloned().unwrap_or(Json::Null),
                        Some("error") => fail(format!(
                            "job {job_id}: {}",
                            ev.str_field("error").unwrap_or("daemon error")
                        )),
                        _ => eprintln!("{}", ev.render()),
                    }
                }
            } else {
                expect(conn.wait_result(job_id), "waiting")
            };
            println!("{}", result.render());
            if result.str_field("status") != Some("done") {
                std::process::exit(1);
            }
        }
        "status" => {
            let doc = expect(
                conn.expect_ok(&Json::obj([
                    ("op", Json::str("status")),
                    ("id", Json::count(need_id())),
                ])),
                "status",
            );
            println!("{}", doc.render());
        }
        "result" => {
            let job_id = need_id();
            let result = if wait {
                expect(conn.wait_result(job_id), "result")
            } else {
                expect(
                    conn.expect_ok(&Json::obj([
                        ("op", Json::str("result")),
                        ("id", Json::count(job_id)),
                    ])),
                    "result",
                )
                .get("result")
                .cloned()
                .unwrap_or(Json::Null)
            };
            println!("{}", result.render());
            if result.str_field("status") != Some("done") {
                std::process::exit(1);
            }
        }
        "cancel" => {
            expect(conn.cancel(need_id()).map(|()| Json::Null), "cancel");
            println!("{{\"ok\":true}}");
        }
        "stats" => {
            let doc = expect(conn.stats(), "stats");
            println!("{}", doc.render());
        }
        "shutdown" => {
            expect(
                conn.expect_ok(&Json::obj([("op", Json::str("shutdown"))])),
                "shutdown",
            );
            println!("{{\"ok\":true}}");
        }
        other => {
            eprintln!("unknown op {other} (try --help)");
            std::process::exit(2);
        }
    }
}
