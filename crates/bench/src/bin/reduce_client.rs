//! Command-line client for the reduction daemon (`lbr-serviced`).
//!
//! ```text
//! reduce-client (--state-dir DIR | --addr HOST:PORT) <op> [args]
//!
//! ops:
//!   submit --input bench.lbrc [--decompiler a|b|c|all] [--strategy S]
//!          [--out reduced.lbrc] [--priority N] [--cost SECS]
//!          [--probe-threads N] [--probe-latency-micros N]
//!          [--deadline-secs F] [--wait] [--events] [--retry-shed]
//!   status --id N
//!   result --id N [--wait]
//!   cancel --id N
//!   stats [--cluster]
//!   shutdown
//!   ping
//! ```
//!
//! `--binary` negotiates the compact binary framing over one persistent
//! connection (daemons that do not offer it transparently fall back to
//! line JSON); `--events` streams `running`/`progress` events to stderr
//! while a `submit --wait` blocks, instead of the client polling.
//!
//! Responses are printed to stdout as one JSON document. Exit status:
//! `0` on success (for `result --wait`, only when the job finished
//! `done`), `1` on daemon/job errors, `2` on usage errors, `3` when the
//! daemon shed the submit (stderr then carries its `retry_after_ms`
//! hint; `--retry-shed` sleeps the hinted delay and retries once before
//! giving up).

use lbr_service::{Client, Connection, Json, Submitted};
use std::path::Path;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: reduce-client (--state-dir DIR | --addr HOST:PORT) <op> [args]");
    eprintln!("ops: submit status result cancel stats shutdown ping (try --help)");
    std::process::exit(2);
}

fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

/// Exit for a shed submit that was not (or no longer) retried: the
/// daemon's backoff hint goes to stderr, and the status is distinct
/// from both usage errors and hard failures.
fn shed_exit(message: &str, retry_after_ms: u64, suggest_flag: bool) -> ! {
    let suggestion = if suggest_flag {
        " (or pass --retry-shed to retry once automatically)"
    } else {
        ""
    };
    eprintln!(
        "shed: daemon refused the submit ({message}); \
         retry after {retry_after_ms}ms{suggestion}"
    );
    std::process::exit(3);
}

/// Renders a stats document, narrowed to the coordinator's cluster
/// section under `--cluster` (an error if the daemon has none).
fn print_stats(doc: &Json, cluster: bool) {
    if !cluster {
        println!("{}", doc.render());
        return;
    }
    match doc.get("cluster") {
        Some(section) => println!("{}", section.render()),
        None => {
            fail("daemon is not a cluster coordinator (stats has no cluster section)".to_owned())
        }
    }
}

/// Resolves a submit outcome, honouring `--retry-shed`: on a shed
/// response, sleep the daemon's hinted delay and retry exactly once.
fn admit(mut submit: impl FnMut() -> std::io::Result<Submitted>, retry_shed: bool) -> u64 {
    match submit().unwrap_or_else(|e| fail(format!("submit: {e}"))) {
        Submitted::Accepted(id) => id,
        Submitted::Shed {
            retry_after_ms,
            message,
        } => {
            if !retry_shed {
                shed_exit(&message, retry_after_ms, true);
            }
            eprintln!(
                "shed: daemon refused the submit ({message}); \
                 retrying once in {retry_after_ms}ms"
            );
            std::thread::sleep(Duration::from_millis(retry_after_ms));
            match submit().unwrap_or_else(|e| fail(format!("submit retry: {e}"))) {
                Submitted::Accepted(id) => id,
                Submitted::Shed {
                    retry_after_ms,
                    message,
                } => shed_exit(&message, retry_after_ms, false),
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: reduce-client (--state-dir DIR | --addr HOST:PORT) <op> [args]");
        println!();
        println!("ops:");
        println!("  submit --input bench.lbrc [--format classfile|stackvm]");
        println!("         [--decompiler a|b|c|all] [--strategy S]");
        println!("         [--out reduced.lbrc] [--priority N] [--cost SECS]");
        println!("         [--probe-threads N] [--probe-latency-micros N]");
        println!("         [--deadline-secs F] [--wait]");
        println!("  status --id N          show a job's phase");
        println!("  result --id N [--wait] fetch (or block for) a job's result");
        println!("  cancel --id N          cooperatively cancel a job");
        println!("  stats                  queue depth, cache hit rates, utilization");
        println!("  shutdown               stop the daemon (running jobs checkpoint)");
        println!("  ping                   liveness check");
        println!();
        println!("  --binary               negotiate compact binary framing");
        println!("  --events               stream job progress events to stderr");
        println!("  --retry-shed           on a shed submit, sleep the hinted delay, retry once");
        println!(
            "  --cluster              with stats: print only the coordinator's cluster section"
        );
        println!();
        println!("exit status: 0 ok, 1 error, 2 usage, 3 submit shed (hint on stderr)");
        return;
    }

    let mut addr: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut op: Option<String> = None;
    let mut id: Option<u64> = None;
    let mut wait = false;
    let mut binary = false;
    let mut events = false;
    let mut retry_shed = false;
    let mut cluster = false;
    // submit fields, passed through as the job spec.
    let mut spec: Vec<(&'static str, Json)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--addr" => addr = Some(value()),
            "--state-dir" => state_dir = Some(value()),
            "--id" => {
                id = Some(value().parse().unwrap_or_else(|_| {
                    eprintln!("--id takes a number");
                    std::process::exit(2);
                }))
            }
            "--wait" => wait = true,
            "--binary" => binary = true,
            "--events" => events = true,
            "--retry-shed" => retry_shed = true,
            "--cluster" => cluster = true,
            "--input" => spec.push(("input", Json::str(value()))),
            "--format" | "-f" => spec.push(("format", Json::str(value()))),
            "--decompiler" | "-d" => spec.push(("decompiler", Json::str(value()))),
            "--strategy" | "-s" => spec.push(("strategy", Json::str(value()))),
            "--out" | "-o" => spec.push(("output", Json::str(value()))),
            "--priority" => spec.push((
                "priority",
                Json::count(value().parse().unwrap_or_else(|_| {
                    eprintln!("--priority takes a number");
                    std::process::exit(2);
                })),
            )),
            "--cost" => spec.push((
                "cost",
                Json::Num(value().parse().unwrap_or_else(|_| {
                    eprintln!("--cost takes seconds");
                    std::process::exit(2);
                })),
            )),
            "--probe-threads" => spec.push((
                "probe_threads",
                Json::count(value().parse().unwrap_or_else(|_| {
                    eprintln!("--probe-threads takes a number");
                    std::process::exit(2);
                })),
            )),
            "--probe-latency-micros" => spec.push((
                "probe_latency_micros",
                Json::count(value().parse().unwrap_or_else(|_| {
                    eprintln!("--probe-latency-micros takes a number");
                    std::process::exit(2);
                })),
            )),
            "--deadline-secs" => spec.push((
                "deadline_secs",
                Json::Num(value().parse().unwrap_or_else(|_| {
                    eprintln!("--deadline-secs takes seconds");
                    std::process::exit(2);
                })),
            )),
            other if !other.starts_with('-') && op.is_none() => op = Some(other.to_owned()),
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let client = match (addr, state_dir) {
        (Some(addr), _) => Client::connect(addr),
        (None, Some(dir)) => Client::from_state_dir(Path::new(&dir))
            .unwrap_or_else(|e| fail(format!("no daemon at {dir}: {e}"))),
        (None, None) => usage(),
    };
    let Some(op) = op else { usage() };
    let need_id = || id.unwrap_or_else(|| usage());

    if binary || events {
        run_over_connection(
            &client, &op, spec, id, wait, binary, events, retry_shed, cluster,
        );
        return;
    }

    match op.as_str() {
        "ping" => {
            if client.ping() {
                println!("{{\"ok\":true}}");
            } else {
                fail(format!("no daemon answering at {}", client.addr()));
            }
        }
        "submit" => {
            let spec = Json::obj_from(spec);
            let job_id = admit(|| client.try_submit(&spec), retry_shed);
            if wait {
                let result = client
                    .wait_result(job_id)
                    .unwrap_or_else(|e| fail(format!("waiting on job {job_id}: {e}")));
                println!("{}", result.render());
                if result.str_field("status") != Some("done") {
                    std::process::exit(1);
                }
            } else {
                println!("{{\"id\":{job_id}}}");
            }
        }
        "status" => {
            let doc = client
                .status(need_id())
                .unwrap_or_else(|e| fail(format!("status: {e}")));
            println!("{}", doc.render());
        }
        "result" => {
            let job_id = need_id();
            let result = if wait {
                client.wait_result(job_id)
            } else {
                client
                    .expect_ok(&Json::obj([
                        ("op", Json::str("result")),
                        ("id", Json::count(job_id)),
                    ]))
                    .map(|r| r.get("result").cloned().unwrap_or(Json::Null))
            }
            .unwrap_or_else(|e| fail(format!("result: {e}")));
            println!("{}", result.render());
            if result.str_field("status") != Some("done") {
                std::process::exit(1);
            }
        }
        "cancel" => {
            client
                .cancel(need_id())
                .unwrap_or_else(|e| fail(format!("cancel: {e}")));
            println!("{{\"ok\":true}}");
        }
        "stats" => {
            let doc = client
                .stats()
                .unwrap_or_else(|e| fail(format!("stats: {e}")));
            print_stats(&doc, cluster);
        }
        "shutdown" => {
            client
                .shutdown()
                .unwrap_or_else(|e| fail(format!("shutdown: {e}")));
            println!("{{\"ok\":true}}");
        }
        other => {
            eprintln!("unknown op {other} (try --help)");
            std::process::exit(2);
        }
    }
}

/// The persistent-connection path: negotiated framing, optional event
/// stream. Used whenever `--binary` or `--events` is requested.
#[allow(clippy::too_many_arguments)]
fn run_over_connection(
    client: &Client,
    op: &str,
    spec: Vec<(&'static str, Json)>,
    id: Option<u64>,
    wait: bool,
    binary: bool,
    events: bool,
    retry_shed: bool,
    cluster: bool,
) {
    let mut conn = Connection::negotiate(client.addr(), binary)
        .unwrap_or_else(|e| fail(format!("cannot connect to {}: {e}", client.addr())));
    if binary && conn.framing() != lbr_service::Framing::Binary {
        eprintln!("note: daemon does not offer binary framing, using JSON");
    }
    let need_id = || id.unwrap_or_else(|| usage());
    let expect = |r: std::io::Result<Json>, what: &str| -> Json {
        r.unwrap_or_else(|e| fail(format!("{what}: {e}")))
    };
    match op {
        "ping" => {
            expect(
                conn.expect_ok(&Json::obj([("op", Json::str("ping"))])),
                "ping",
            );
            println!("{{\"ok\":true}}");
        }
        "submit" => {
            let spec = Json::obj_from(spec);
            let job_id = admit(|| conn.try_submit(&spec, events), retry_shed);
            if !wait {
                println!("{{\"id\":{job_id}}}");
                return;
            }
            let result = if events {
                // The terminal event carries the result; progress goes to
                // stderr as it streams in.
                loop {
                    let ev = expect(conn.next_event(), "event stream");
                    match ev.str_field("event") {
                        Some("terminal") => break ev.get("result").cloned().unwrap_or(Json::Null),
                        Some("error") => fail(format!(
                            "job {job_id}: {}",
                            ev.str_field("error").unwrap_or("daemon error")
                        )),
                        _ => eprintln!("{}", ev.render()),
                    }
                }
            } else {
                expect(conn.wait_result(job_id), "waiting")
            };
            println!("{}", result.render());
            if result.str_field("status") != Some("done") {
                std::process::exit(1);
            }
        }
        "status" => {
            let doc = expect(
                conn.expect_ok(&Json::obj([
                    ("op", Json::str("status")),
                    ("id", Json::count(need_id())),
                ])),
                "status",
            );
            println!("{}", doc.render());
        }
        "result" => {
            let job_id = need_id();
            let result = if wait {
                expect(conn.wait_result(job_id), "result")
            } else {
                expect(
                    conn.expect_ok(&Json::obj([
                        ("op", Json::str("result")),
                        ("id", Json::count(job_id)),
                    ])),
                    "result",
                )
                .get("result")
                .cloned()
                .unwrap_or(Json::Null)
            };
            println!("{}", result.render());
            if result.str_field("status") != Some("done") {
                std::process::exit(1);
            }
        }
        "cancel" => {
            expect(conn.cancel(need_id()).map(|()| Json::Null), "cancel");
            println!("{{\"ok\":true}}");
        }
        "stats" => {
            let doc = expect(conn.stats(), "stats");
            print_stats(&doc, cluster);
        }
        "shutdown" => {
            expect(
                conn.expect_ok(&Json::obj([("op", Json::str("shutdown"))])),
                "shutdown",
            );
            println!("{{\"ok\":true}}");
        }
        other => {
            eprintln!("unknown op {other} (try --help)");
            std::process::exit(2);
        }
    }
}
