//! Load generator for the reduction daemon: measures service throughput,
//! latency, and cache effectiveness under concurrent jobs.
//!
//! ```text
//! loadgen [--out BENCH_service.json] [--jobs N] [--workers 4,8]
//!         [--classes N] [--seed N]
//! ```
//!
//! For each worker count, loadgen hosts a fresh daemon over a scratch
//! state directory, generates `--jobs` distinct failing containers, and
//! runs two rounds: a **cold** round (empty oracle cache) and a **warm**
//! round resubmitting the identical job set (every probe answerable from
//! the cache). All jobs of a round are submitted up front and awaited
//! concurrently — the daemon must sustain the full set without deadlock.
//! Reported per round: jobs/sec, p50/p95 submit→result latency, and the
//! round's cache hit rate. The results land in `--out` (default
//! `BENCH_service.json`), written atomically.

use lbr_classfile::write_program;
use lbr_decompiler::BugSet;
use lbr_service::{atomic_write_str, Client, Daemon, DaemonConfig, Json};
use lbr_workload::{generate, WorkloadConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

struct RoundStats {
    jobs_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    hit_rate: f64,
    all_done: bool,
}

/// Submits every input, waits for all of them concurrently, and measures
/// the round against the cache counters it moved.
fn run_round(client: &Client, inputs: &[PathBuf], out_dir: &Path, tag: &str) -> RoundStats {
    let before = client
        .stats()
        .unwrap_or_else(|e| fail(format!("stats: {e}")));
    let cache_before = |k: &str| {
        before
            .get("cache")
            .and_then(|c| c.u64_field(k))
            .unwrap_or(0)
    };
    let (hits0, misses0) = (cache_before("hits"), cache_before("misses"));

    let round_start = Instant::now();
    let handles: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let client = client.clone();
            let spec = Json::obj([
                ("input", Json::str(input.display().to_string())),
                ("decompiler", Json::str("a")),
                (
                    "output",
                    Json::str(
                        out_dir
                            .join(format!("{tag}-{i}.lbrc"))
                            .display()
                            .to_string(),
                    ),
                ),
            ]);
            std::thread::spawn(move || {
                let submitted = Instant::now();
                let id = client.submit(&spec)?;
                let result = client.wait_result(id)?;
                Ok::<(Duration, bool), std::io::Error>((
                    submitted.elapsed(),
                    result.str_field("status") == Some("done"),
                ))
            })
        })
        .collect();
    let mut latencies_ms = Vec::with_capacity(handles.len());
    let mut all_done = true;
    for handle in handles {
        match handle.join().expect("round thread") {
            Ok((latency, done)) => {
                latencies_ms.push(latency.as_secs_f64() * 1e3);
                all_done &= done;
            }
            Err(e) => fail(format!("round job failed: {e}")),
        }
    }
    let wall = round_start.elapsed().as_secs_f64();

    let after = client
        .stats()
        .unwrap_or_else(|e| fail(format!("stats: {e}")));
    let cache_after = |k: &str| after.get("cache").and_then(|c| c.u64_field(k)).unwrap_or(0);
    let hits = cache_after("hits") - hits0;
    let lookups = hits + cache_after("misses") - misses0;

    latencies_ms.sort_by(f64::total_cmp);
    RoundStats {
        jobs_per_sec: inputs.len() as f64 / wall.max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.5),
        p95_ms: percentile(&latencies_ms, 0.95),
        hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
        all_done,
    }
}

fn round_doc(r: &RoundStats) -> Json {
    Json::obj([
        ("jobs_per_sec", Json::Num(r.jobs_per_sec)),
        ("p50_ms", Json::Num(r.p50_ms)),
        ("p95_ms", Json::Num(r.p95_ms)),
        ("cache_hit_rate", Json::Num(r.hit_rate)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_service.json".to_owned();
    let mut jobs = 8usize;
    let mut worker_counts = vec![4usize, 8];
    let mut classes = 12usize;
    let mut seed = 1u64;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--out" | "-o" => out = value(),
            "--jobs" => jobs = value().parse().expect("--jobs takes a number"),
            "--classes" => classes = value().parse().expect("--classes takes a number"),
            "--seed" => seed = value().parse().expect("--seed takes a number"),
            "--workers" => {
                worker_counts = value()
                    .split(',')
                    .map(|w| w.trim().parse().expect("--workers takes numbers"))
                    .collect();
            }
            "--help" | "-h" => {
                println!("usage: loadgen [--out BENCH_service.json] [--jobs N] [--workers 4,8]");
                println!("               [--classes N] [--seed N]");
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scratch = std::env::temp_dir().join(format!("lbr-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap_or_else(|e| fail(format!("scratch dir: {e}")));

    // One failing container per job, distinct seeds.
    let inputs: Vec<PathBuf> = (0..jobs)
        .map(|j| {
            let config = WorkloadConfig {
                seed: seed + j as u64,
                classes,
                interfaces: (classes / 3).max(2),
                plant: BugSet::decompiler_a().kinds().to_vec(),
                ..WorkloadConfig::default()
            };
            let path = scratch.join(format!("bench-{j}.lbrc"));
            std::fs::write(&path, write_program(&generate(&config)))
                .unwrap_or_else(|e| fail(format!("write container: {e}")));
            path
        })
        .collect();

    let mut runs = Vec::new();
    for &workers in &worker_counts {
        eprintln!("loadgen: {jobs} jobs on {workers} workers …");
        let state = scratch.join(format!("state-{workers}"));
        let daemon = Daemon::start(DaemonConfig::new(&state, workers))
            .unwrap_or_else(|e| fail(format!("start daemon: {e}")));
        let client = Client::connect(daemon.local_addr().to_string());
        let handle = std::thread::spawn(move || daemon.run());
        if !client.wait_ready(Duration::from_secs(5)) {
            fail("daemon did not come up".to_owned());
        }

        let out_dir = scratch.join(format!("out-{workers}"));
        std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| fail(format!("out dir: {e}")));
        let cold = run_round(&client, &inputs, &out_dir, "cold");
        let warm = run_round(&client, &inputs, &out_dir, "warm");
        if !(cold.all_done && warm.all_done) {
            fail(format!("{workers}-worker round left jobs unfinished"));
        }
        eprintln!(
            "  cold: {:6.2} jobs/s  p50 {:7.1} ms  p95 {:7.1} ms  hit rate {:4.1}%",
            cold.jobs_per_sec,
            cold.p50_ms,
            cold.p95_ms,
            100.0 * cold.hit_rate
        );
        eprintln!(
            "  warm: {:6.2} jobs/s  p50 {:7.1} ms  p95 {:7.1} ms  hit rate {:4.1}%",
            warm.jobs_per_sec,
            warm.p50_ms,
            warm.p95_ms,
            100.0 * warm.hit_rate
        );
        runs.push(Json::obj([
            ("workers", Json::count(workers as u64)),
            ("jobs", Json::count(jobs as u64)),
            ("cold", round_doc(&cold)),
            ("warm", round_doc(&warm)),
        ]));

        client
            .shutdown()
            .unwrap_or_else(|e| fail(format!("shutdown: {e}")));
        handle
            .join()
            .expect("daemon thread")
            .unwrap_or_else(|e| fail(format!("daemon: {e}")));
    }

    let doc = Json::obj([
        ("benchmark", Json::str("service-loadgen")),
        ("job_classes", Json::count(classes as u64)),
        ("runs", Json::Arr(runs)),
    ]);
    atomic_write_str(Path::new(&out), &doc.render())
        .unwrap_or_else(|e| fail(format!("cannot write {out}: {e}")));
    eprintln!("wrote {out}");
    let _ = std::fs::remove_dir_all(&scratch);
}
