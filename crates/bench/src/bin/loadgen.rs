//! Load generator for the reduction daemon: measures service throughput,
//! latency, and saturation behaviour under concurrent jobs.
//!
//! ```text
//! loadgen [--out BENCH_service.json] [--jobs N] [--workers 4,8]
//!         [--classes N] [--seed N] [--warm-repeat N] [--rates 100,200,400,800]
//!         [--sweep-secs F] [--json] [--smoke]
//!         [--cluster [--cluster-workers 1,2,4]]
//! ```
//!
//! For each worker count, loadgen hosts a fresh daemon over a scratch
//! state directory, generates `--jobs` distinct failing containers, and
//! measures three things over persistent binary-framed connections:
//!
//! * a **cold** round (empty oracle cache): every job batch-submitted up
//!   front with `"events": true`, latency taken per job from batch submit
//!   to the streamed `terminal` event;
//! * a **warm** round resubmitting the job set `--warm-repeat` times
//!   (every probe answerable from the cache) — this is the throughput
//!   number `bench_compare --service` gates;
//! * an **open-loop saturation sweep**: arrivals scheduled at fixed rates
//!   independent of completions, latency = scheduled arrival → terminal
//!   event, so queueing delay is charged to the service. Past saturation
//!   the daemon sheds with `retry_after_ms` — sheds are counted, never
//!   retried, and a shed response missing `retry_after_ms` fails the run.
//!
//! `--cluster` sweeps a clustered coordinator over worker-**node** counts
//! instead: for each count in `--cluster-workers` it hosts a coordinator
//! (daemon + cluster listener + shared oracle-cache tier) plus that many
//! in-process worker nodes over TCP, runs the same cold and warm rounds
//! under a modeled probe latency, and records the coordinator's cluster
//! stats (worker verdicts, tier hits) beside the throughput numbers —
//! the file `bench_compare --cluster` gates.
//!
//! All percentiles (p50/p95/p99) come from the full recorded latency set.
//! `--smoke` runs a fixed-seed burst against a tiny queue instead: it
//! asserts the daemon sheds rather than stalls, that every shed carries
//! `retry_after_ms`, and that every accepted job reaches a terminal event
//! — exit status is the verdict. Results land in `--out` (default
//! `BENCH_service.json`), written atomically.

use lbr_classfile::write_program;
use lbr_cluster::{run_worker, ClusterServer, WorkerOptions};
use lbr_decompiler::BugSet;
use lbr_service::{
    atomic_write_str, Client, Connection, Daemon, DaemonConfig, Json, PersistentOracleCache,
};
use lbr_workload::{generate, WorkloadConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

/// Submit requests per batch frame in the closed-loop rounds.
const BATCH: usize = 16;
/// Jobs a single connection carries in a closed-loop round — kept well
/// under the daemon's per-client in-flight cap (default 64).
const PER_CONN: usize = 40;
/// Connections the open-loop sweep spreads arrivals over.
const SWEEP_CONNS: usize = 4;
/// How long the sweep waits for accepted jobs to drain after the last
/// scheduled arrival.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

struct RoundStats {
    jobs_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    hit_rate: f64,
    replayed: u64,
    all_done: bool,
}

/// One connection's share of a closed-loop round: batch-submit all specs
/// with events on, then read the stream until every job is terminal.
fn run_conn_round(addr: &str, binary: bool, specs: Vec<Json>) -> std::io::Result<(Vec<f64>, bool)> {
    let mut conn = Connection::negotiate(addr, binary)?;
    let mut outstanding: HashMap<u64, Instant> = HashMap::new();
    let mut all_done = true;
    for chunk in specs.chunks(BATCH) {
        let submitted = Instant::now();
        for response in conn.batch(chunk)? {
            if response.bool_field("ok") == Some(true) {
                let id = response.u64_field("id").ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "submit without id")
                })?;
                outstanding.insert(id, submitted);
            } else {
                return Err(std::io::Error::other(format!(
                    "round submit rejected: {}",
                    response.render()
                )));
            }
        }
    }
    let mut latencies_ms = Vec::with_capacity(outstanding.len());
    while !outstanding.is_empty() {
        let event = conn.next_event()?;
        match event.str_field("event") {
            Some("terminal") => {
                let Some(id) = event.u64_field("id") else {
                    continue;
                };
                if let Some(submitted) = outstanding.remove(&id) {
                    latencies_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
                    let done =
                        event.get("result").and_then(|r| r.str_field("status")) == Some("done");
                    all_done &= done;
                }
            }
            Some("error") => {
                return Err(std::io::Error::other(format!(
                    "daemon error mid-round: {}",
                    event.render()
                )))
            }
            _ => {} // running / progress
        }
    }
    Ok((latencies_ms, all_done))
}

/// Batch-submits `specs` across enough connections to stay under the
/// per-client cap, waits for all terminal events, and reports the round.
fn run_round(client: &Client, addr: &str, binary: bool, specs: Vec<Json>) -> RoundStats {
    let before = client
        .stats()
        .unwrap_or_else(|e| fail(format!("stats: {e}")));
    let cache_before = |k: &str| {
        before
            .get("cache")
            .and_then(|c| c.u64_field(k))
            .unwrap_or(0)
    };
    let (hits0, misses0) = (cache_before("hits"), cache_before("misses"));
    let replayed0 = before
        .get("jobs")
        .and_then(|j| j.u64_field("replayed"))
        .unwrap_or(0);

    let total = specs.len();
    let conns = total.div_ceil(PER_CONN).max(1);
    let mut shares: Vec<Vec<Json>> = (0..conns).map(|_| Vec::new()).collect();
    for (i, spec) in specs.into_iter().enumerate() {
        shares[i % conns].push(spec);
    }
    let round_start = Instant::now();
    let handles: Vec<_> = shares
        .into_iter()
        .map(|share| {
            let addr = addr.to_owned();
            std::thread::spawn(move || run_conn_round(&addr, binary, share))
        })
        .collect();
    let mut latencies_ms = Vec::with_capacity(total);
    let mut all_done = true;
    for handle in handles {
        match handle.join().expect("round thread") {
            Ok((lats, done)) => {
                latencies_ms.extend(lats);
                all_done &= done;
            }
            Err(e) => fail(format!("round connection failed: {e}")),
        }
    }
    let wall = round_start.elapsed().as_secs_f64();

    let after = client
        .stats()
        .unwrap_or_else(|e| fail(format!("stats: {e}")));
    let cache_after = |k: &str| after.get("cache").and_then(|c| c.u64_field(k)).unwrap_or(0);
    let hits = cache_after("hits") - hits0;
    let lookups = hits + cache_after("misses") - misses0;

    latencies_ms.sort_by(f64::total_cmp);
    RoundStats {
        jobs_per_sec: total as f64 / wall.max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.5),
        p95_ms: percentile(&latencies_ms, 0.95),
        p99_ms: percentile(&latencies_ms, 0.99),
        hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
        replayed: after
            .get("jobs")
            .and_then(|j| j.u64_field("replayed"))
            .unwrap_or(0)
            - replayed0,
        all_done,
    }
}

struct SweepStats {
    rate_jps: f64,
    offered: usize,
    completed: usize,
    shed: usize,
    achieved_jps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

struct SweepShare {
    latencies_ms: Vec<f64>,
    completed: usize,
    shed: usize,
    sheds_missing_retry: usize,
    not_done: usize,
    last_offset: Duration,
}

/// One connection's share of the open-loop sweep. Arrivals are absolute
/// offsets from the shared epoch; between arrivals the thread polls the
/// event stream so terminal events are timestamped close to arrival.
fn run_conn_sweep(
    addr: &str,
    binary: bool,
    epoch: Instant,
    mine: Vec<(Duration, Json)>,
) -> std::io::Result<SweepShare> {
    let mut conn = Connection::negotiate(addr, binary)?;
    let mut outstanding: HashMap<u64, Duration> = HashMap::new();
    let mut share = SweepShare {
        latencies_ms: Vec::new(),
        completed: 0,
        shed: 0,
        sheds_missing_retry: 0,
        not_done: 0,
        last_offset: Duration::ZERO,
    };
    let absorb = |share: &mut SweepShare,
                  outstanding: &mut HashMap<u64, Duration>,
                  event: Json|
     -> std::io::Result<()> {
        match event.str_field("event") {
            Some("terminal") => {
                let Some(id) = event.u64_field("id") else {
                    return Ok(());
                };
                if let Some(scheduled) = outstanding.remove(&id) {
                    let now = epoch.elapsed();
                    share
                        .latencies_ms
                        .push((now.saturating_sub(scheduled)).as_secs_f64() * 1e3);
                    share.completed += 1;
                    share.last_offset = share.last_offset.max(now);
                    if event.get("result").and_then(|r| r.str_field("status")) != Some("done") {
                        share.not_done += 1;
                    }
                }
                Ok(())
            }
            Some("error") => Err(std::io::Error::other(format!(
                "daemon error mid-sweep: {}",
                event.render()
            ))),
            _ => Ok(()),
        }
    };
    for (offset, request) in mine {
        // Open loop: hold to the schedule, draining events while we wait.
        loop {
            let now = epoch.elapsed();
            if now >= offset {
                break;
            }
            let window = (offset - now).min(Duration::from_millis(5));
            if let Some(event) = conn.poll_event(window)? {
                absorb(&mut share, &mut outstanding, event)?;
            }
        }
        let response = conn.request(&request)?;
        if response.bool_field("ok") == Some(true) {
            let id = response.u64_field("id").ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "submit without id")
            })?;
            outstanding.insert(id, offset);
        } else if response.bool_field("shed") == Some(true) {
            share.shed += 1;
            if response.u64_field("retry_after_ms").is_none() {
                share.sheds_missing_retry += 1;
            }
        } else {
            return Err(std::io::Error::other(format!(
                "sweep submit rejected: {}",
                response.render()
            )));
        }
    }
    let deadline = Instant::now() + DRAIN_TIMEOUT;
    while !outstanding.is_empty() {
        if Instant::now() >= deadline {
            return Err(std::io::Error::other(format!(
                "{} accepted jobs never reached a terminal event",
                outstanding.len()
            )));
        }
        if let Some(event) = conn.poll_event(Duration::from_millis(50))? {
            absorb(&mut share, &mut outstanding, event)?;
        }
    }
    Ok(share)
}

/// Open-loop burst at a fixed arrival rate: `offered` arrivals scheduled
/// at `1/rate` spacing, round-robined across connections. Returns the
/// stats plus the number of shed responses missing `retry_after_ms`
/// (which the caller treats as a hard failure).
fn run_sweep(
    addr: &str,
    binary: bool,
    inputs: &[PathBuf],
    rate_jps: f64,
    offered: usize,
    tag: &str,
) -> (SweepStats, usize, usize) {
    let spacing = Duration::from_secs_f64(1.0 / rate_jps.max(1e-9));
    let mut shares: Vec<Vec<(Duration, Json)>> = (0..SWEEP_CONNS).map(|_| Vec::new()).collect();
    for k in 0..offered {
        let input = &inputs[k % inputs.len()];
        let request = Json::obj([
            ("op", Json::str("submit")),
            ("input", Json::str(input.display().to_string())),
            ("decompiler", Json::str("a")),
            ("events", Json::Bool(true)),
            ("tag", Json::str(format!("{tag}-{k}"))),
        ]);
        shares[k % SWEEP_CONNS].push((spacing.mul_f64(k as f64), request));
    }
    let epoch = Instant::now() + Duration::from_millis(50);
    let handles: Vec<_> = shares
        .into_iter()
        .map(|mine| {
            let addr = addr.to_owned();
            std::thread::spawn(move || run_conn_sweep(&addr, binary, epoch, mine))
        })
        .collect();
    let mut latencies_ms = Vec::new();
    let (mut completed, mut shed, mut missing_retry, mut not_done) = (0, 0, 0, 0);
    let mut last_offset = Duration::ZERO;
    for handle in handles {
        match handle.join().expect("sweep thread") {
            Ok(share) => {
                latencies_ms.extend(share.latencies_ms);
                completed += share.completed;
                shed += share.shed;
                missing_retry += share.sheds_missing_retry;
                not_done += share.not_done;
                last_offset = last_offset.max(share.last_offset);
            }
            Err(e) => fail(format!("sweep connection failed: {e}")),
        }
    }
    latencies_ms.sort_by(f64::total_cmp);
    let span = last_offset.as_secs_f64().max(1e-9);
    (
        SweepStats {
            rate_jps,
            offered,
            completed,
            shed,
            achieved_jps: completed as f64 / span,
            p50_ms: percentile(&latencies_ms, 0.5),
            p95_ms: percentile(&latencies_ms, 0.95),
            p99_ms: percentile(&latencies_ms, 0.99),
        },
        missing_retry,
        not_done,
    )
}

fn round_doc(r: &RoundStats) -> Json {
    Json::obj([
        ("jobs_per_sec", Json::Num(r.jobs_per_sec)),
        ("p50_ms", Json::Num(r.p50_ms)),
        ("p95_ms", Json::Num(r.p95_ms)),
        ("p99_ms", Json::Num(r.p99_ms)),
        ("cache_hit_rate", Json::Num(r.hit_rate)),
        ("replayed", Json::count(r.replayed)),
    ])
}

fn sweep_doc(s: &SweepStats) -> Json {
    Json::obj([
        ("rate_jps", Json::Num(s.rate_jps)),
        ("offered", Json::count(s.offered as u64)),
        ("completed", Json::count(s.completed as u64)),
        ("shed", Json::count(s.shed as u64)),
        ("achieved_jps", Json::Num(s.achieved_jps)),
        ("p50_ms", Json::Num(s.p50_ms)),
        ("p95_ms", Json::Num(s.p95_ms)),
        ("p99_ms", Json::Num(s.p99_ms)),
    ])
}

/// Distinct failing containers, one per job, seeded deterministically.
fn generate_inputs(scratch: &Path, jobs: usize, classes: usize, seed: u64) -> Vec<PathBuf> {
    (0..jobs)
        .map(|j| {
            let config = WorkloadConfig {
                seed: seed + j as u64,
                classes,
                interfaces: (classes / 3).max(2),
                plant: BugSet::decompiler_a().kinds().to_vec(),
                ..WorkloadConfig::default()
            };
            let path = scratch.join(format!("bench-{j}.lbrc"));
            std::fs::write(&path, write_program(&generate(&config)))
                .unwrap_or_else(|e| fail(format!("write container: {e}")));
            path
        })
        .collect()
}

fn submit_request(input: &Path, output: Option<PathBuf>, tag: String) -> Json {
    submit_request_latency(input, output, tag, 0)
}

fn submit_request_latency(
    input: &Path,
    output: Option<PathBuf>,
    tag: String,
    latency_micros: u64,
) -> Json {
    let mut fields = vec![
        ("op".to_owned(), Json::str("submit")),
        ("input".to_owned(), Json::str(input.display().to_string())),
        ("decompiler".to_owned(), Json::str("a")),
        ("events".to_owned(), Json::Bool(true)),
        ("tag".to_owned(), Json::str(tag)),
    ];
    if latency_micros > 0 {
        fields.push((
            "probe_latency_micros".to_owned(),
            Json::count(latency_micros),
        ));
    }
    if let Some(output) = output {
        fields.push(("output".to_owned(), Json::str(output.display().to_string())));
    }
    Json::Obj(fields.into_iter().collect())
}

/// Modeled probe latency for the cluster rounds: expensive enough that
/// distributing probes to worker nodes is worth the wire trip, as with a
/// real decompiler toolchain.
const CLUSTER_PROBE_LATENCY_MICROS: u64 = 1_500;

/// The `--cluster` sweep: for each worker-node count, host a clustered
/// coordinator plus that many in-process worker nodes, run the same cold
/// and warm closed-loop rounds, and record the coordinator's cluster
/// stats beside the throughput numbers.
fn run_cluster_bench(
    scratch: &Path,
    inputs: &[PathBuf],
    node_counts: &[usize],
    warm_repeat: usize,
    binary: bool,
    out: &str,
    classes: usize,
) {
    let jobs = inputs.len();
    let warm_jobs = jobs * warm_repeat.max(1);
    let mut runs = Vec::new();
    for &nodes in node_counts {
        eprintln!(
            "loadgen: cluster round with {nodes} worker node(s), {jobs} jobs ({warm_jobs} warm) …"
        );
        let state = scratch.join(format!("cluster-{nodes}"));
        std::fs::create_dir_all(&state).unwrap_or_else(|e| fail(format!("state dir: {e}")));
        let cache = Arc::new(
            PersistentOracleCache::open(state.join("oracle.cache"))
                .unwrap_or_else(|e| fail(format!("open cache: {e}"))),
        );
        let server = ClusterServer::start(&state, Arc::clone(&cache), 8)
            .unwrap_or_else(|e| fail(format!("cluster server: {e}")));
        let mut config = DaemonConfig::new(&state, 2);
        config.queue_capacity = (warm_jobs + 16).max(64);
        let daemon = Daemon::start_clustered(config, cache, Arc::clone(&server) as _)
            .unwrap_or_else(|e| fail(format!("start daemon: {e}")));
        let addr = daemon.local_addr().to_string();
        let client = Client::connect(addr.clone());
        let handle = std::thread::spawn(move || daemon.run());
        if !client.wait_ready(Duration::from_secs(5)) {
            fail("clustered daemon did not come up".to_owned());
        }
        let stop = Arc::new(AtomicBool::new(false));
        let coordinator = server.local_addr().to_string();
        let workers: Vec<_> = (0..nodes)
            .map(|i| {
                let mut options = WorkerOptions::new(&coordinator, format!("loadgen-{i}"));
                options.stop = Some(Arc::clone(&stop));
                std::thread::spawn(move || run_worker(&options))
            })
            .collect();

        let out_dir = scratch.join(format!("cluster-out-{nodes}"));
        std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| fail(format!("out dir: {e}")));
        let cold_specs: Vec<Json> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                submit_request_latency(
                    input,
                    Some(out_dir.join(format!("cold-{i}.lbrc"))),
                    format!("cold-{i}"),
                    CLUSTER_PROBE_LATENCY_MICROS,
                )
            })
            .collect();
        let cold = run_round(&client, &addr, binary, cold_specs);
        let warm_specs: Vec<Json> = (0..warm_jobs)
            .map(|k| {
                submit_request_latency(
                    &inputs[k % inputs.len()],
                    None,
                    format!("warm-{k}"),
                    CLUSTER_PROBE_LATENCY_MICROS,
                )
            })
            .collect();
        let warm = run_round(&client, &addr, binary, warm_specs);
        if !(cold.all_done && warm.all_done) {
            fail(format!("{nodes}-node cluster round left jobs unfinished"));
        }
        let stats = client
            .stats()
            .unwrap_or_else(|e| fail(format!("stats: {e}")));
        let cluster_stats = stats
            .get("cluster")
            .cloned()
            .unwrap_or_else(|| fail("clustered daemon reported no cluster stats".to_owned()));
        eprintln!(
            "  cold: {:6.2} jobs/s  p95 {:7.1} ms   warm: {:6.2} jobs/s  p95 {:7.1} ms   worker verdicts {}",
            cold.jobs_per_sec,
            cold.p95_ms,
            warm.jobs_per_sec,
            warm.p95_ms,
            cluster_stats.u64_field("verdicts").unwrap_or(0)
        );

        runs.push(Json::obj([
            ("workers", Json::count(nodes as u64)),
            ("jobs", Json::count(jobs as u64)),
            ("warm_jobs", Json::count(warm_jobs as u64)),
            ("cold", round_doc(&cold)),
            ("warm", round_doc(&warm)),
            ("cluster", cluster_stats),
        ]));

        stop.store(true, Ordering::SeqCst);
        client
            .shutdown()
            .unwrap_or_else(|e| fail(format!("shutdown: {e}")));
        for worker in workers {
            let _ = worker.join().expect("worker thread");
        }
        server.shutdown();
        handle
            .join()
            .expect("daemon thread")
            .unwrap_or_else(|e| fail(format!("daemon: {e}")));
    }

    let doc = Json::obj([
        ("benchmark", Json::str("service-loadgen-cluster")),
        ("job_classes", Json::count(classes as u64)),
        ("warm_repeat", Json::count(warm_repeat as u64)),
        (
            "probe_latency_micros",
            Json::count(CLUSTER_PROBE_LATENCY_MICROS),
        ),
        ("framing", Json::str(if binary { "binary" } else { "json" })),
        ("runs", Json::Arr(runs)),
    ]);
    atomic_write_str(Path::new(out), &doc.render())
        .unwrap_or_else(|e| fail(format!("cannot write {out}: {e}")));
    eprintln!("wrote {out}");
}

/// Fixed-seed saturation smoke for CI: a burst far past a deliberately
/// tiny queue must shed (with `retry_after_ms` on every shed) instead of
/// stalling, and every accepted job must still reach a terminal event.
fn run_smoke(scratch: &Path, seed: u64, binary: bool) {
    let inputs = generate_inputs(scratch, 3, 8, seed);
    let state = scratch.join("state-smoke");
    let mut config = DaemonConfig::new(&state, 2);
    config.queue_capacity = 6;
    let daemon = Daemon::start(config).unwrap_or_else(|e| fail(format!("start daemon: {e}")));
    let addr = daemon.local_addr().to_string();
    let client = Client::connect(addr.clone());
    let handle = std::thread::spawn(move || daemon.run());
    if !client.wait_ready(Duration::from_secs(5)) {
        fail("daemon did not come up".to_owned());
    }

    let offered = 48;
    let (stats, missing_retry, not_done) =
        run_sweep(&addr, binary, &inputs, 400.0, offered, "smoke");
    client
        .shutdown()
        .unwrap_or_else(|e| fail(format!("shutdown: {e}")));
    handle
        .join()
        .expect("daemon thread")
        .unwrap_or_else(|e| fail(format!("daemon: {e}")));

    eprintln!(
        "smoke: offered {} at 400/s  accepted {}  shed {}  p95 {:.1} ms",
        stats.offered, stats.completed, stats.shed, stats.p95_ms
    );
    if missing_retry > 0 {
        fail(format!(
            "{missing_retry} shed responses missing retry_after_ms"
        ));
    }
    if not_done > 0 {
        fail(format!("{not_done} accepted jobs did not finish done"));
    }
    if stats.shed == 0 {
        fail("burst past a 6-deep queue shed nothing — admission control inert".to_owned());
    }
    if stats.completed + stats.shed != stats.offered {
        fail(format!(
            "arrivals unaccounted for: {} completed + {} shed != {} offered",
            stats.completed, stats.shed, stats.offered
        ));
    }
    println!(
        "smoke ok: {} completed, {} shed, all sheds carried retry_after_ms",
        stats.completed, stats.shed
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_service.json".to_owned();
    let mut jobs = 8usize;
    let mut worker_counts = vec![4usize, 8];
    let mut classes = 12usize;
    let mut seed = 1u64;
    let mut warm_repeat = 12usize;
    let mut rates: Vec<f64> = vec![100.0, 200.0, 400.0, 800.0];
    let mut sweep_secs = 2.0f64;
    let mut binary = true;
    let mut smoke = false;
    let mut cluster = false;
    let mut cluster_workers = vec![1usize, 2, 4];
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--out" | "-o" => out = value(),
            "--jobs" => jobs = value().parse().expect("--jobs takes a number"),
            "--classes" => classes = value().parse().expect("--classes takes a number"),
            "--seed" => seed = value().parse().expect("--seed takes a number"),
            "--warm-repeat" => warm_repeat = value().parse().expect("--warm-repeat takes a number"),
            "--sweep-secs" => sweep_secs = value().parse().expect("--sweep-secs takes seconds"),
            "--rates" => {
                rates = value()
                    .split(',')
                    .map(|r| r.trim().parse().expect("--rates takes numbers"))
                    .collect();
            }
            "--workers" => {
                worker_counts = value()
                    .split(',')
                    .map(|w| w.trim().parse().expect("--workers takes numbers"))
                    .collect();
            }
            "--json" => binary = false,
            "--smoke" => smoke = true,
            "--cluster" => cluster = true,
            "--cluster-workers" => {
                cluster_workers = value()
                    .split(',')
                    .map(|w| w.trim().parse().expect("--cluster-workers takes numbers"))
                    .collect();
            }
            "--help" | "-h" => {
                println!("usage: loadgen [--out BENCH_service.json] [--jobs N] [--workers 4,8]");
                println!("               [--classes N] [--seed N] [--warm-repeat N]");
                println!(
                    "               [--rates 100,200,400,800] [--sweep-secs F] [--json] [--smoke]"
                );
                println!("               [--cluster [--cluster-workers 1,2,4]]");
                println!();
                println!("  --cluster  sweep a clustered coordinator over worker-node counts");
                println!("             instead of the plain daemon over shard counts");
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scratch = std::env::temp_dir().join(format!("lbr-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap_or_else(|e| fail(format!("scratch dir: {e}")));

    if smoke {
        run_smoke(&scratch, seed, binary);
        let _ = std::fs::remove_dir_all(&scratch);
        return;
    }

    let inputs = generate_inputs(&scratch, jobs, classes, seed);

    if cluster {
        run_cluster_bench(
            &scratch,
            &inputs,
            &cluster_workers,
            warm_repeat,
            binary,
            &out,
            classes,
        );
        let _ = std::fs::remove_dir_all(&scratch);
        return;
    }

    let warm_jobs = jobs * warm_repeat.max(1);

    let mut runs = Vec::new();
    for &workers in &worker_counts {
        eprintln!("loadgen: {jobs} jobs ({warm_jobs} warm) on {workers} workers …");
        let state = scratch.join(format!("state-{workers}"));
        let mut config = DaemonConfig::new(&state, workers);
        // Closed-loop rounds submit everything up front; size the queue so
        // the rounds measure throughput, not admission control (the sweep
        // and --smoke exercise shedding).
        config.queue_capacity = (warm_jobs + 16).max(64);
        // The production configuration for a fleet front door: identical
        // resubmissions replay from the result store.
        config.memoize_results = true;
        let daemon = Daemon::start(config).unwrap_or_else(|e| fail(format!("start daemon: {e}")));
        let addr = daemon.local_addr().to_string();
        let client = Client::connect(addr.clone());
        let handle = std::thread::spawn(move || daemon.run());
        if !client.wait_ready(Duration::from_secs(5)) {
            fail("daemon did not come up".to_owned());
        }

        let out_dir = scratch.join(format!("out-{workers}"));
        std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| fail(format!("out dir: {e}")));
        let cold_specs: Vec<Json> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                submit_request(
                    input,
                    Some(out_dir.join(format!("cold-{i}.lbrc"))),
                    format!("cold-{i}"),
                )
            })
            .collect();
        let cold = run_round(&client, &addr, binary, cold_specs);
        let warm_specs: Vec<Json> = (0..warm_jobs)
            .map(|k| submit_request(&inputs[k % inputs.len()], None, format!("warm-{k}")))
            .collect();
        let warm = run_round(&client, &addr, binary, warm_specs);
        if !(cold.all_done && warm.all_done) {
            fail(format!("{workers}-worker round left jobs unfinished"));
        }
        eprintln!(
            "  cold: {:6.2} jobs/s  p50 {:7.1} ms  p95 {:7.1} ms  p99 {:7.1} ms  hit rate {:4.1}%",
            cold.jobs_per_sec,
            cold.p50_ms,
            cold.p95_ms,
            cold.p99_ms,
            100.0 * cold.hit_rate
        );
        eprintln!(
            "  warm: {:6.2} jobs/s  p50 {:7.1} ms  p95 {:7.1} ms  p99 {:7.1} ms  hit rate {:4.1}%",
            warm.jobs_per_sec,
            warm.p50_ms,
            warm.p95_ms,
            warm.p99_ms,
            100.0 * warm.hit_rate
        );

        let mut sweeps = Vec::new();
        for &rate in &rates {
            let offered = ((rate * sweep_secs) as usize).clamp(10, 600);
            let (stats, missing_retry, not_done) = run_sweep(
                &addr,
                binary,
                &inputs,
                rate,
                offered,
                &format!("sweep-{rate}"),
            );
            if missing_retry > 0 {
                fail(format!(
                    "{missing_retry} shed responses missing retry_after_ms"
                ));
            }
            if not_done > 0 {
                fail(format!("{not_done} sweep jobs did not finish done"));
            }
            eprintln!(
                "  sweep @{:6.1}/s: achieved {:6.2}/s  shed {:3}  p50 {:7.1} ms  p95 {:7.1} ms  p99 {:7.1} ms",
                stats.rate_jps, stats.achieved_jps, stats.shed, stats.p50_ms, stats.p95_ms, stats.p99_ms
            );
            sweeps.push(sweep_doc(&stats));
        }

        runs.push(Json::obj([
            ("workers", Json::count(workers as u64)),
            ("jobs", Json::count(jobs as u64)),
            ("warm_jobs", Json::count(warm_jobs as u64)),
            ("cold", round_doc(&cold)),
            ("warm", round_doc(&warm)),
            ("sweep", Json::Arr(sweeps)),
        ]));

        client
            .shutdown()
            .unwrap_or_else(|e| fail(format!("shutdown: {e}")));
        handle
            .join()
            .expect("daemon thread")
            .unwrap_or_else(|e| fail(format!("daemon: {e}")));
    }

    let doc = Json::obj([
        ("benchmark", Json::str("service-loadgen")),
        ("job_classes", Json::count(classes as u64)),
        ("warm_repeat", Json::count(warm_repeat as u64)),
        ("framing", Json::str(if binary { "binary" } else { "json" })),
        ("runs", Json::Arr(runs)),
    ]);
    atomic_write_str(Path::new(&out), &doc.render())
        .unwrap_or_else(|e| fail(format!("cannot write {out}: {e}")));
    eprintln!("wrote {out}");
    let _ = std::fs::remove_dir_all(&scratch);
}
