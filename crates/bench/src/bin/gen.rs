//! Generates an NJR-like benchmark program and writes it as an `LBRC`
//! container (the workspace's class-file bundle format).
//!
//! ```text
//! gen --out bench.lbrc [--seed N] [--classes N] [--interfaces N]
//!     [--decompiler a|b|c|all] [--disasm]
//! ```

use lbr_classfile::{disassemble_program, program_byte_size, write_program};
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_workload::{generate, WorkloadConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut config = WorkloadConfig::default();
    let mut decompiler = "a".to_owned();
    let mut disasm = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--out" | "-o" => out = Some(value()),
            "--seed" => config.seed = value().parse().expect("--seed takes a number"),
            "--classes" => config.classes = value().parse().expect("--classes takes a number"),
            "--interfaces" => {
                config.interfaces = value().parse().expect("--interfaces takes a number")
            }
            "--decompiler" | "-d" => decompiler = value(),
            "--disasm" => disasm = true,
            "--help" | "-h" => {
                println!(
                    "usage: gen --out bench.lbrc [--seed N] [--classes N] [--interfaces N] [--decompiler a|b|c|all] [--disasm]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let bugs = bugset_by_name(&decompiler);
    config.plant = bugs.kinds().to_vec();
    let program = generate(&config);
    let oracle = DecompilerOracle::new(&program, bugs);
    eprintln!(
        "generated: {} classes, {} bytes; decompiler {decompiler} produces {} errors",
        program.len(),
        program_byte_size(&program),
        oracle.error_count()
    );
    if disasm {
        print!("{}", disassemble_program(&program));
    }
    match out {
        Some(path) => {
            std::fs::write(&path, write_program(&program))
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => {
            if !disasm {
                eprintln!("no --out given; use --disasm to print instead");
                std::process::exit(2);
            }
        }
    }
}

fn bugset_by_name(name: &str) -> BugSet {
    match name {
        "a" => BugSet::decompiler_a(),
        "b" => BugSet::decompiler_b(),
        "c" => BugSet::decompiler_c(),
        "all" => BugSet::all(),
        other => {
            eprintln!("unknown decompiler {other} (a|b|c|all)");
            std::process::exit(2);
        }
    }
}
