//! Generates a benchmark program and writes it as an `LBRC` container
//! (class-file bundle) or an `LBRS` container (stackvm module).
//!
//! ```text
//! gen --out bench.lbrc [--format classfile|stackvm] [--seed N]
//!     [--classes N] [--interfaces N] [--functions N] [--globals N]
//!     [--decompiler a|b|c|all] [--disasm]
//! ```

use lbr_classfile::{disassemble_program, program_byte_size, write_program};
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_stackvm::{module_byte_size, write_module, StackBugSet, StackOracle};
use lbr_workload::{generate, generate_stack, StackWorkloadConfig, WorkloadConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut format = "classfile".to_owned();
    let mut config = WorkloadConfig::default();
    let mut stack_config = StackWorkloadConfig::default();
    let mut decompiler = "a".to_owned();
    let mut disasm = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--out" | "-o" => out = Some(value()),
            "--format" | "-f" => format = value(),
            "--seed" => {
                let seed = value().parse().expect("--seed takes a number");
                config.seed = seed;
                stack_config.seed = seed;
            }
            "--classes" => config.classes = value().parse().expect("--classes takes a number"),
            "--interfaces" => {
                config.interfaces = value().parse().expect("--interfaces takes a number")
            }
            "--functions" => {
                stack_config.functions = value().parse().expect("--functions takes a number")
            }
            "--globals" => {
                stack_config.globals = value().parse().expect("--globals takes a number")
            }
            "--decompiler" | "-d" => decompiler = value(),
            "--disasm" => disasm = true,
            "--help" | "-h" => {
                println!(
                    "usage: gen --out bench.lbrc [--format classfile|stackvm] [--seed N] [--classes N] [--interfaces N] [--functions N] [--globals N] [--decompiler a|b|c|all] [--disasm]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let bytes = match format.as_str() {
        "classfile" => {
            let bugs = bugset_by_name(&decompiler);
            config.plant = bugs.kinds().to_vec();
            let program = generate(&config);
            let oracle = DecompilerOracle::new(&program, bugs);
            eprintln!(
                "generated: {} classes, {} bytes; decompiler {decompiler} produces {} errors",
                program.len(),
                program_byte_size(&program),
                oracle.error_count()
            );
            if disasm {
                print!("{}", disassemble_program(&program));
            }
            write_program(&program)
        }
        "stackvm" => {
            let bugs = stack_bugset_by_name(&decompiler);
            stack_config.plant = bugs.kinds().to_vec();
            let module = generate_stack(&stack_config);
            let oracle = StackOracle::new(&module, bugs);
            eprintln!(
                "generated: {} functions, {} globals, {} bytes; lowering {decompiler} produces {} errors",
                module.functions.len(),
                module.globals.len(),
                module_byte_size(&module),
                oracle.baseline().len()
            );
            if disasm {
                println!("{module:#?}");
            }
            write_module(&module)
        }
        other => {
            eprintln!("unknown format {other} (classfile|stackvm)");
            std::process::exit(2);
        }
    };
    match out {
        Some(path) => {
            std::fs::write(&path, bytes).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => {
            if !disasm {
                eprintln!("no --out given; use --disasm to print instead");
                std::process::exit(2);
            }
        }
    }
}

fn bugset_by_name(name: &str) -> BugSet {
    match name {
        "a" => BugSet::decompiler_a(),
        "b" => BugSet::decompiler_b(),
        "c" => BugSet::decompiler_c(),
        "all" => BugSet::all(),
        other => {
            eprintln!("unknown decompiler {other} (a|b|c|all)");
            std::process::exit(2);
        }
    }
}

fn stack_bugset_by_name(name: &str) -> StackBugSet {
    match name {
        "a" => StackBugSet::lowering_a(),
        "b" => StackBugSet::lowering_b(),
        "c" => StackBugSet::lowering_c(),
        "all" => StackBugSet::all(),
        other => {
            eprintln!("unknown decompiler {other} (a|b|c|all)");
            std::process::exit(2);
        }
    }
}
