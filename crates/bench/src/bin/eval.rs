//! The evaluation binary: regenerates every table and figure of the
//! paper's Section 5 on the synthetic NJR-like suite.
//!
//! ```text
//! eval [--experiment all|stats|fig8a|fig8b|lossy|compare|ablate-msa|ablate-order|ablate-engine|ddmin|csv]
//!      [--format classfile|stackvm|both]
//!      [--programs N] [--scale F] [--seed N] [--cost SECS]
//!      [--threads N] [--repeats N] [--probe-threads N] [--legacy] [--json [PATH]]
//!      [--engine dpll|cdcl] [--order baseline|learned|portfolio]
//! ```
//!
//! `--format` selects which frontend's suite the experiment runs over:
//! the classfile suite (default), the stackvm suite, or `both` — every
//! run record and JSON aggregate is tagged with its format, so one
//! results file can gate both frontends at once.
//!
//! `--legacy` disables the incremental propagation engine and oracle
//! memoization (the scan-BCP baseline); `--probe-threads` enables
//! speculative parallel probing inside each GBR search (bit-identical
//! results at any setting); `--engine cdcl` backs the logical strategies
//! with the CDCL solver (bit-identical results, different solver effort);
//! `--order` picks the GBR variable order of the logical strategies;
//! `--json` writes machine-readable results (default path
//! `BENCH_results.json`). The `ablate-engine` experiment runs the
//! engine/order variant grid in one shot (rows suffixed `+cdcl`,
//! `+order-learned`, `+order-portfolio`) — the source of the committed
//! `BENCH_baseline.json`.

use lbr_bench::{
    compare_strategies, compute_stats, headline_strategies, lossy_strategies, render_ablation,
    render_compare, render_csv, render_fig8a, render_fig8b, render_json, render_lossy,
    render_stats, run_engine_grid, run_grid, EvalBenchmark, EvalConfig, RunRecord,
};
use lbr_core::EngineChoice;
use lbr_jreduce::{OrderChoice, RunOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_owned();
    let mut format = "classfile".to_owned();
    let mut config = EvalConfig::default();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> String {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag {
            "--experiment" | "-e" => {
                experiment = value(i);
                i += 2;
            }
            "--format" | "-f" => {
                format = value(i);
                i += 2;
            }
            "--programs" | "-p" => {
                config.programs = value(i).parse().expect("--programs takes a number");
                i += 2;
            }
            "--scale" => {
                config.scale = value(i).parse().expect("--scale takes a number");
                i += 2;
            }
            "--seed" => {
                config.seed = value(i).parse().expect("--seed takes a number");
                i += 2;
            }
            "--cost" => {
                config.cost_per_call_secs = value(i).parse().expect("--cost takes seconds");
                i += 2;
            }
            "--threads" | "-j" => {
                config.threads = value(i).parse().expect("--threads takes a number");
                i += 2;
            }
            "--repeats" => {
                config.repeats = value(i).parse().expect("--repeats takes a count");
                i += 2;
            }
            "--probe-threads" => {
                config.options.probe_threads =
                    value(i).parse().expect("--probe-threads takes a number");
                i += 2;
            }
            "--probe-latency" => {
                let secs: f64 = value(i).parse().expect("--probe-latency takes seconds");
                config.options.probe_latency_micros = (secs * 1e6) as u64;
                i += 2;
            }
            "--legacy" => {
                config.options = RunOptions::legacy();
                i += 1;
            }
            "--engine" => {
                config.options.engine = match value(i).as_str() {
                    "dpll" => EngineChoice::Dpll,
                    "cdcl" => EngineChoice::Cdcl,
                    other => {
                        eprintln!("unknown engine {other} (dpll|cdcl)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--order" => {
                config.options.order = match value(i).as_str() {
                    "baseline" => OrderChoice::Baseline,
                    "learned" => OrderChoice::Learned,
                    "portfolio" => OrderChoice::Portfolio,
                    other => {
                        eprintln!("unknown order {other} (baseline|learned|portfolio)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--slot-dir" => {
                config.slot_dir = Some(value(i).into());
                i += 2;
            }
            "--json" => {
                // Optional value: `--json out.json` or bare `--json`.
                match args.get(i + 1) {
                    Some(v) if !v.starts_with('-') => {
                        json_path = Some(v.clone());
                        i += 2;
                    }
                    _ => {
                        json_path = Some("BENCH_results.json".to_owned());
                        i += 1;
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: eval [--experiment all|stats|fig8a|fig8b|lossy|compare|per-error|ablate-msa|ablate-order|ablate-engine|ddmin|csv]"
                );
                println!("            [--format classfile|stackvm|both]");
                println!("            [--programs N] [--scale F] [--seed N] [--cost SECS]");
                println!(
                    "            [--threads N] [--repeats N] [--probe-threads N] [--legacy] [--json [PATH]]"
                );
                println!("            [--engine dpll|cdcl] [--order baseline|learned|portfolio]");
                println!();
                println!("  --format F    which frontend's suite to evaluate: classfile");
                println!("                (default), stackvm, or both; every record is");
                println!("                tagged with its format in the JSON output");
                println!("  --threads N   worker threads for the run grid (0 = all cores)");
                println!("  --repeats N   timing repetitions per job; wall_secs is the minimum");
                println!("                (everything else is deterministic; pair with");
                println!("                --threads 1 for gate-quality wall numbers)");
                println!("  --probe-threads N  speculative probe threads inside each GBR search");
                println!("                (and parallel per-error searches); results are");
                println!("                bit-identical at every setting (default 1)");
                println!("  --probe-latency SECS  emulate the tool-invocation latency of the");
                println!("                paper's real probes by sleeping inside each tool run");
                println!("                (for wall-clock speedup measurements; default 0)");
                println!("  --legacy      scan-BCP baseline: no incremental engine, no memo");
                println!("  --engine E    complete-search solver behind the logical strategies:");
                println!("                dpll (default) or cdcl (bit-identical results)");
                println!("  --order O     GBR variable order for the logical strategies: baseline");
                println!("                (closure-size, default), learned (activity-refined),");
                println!("                or portfolio (race baseline/learned/history orders)");
                println!("  --slot-dir DIR  persist each finished run as DIR/slot-NNNN.json");
                println!("                the moment it completes (atomic temp+rename writes)");
                println!(
                    "  --json [PATH] write machine-readable results (default BENCH_results.json)"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    const EXPERIMENTS: [&str; 12] = [
        "all",
        "stats",
        "fig8a",
        "fig8b",
        "lossy",
        "compare",
        "per-error",
        "ablate-msa",
        "ablate-order",
        "ablate-engine",
        "ddmin",
        "csv",
    ];
    if !EXPERIMENTS.contains(&experiment.as_str()) {
        eprintln!("unknown experiment {experiment} (try --help)");
        std::process::exit(2);
    }
    let run_classfile = matches!(format.as_str(), "classfile" | "both");
    let run_stackvm = matches!(format.as_str(), "stackvm" | "both");
    if !run_classfile && !run_stackvm {
        eprintln!("unknown format {format} (classfile|stackvm|both)");
        std::process::exit(2);
    }

    let failed_jobs = std::cell::Cell::new(0usize);
    let mut json_records: Vec<RunRecord> = Vec::new();

    if run_classfile {
        eprintln!(
            "building classfile suite: {} programs, scale {:.2}, seed {} …",
            config.programs, config.scale, config.seed
        );
        let benchmarks = config.suite();
        eprintln!("suite has {} failing instances", benchmarks.len());
        if benchmarks.is_empty() {
            eprintln!("error: the suite produced no failing instances — nothing to evaluate");
            std::process::exit(1);
        }
        let stats = compute_stats(&benchmarks);
        json_records.extend(drive(
            &experiment,
            &config,
            &benchmarks,
            Some(&stats),
            &failed_jobs,
        ));
    }
    if run_stackvm {
        eprintln!(
            "building stackvm suite: {} programs, seed {} …",
            config.programs, config.seed
        );
        let benchmarks = config.stack_suite();
        eprintln!("suite has {} failing modules", benchmarks.len());
        if benchmarks.is_empty() {
            eprintln!("error: the suite produced no failing modules — nothing to evaluate");
            std::process::exit(1);
        }
        json_records.extend(drive(&experiment, &config, &benchmarks, None, &failed_jobs));
    }

    if let Some(path) = json_path {
        // Atomic replace: a reader (or a crash) never sees a torn file.
        if let Err(e) =
            lbr_service::atomic_write_str(std::path::Path::new(&path), &render_json(&json_records))
        {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if failed_jobs.get() > 0 {
        eprintln!(
            "error: {} of the grid's runs failed (see warnings above)",
            failed_jobs.get()
        );
        std::process::exit(1);
    }
}

/// Runs one experiment over one format's suite. `stats` carries the
/// classfile suite statistics (the `stats` experiment's Table 1 has no
/// stackvm analogue yet — the ablation summary stands in for it there).
fn drive<B: EvalBenchmark>(
    experiment: &str,
    config: &EvalConfig,
    benchmarks: &[B],
    stats: Option<&lbr_bench::Stats>,
    failed_jobs: &std::cell::Cell<usize>,
) -> Vec<RunRecord> {
    let run = |strategies: &[&str]| {
        let records = run_grid(config, benchmarks, strategies);
        let expected = benchmarks.len() * strategies.len();
        failed_jobs.set(failed_jobs.get() + (expected - records.len()));
        records
    };
    let render_stats_or_summary = |records: &[RunRecord]| match stats {
        Some(stats) => print!("{}", render_stats(stats, records)),
        None => print!(
            "{}",
            render_ablation(records, "Suite summary (no Table-1 stats for this format)")
        ),
    };
    match experiment {
        "stats" => {
            let records = run(&headline_strategies());
            render_stats_or_summary(&records);
            records
        }
        "fig8a" => {
            let records = run(&headline_strategies());
            print!("{}", render_fig8a(&records));
            records
        }
        "fig8b" => {
            let records = run(&headline_strategies());
            print!("{}", render_fig8b(&records));
            records
        }
        "lossy" => {
            let records = run(&lossy_strategies());
            print!("{}", render_lossy(&records));
            records
        }
        "compare" => {
            let records = run(&compare_strategies());
            print!("{}", render_compare(&records));
            records
        }
        "ablate-msa" => {
            let records = run(&["logical/greedy", "logical/greedy+min", "logical/dpll+min"]);
            print!("{}", render_ablation(&records, "A1: MSA strategy ablation"));
            records
        }
        "ablate-order" => {
            let records = run(&["logical/greedy", "logical/natural-order"]);
            print!(
                "{}",
                render_ablation(&records, "A2: variable-order ablation (Theorem 4.5)")
            );
            records
        }
        "ddmin" => {
            let records = run(&["logical/greedy", "ddmin-items"]);
            print!("{}", render_ablation(&records, "A3: ddmin baseline"));
            records
        }
        "ablate-engine" => {
            let records = run_engine_grid(config, benchmarks);
            let expected = benchmarks.len() * 5;
            failed_jobs.set(failed_jobs.get() + (expected - records.len()));
            print!(
                "{}",
                render_ablation(&records, "A4: engine/order ablation (CDCL, learned orders)")
            );
            records
        }
        "per-error" => {
            print!("{}", lbr_bench::render_per_error(config, benchmarks));
            Vec::new()
        }
        "csv" => {
            let records = run(&["jreduce", "logical/greedy", "lossy-1", "lossy-2"]);
            print!("{}", render_csv(&records));
            records
        }
        "all" => {
            let records = run(&["jreduce", "logical/greedy", "lossy-1", "lossy-2"]);
            render_stats_or_summary(&records);
            println!();
            print!("{}", render_fig8a(&records));
            println!();
            print!("{}", render_fig8b(&records));
            println!();
            print!("{}", render_lossy(&records));
            println!();
            print!("{}", render_ablation(&records, "Summary: all strategies"));
            records
        }
        // Validated in main against the experiment list.
        other => unreachable!("unknown experiment {other}"),
    }
}
