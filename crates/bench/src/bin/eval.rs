//! The evaluation binary: regenerates every table and figure of the
//! paper's Section 5 on the synthetic NJR-like suite.
//!
//! ```text
//! eval [--experiment all|stats|fig8a|fig8b|lossy|ablate-msa|ablate-order|ablate-engine|ddmin|csv]
//!      [--programs N] [--scale F] [--seed N] [--cost SECS]
//!      [--threads N] [--repeats N] [--probe-threads N] [--legacy] [--json [PATH]]
//!      [--engine dpll|cdcl] [--order baseline|learned|portfolio]
//! ```
//!
//! `--legacy` disables the incremental propagation engine and oracle
//! memoization (the scan-BCP baseline); `--probe-threads` enables
//! speculative parallel probing inside each GBR search (bit-identical
//! results at any setting); `--engine cdcl` backs the logical strategies
//! with the CDCL solver (bit-identical results, different solver effort);
//! `--order` picks the GBR variable order of `Strategy::Logical`;
//! `--json` writes machine-readable results (default path
//! `BENCH_results.json`). The `ablate-engine` experiment runs the
//! engine/order variant grid in one shot (rows suffixed `+cdcl`,
//! `+order-learned`, `+order-portfolio`) — the source of the committed
//! `BENCH_baseline.json`.

use lbr_bench::{
    compute_stats, headline_strategies, lossy_strategies, render_ablation, render_csv,
    render_fig8a, render_fig8b, render_json, render_lossy, render_stats, run_engine_grid, run_grid,
    EvalConfig, RunRecord,
};
use lbr_core::{EngineChoice, LossyPick};
use lbr_jreduce::{OrderChoice, RunOptions, Strategy};
use lbr_logic::MsaStrategy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_owned();
    let mut config = EvalConfig::default();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> String {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag {
            "--experiment" | "-e" => {
                experiment = value(i);
                i += 2;
            }
            "--programs" | "-p" => {
                config.programs = value(i).parse().expect("--programs takes a number");
                i += 2;
            }
            "--scale" => {
                config.scale = value(i).parse().expect("--scale takes a number");
                i += 2;
            }
            "--seed" => {
                config.seed = value(i).parse().expect("--seed takes a number");
                i += 2;
            }
            "--cost" => {
                config.cost_per_call_secs = value(i).parse().expect("--cost takes seconds");
                i += 2;
            }
            "--threads" | "-j" => {
                config.threads = value(i).parse().expect("--threads takes a number");
                i += 2;
            }
            "--repeats" => {
                config.repeats = value(i).parse().expect("--repeats takes a count");
                i += 2;
            }
            "--probe-threads" => {
                config.options.probe_threads =
                    value(i).parse().expect("--probe-threads takes a number");
                i += 2;
            }
            "--probe-latency" => {
                let secs: f64 = value(i).parse().expect("--probe-latency takes seconds");
                config.options.probe_latency_micros = (secs * 1e6) as u64;
                i += 2;
            }
            "--legacy" => {
                config.options = RunOptions::legacy();
                i += 1;
            }
            "--engine" => {
                config.options.engine = match value(i).as_str() {
                    "dpll" => EngineChoice::Dpll,
                    "cdcl" => EngineChoice::Cdcl,
                    other => {
                        eprintln!("unknown engine {other} (dpll|cdcl)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--order" => {
                config.options.order = match value(i).as_str() {
                    "baseline" => OrderChoice::Baseline,
                    "learned" => OrderChoice::Learned,
                    "portfolio" => OrderChoice::Portfolio,
                    other => {
                        eprintln!("unknown order {other} (baseline|learned|portfolio)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--slot-dir" => {
                config.slot_dir = Some(value(i).into());
                i += 2;
            }
            "--json" => {
                // Optional value: `--json out.json` or bare `--json`.
                match args.get(i + 1) {
                    Some(v) if !v.starts_with('-') => {
                        json_path = Some(v.clone());
                        i += 2;
                    }
                    _ => {
                        json_path = Some("BENCH_results.json".to_owned());
                        i += 1;
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: eval [--experiment all|stats|fig8a|fig8b|lossy|per-error|ablate-msa|ablate-order|ablate-engine|ddmin|csv]"
                );
                println!("            [--programs N] [--scale F] [--seed N] [--cost SECS]");
                println!(
                    "            [--threads N] [--repeats N] [--probe-threads N] [--legacy] [--json [PATH]]"
                );
                println!("            [--engine dpll|cdcl] [--order baseline|learned|portfolio]");
                println!();
                println!("  --threads N   worker threads for the run grid (0 = all cores)");
                println!("  --repeats N   timing repetitions per job; wall_secs is the minimum");
                println!("                (everything else is deterministic; pair with");
                println!("                --threads 1 for gate-quality wall numbers)");
                println!("  --probe-threads N  speculative probe threads inside each GBR search");
                println!("                (and parallel per-error searches); results are");
                println!("                bit-identical at every setting (default 1)");
                println!("  --probe-latency SECS  emulate the tool-invocation latency of the");
                println!("                paper's real probes by sleeping inside each tool run");
                println!("                (for wall-clock speedup measurements; default 0)");
                println!("  --legacy      scan-BCP baseline: no incremental engine, no memo");
                println!("  --engine E    complete-search solver behind the logical strategies:");
                println!("                dpll (default) or cdcl (bit-identical results)");
                println!("  --order O     GBR variable order for Strategy::Logical: baseline");
                println!("                (closure-size, default), learned (activity-refined),");
                println!("                or portfolio (race baseline/learned/history orders)");
                println!("  --slot-dir DIR  persist each finished run as DIR/slot-NNNN.json");
                println!("                the moment it completes (atomic temp+rename writes)");
                println!(
                    "  --json [PATH] write machine-readable results (default BENCH_results.json)"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "building suite: {} programs, scale {:.2}, seed {} …",
        config.programs, config.scale, config.seed
    );
    let benchmarks = config.suite();
    eprintln!("suite has {} failing instances", benchmarks.len());
    if benchmarks.is_empty() {
        eprintln!("error: the suite produced no failing instances — nothing to evaluate");
        std::process::exit(1);
    }
    let stats = compute_stats(&benchmarks);

    let failed_jobs = std::cell::Cell::new(0usize);
    let run = |strategies: &[Strategy]| {
        let records = run_grid(&config, &benchmarks, strategies);
        let expected = benchmarks.len() * strategies.len();
        failed_jobs.set(failed_jobs.get() + (expected - records.len()));
        records
    };
    let mut json_records: Vec<RunRecord> = Vec::new();

    match experiment.as_str() {
        "stats" => {
            let records = run(&headline_strategies());
            print!("{}", render_stats(&stats, &records));
            json_records = records;
        }
        "fig8a" => {
            let records = run(&headline_strategies());
            print!("{}", render_fig8a(&records));
            json_records = records;
        }
        "fig8b" => {
            let records = run(&headline_strategies());
            print!("{}", render_fig8b(&records));
            json_records = records;
        }
        "lossy" => {
            let records = run(&lossy_strategies());
            print!("{}", render_lossy(&records));
            json_records = records;
        }
        "ablate-msa" => {
            let strategies: Vec<Strategy> = MsaStrategy::ALL
                .iter()
                .map(|&m| Strategy::Logical(m))
                .collect();
            let records = run(&strategies);
            print!("{}", render_ablation(&records, "A1: MSA strategy ablation"));
            json_records = records;
        }
        "ablate-order" => {
            let records = run(&[
                Strategy::Logical(MsaStrategy::GreedyClosure),
                Strategy::LogicalNaturalOrder,
            ]);
            print!(
                "{}",
                render_ablation(&records, "A2: variable-order ablation (Theorem 4.5)")
            );
            json_records = records;
        }
        "ddmin" => {
            let records = run(&[
                Strategy::Logical(MsaStrategy::GreedyClosure),
                Strategy::DdminItems,
            ]);
            print!("{}", render_ablation(&records, "A3: ddmin baseline"));
            json_records = records;
        }
        "ablate-engine" => {
            let records = run_engine_grid(&config, &benchmarks);
            let expected = benchmarks.len() * 5;
            failed_jobs.set(failed_jobs.get() + (expected - records.len()));
            print!(
                "{}",
                render_ablation(&records, "A4: engine/order ablation (CDCL, learned orders)")
            );
            json_records = records;
        }
        "per-error" => {
            print!("{}", lbr_bench::render_per_error(&config, &benchmarks));
        }
        "csv" => {
            let records = run(&[
                Strategy::JReduce,
                Strategy::Logical(MsaStrategy::GreedyClosure),
                Strategy::Lossy(LossyPick::FirstFirst),
                Strategy::Lossy(LossyPick::LastLast),
            ]);
            print!("{}", render_csv(&records));
            json_records = records;
        }
        "all" => {
            let records = run(&[
                Strategy::JReduce,
                Strategy::Logical(MsaStrategy::GreedyClosure),
                Strategy::Lossy(LossyPick::FirstFirst),
                Strategy::Lossy(LossyPick::LastLast),
            ]);
            print!("{}", render_stats(&stats, &records));
            println!();
            print!("{}", render_fig8a(&records));
            println!();
            print!("{}", render_fig8b(&records));
            println!();
            print!("{}", render_lossy(&records));
            println!();
            print!("{}", render_ablation(&records, "Summary: all strategies"));
            json_records = records;
        }
        other => {
            eprintln!("unknown experiment {other} (try --help)");
            std::process::exit(2);
        }
    }

    if let Some(path) = json_path {
        // Atomic replace: a reader (or a crash) never sees a torn file.
        if let Err(e) =
            lbr_service::atomic_write_str(std::path::Path::new(&path), &render_json(&json_records))
        {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if failed_jobs.get() > 0 {
        eprintln!(
            "error: {} of the grid's runs failed (see warnings above)",
            failed_jobs.get()
        );
        std::process::exit(1);
    }
}
