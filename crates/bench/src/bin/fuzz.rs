//! The differential fuzzing harness's command line (see `lbr-fuzz`).
//!
//! ```text
//! fuzz [--budget-secs N] [--seed N|0xHEX] [--min-cases N] [--max-cases N]
//!      [--out-dir DIR] [--break-oracle] [--no-daemon] [--no-cluster]
//!      [--no-stackvm]
//! fuzz --replay FUZZ_CASE_*.json
//! ```
//!
//! Campaign mode samples a seed-deterministic stream of generated
//! inputs (classfile programs, and roughly one case in three a stackvm
//! module — `--no-stackvm` opts out) and runs each through every
//! progression, cross-checking the invariants; violations are shrunk
//! with ddmin and persisted as replayable case files. `--replay` re-runs
//! one case file exactly.
//!
//! Exit status: `0` when every case is clean, `1` when any invariant was
//! violated (campaign) or the violation reproduces (replay), `2` on usage
//! errors.

use lbr_fuzz::{run_campaign, CampaignConfig, FuzzCase, Harness};
use std::path::PathBuf;
use std::time::Duration;

fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

/// `0x`-prefixed hex or decimal.
fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget_secs = 30.0f64;
    let mut seed = 0u64;
    let mut min_cases = 0u64;
    let mut max_cases: Option<u64> = None;
    let mut out_dir = ".".to_owned();
    let mut replay: Option<String> = None;
    let mut break_oracle = false;
    let mut daemon = true;
    let mut cluster = true;
    let mut stackvm = true;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--budget-secs" => budget_secs = value().parse().expect("--budget-secs takes seconds"),
            "--seed" => {
                let v = value();
                seed = parse_seed(&v).unwrap_or_else(|| {
                    eprintln!("--seed takes a decimal or 0x-prefixed integer, got {v}");
                    std::process::exit(2);
                });
            }
            "--min-cases" => min_cases = value().parse().expect("--min-cases takes a number"),
            "--max-cases" => max_cases = Some(value().parse().expect("--max-cases takes a number")),
            "--out-dir" => out_dir = value(),
            "--replay" => replay = Some(value()),
            "--break-oracle" => break_oracle = true,
            "--no-daemon" => daemon = false,
            "--no-cluster" => cluster = false,
            "--no-stackvm" => stackvm = false,
            "--help" | "-h" => {
                println!("usage: fuzz [--budget-secs N] [--seed N|0xHEX] [--min-cases N]");
                println!(
                    "            [--max-cases N] [--out-dir DIR] [--break-oracle] [--no-daemon]"
                );
                println!("            [--no-cluster] [--no-stackvm]");
                println!("       fuzz --replay FUZZ_CASE_N.json");
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scratch = std::env::temp_dir().join(format!("lbr-fuzz-{}-{seed:x}", std::process::id()));
    let harness = Harness::new(scratch).unwrap_or_else(|e| fail(format!("scratch dir: {e}")));
    let harness = if daemon {
        harness
            .with_daemon()
            .unwrap_or_else(|e| fail(format!("cannot start in-process daemon: {e}")))
    } else {
        harness
    };
    let harness = if daemon && cluster {
        harness
            .with_cluster()
            .unwrap_or_else(|e| fail(format!("cannot start in-process cluster: {e}")))
    } else {
        harness
    };

    if let Some(path) = replay {
        let case = FuzzCase::load(std::path::Path::new(&path)).unwrap_or_else(|e| fail(e));
        eprintln!(
            "replaying {path}: master seed {:016x}, case {} ({}), decompiler {}{}{}",
            case.master_seed,
            case.index,
            case.format,
            case.decompiler,
            case.keep_classes
                .as_ref()
                .map_or(String::new(), |k| format!(", {} classes kept", k.len())),
            if case.break_oracle {
                ", broken oracle armed"
            } else {
                ""
            },
        );
        if let Some(v) = &case.violation {
            eprintln!("recorded violation: {v}");
        }
        let outcome = harness.run_case(&case, harness.has_daemon());
        if outcome.skipped {
            fail("case no longer qualifies (oracle not failing) — generator drift?".into());
        }
        if outcome.violations.is_empty() {
            println!(
                "replay clean: {} progressions, no violations",
                outcome.progressions
            );
        } else {
            for v in &outcome.violations {
                eprintln!("violation: {v}");
            }
            std::process::exit(1);
        }
        return;
    }

    let config = CampaignConfig {
        master_seed: seed,
        budget: Duration::from_secs_f64(budget_secs),
        min_cases,
        max_cases,
        break_oracle,
        stackvm,
        out_dir: PathBuf::from(out_dir),
        log: true,
    };
    let summary =
        run_campaign(&config, &harness).unwrap_or_else(|e| fail(format!("campaign failed: {e}")));
    println!(
        "fuzz: {} cases ({} skipped), {} progressions, {} reference tool runs, {} violations",
        summary.cases_run,
        summary.cases_skipped,
        summary.progressions,
        summary.predicate_calls,
        summary.violations
    );
    for path in &summary.case_files {
        println!("replay with: fuzz --replay {}", path.display());
    }
    if summary.violations > 0 {
        std::process::exit(1);
    }
}
