//! Compares two `BENCH_results.json` files (as written by `eval --json`).
//!
//! ```text
//! bench_compare BASELINE.json CURRENT.json [--threshold PCT] [--identical]
//! ```
//!
//! Default mode: per-strategy wall-time and predicate-call gate. For
//! every strategy present in both files the current total `wall_secs`
//! may exceed the baseline by at most `--threshold` percent (default
//! 10), and the current total `predicate_calls` by at most
//! `--calls-threshold` percent (default 0 — calls are deterministic, so
//! any increase is a real regression: an engine change must not buy wall
//! time with extra tool runs). Any worse regression makes the process
//! exit non-zero, so the comparison can gate CI.
//!
//! `--merge-baseline OUT.json` mode: instead of comparing, splice the
//! two files into one baseline (first file verbatim, second file's
//! new-keyed entries appended per section) — the rebaseline path behind
//! `BENCH_REBASELINE=1 ./ci.sh`, which regenerates `BENCH_baseline.json`
//! at the gate's own position in the script so wall numbers are measured
//! under the same machine conditions the gate later runs in.
//!
//! `--identical` mode: ignores wall times entirely and instead asserts
//! that the two files describe *the same computation* — identical
//! per-run `predicate_calls`, `final_bytes`, `cache_hits` and
//! `cache_misses` for every (benchmark, strategy) pair. This is the
//! determinism smoke used by `ci.sh` to pin `--probe-threads N` runs to
//! the sequential results.
//!
//! The parser below is a minimal recursive-descent JSON reader for the
//! subset our own renderer emits (objects, arrays, strings, numbers,
//! booleans); the harness stays dependency-free.

use std::collections::BTreeMap;
use std::process::ExitCode;

// ----------------------------------------------------------------------
// Minimal JSON value + parser.
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    fn str_field(&self, key: &str) -> String {
        match self.get(key) {
            Some(Json::Str(s)) => s.clone(),
            _ => String::new(),
        }
    }

    fn num_field(&self, key: &str) -> f64 {
        match self.get(key) {
            Some(Json::Num(n)) => *n,
            _ => f64::NAN,
        }
    }

    /// The record's input format. Results files written before the
    /// stackvm frontend existed carry no `format` key; they are all
    /// classfile records.
    fn format_field(&self) -> String {
        match self.get("format") {
            Some(Json::Str(s)) => s.clone(),
            _ => "classfile".to_owned(),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, what: &str) -> ! {
        eprintln!(
            "bench_compare: JSON parse error at byte {}: {what}",
            self.pos
        );
        std::process::exit(2);
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self
            .bytes
            .get(self.pos)
            .unwrap_or_else(|| self.fail("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) {
        if self.peek() != b {
            self.fail(&format!("expected '{}'", b as char));
        }
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Json {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            value
        } else {
            self.fail(&format!("expected '{text}'"))
        }
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut map = BTreeMap::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(map);
        }
        loop {
            let key = self.string();
            self.expect(b':');
            map.insert(key, self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(map);
                }
                _ => self.fail("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut out = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(out);
        }
        loop {
            out.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(out);
                }
                _ => self.fail("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => self.fail("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return out;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => self.fail("unsupported escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Our renderer only escapes quotes and backslashes, so
                    // any other byte is literal UTF-8 content.
                    let start = self.pos;
                    let len = utf8_len(b);
                    self.pos += len;
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => self.fail("invalid UTF-8 in string"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) => Json::Num(n),
            Err(_) => self.fail("expected a number"),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

fn parse_file(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut p = Parser::new(&text);
    let v = p.value();
    p.skip_ws();
    v
}

// ----------------------------------------------------------------------
// Baseline merge.
// ----------------------------------------------------------------------

/// `--merge-baseline OUT.json`: splice two results files (as written by
/// `eval --json`, one run/aggregate object per line) into one baseline.
/// The primary file is kept verbatim; the secondary contributes only the
/// entries whose key — (benchmark, format, strategy) for `"runs"`,
/// (format, strategy) for `"strategies"` — the primary does not already
/// hold, so overlapping strategies (the zoo's `jreduce`/`logical/greedy`
/// rows also appear in the engine grid) are recorded exactly once. The
/// merge is text-level to preserve the renderer's formatting and key
/// order byte for byte.
fn merge_baselines(primary: &str, secondary: &str, out_path: &str) -> ExitCode {
    fn read(path: &str) -> Vec<String> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_compare: cannot read {path}: {e}");
            std::process::exit(2);
        });
        text.lines().map(str::to_owned).collect()
    }
    fn section_lines(lines: &[String], section: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut inside = false;
        for ln in lines {
            let t = ln.trim();
            if t == format!("\"{section}\": [") {
                inside = true;
            } else if inside && (t == "]" || t == "],") {
                break;
            } else if inside {
                out.push(ln.trim_end_matches(',').to_owned());
            }
        }
        out
    }
    fn key_of(line: &str, with_benchmark: bool) -> String {
        let mut p = Parser::new(line);
        let v = p.value();
        let mut key = format!("{}/{}", v.format_field(), v.str_field("strategy"));
        if with_benchmark {
            key = format!("{}/{}", v.str_field("benchmark"), key);
        }
        key
    }

    let primary_lines = read(primary);
    let secondary_lines = read(secondary);
    let mut merged: Vec<String> = Vec::new();
    let mut i = 0;
    let mut added = 0usize;
    while i < primary_lines.len() {
        let ln = &primary_lines[i];
        merged.push(ln.clone());
        let section = match ln.trim() {
            "\"runs\": [" => Some(("runs", true)),
            "\"strategies\": [" => Some(("strategies", false)),
            _ => None,
        };
        if let Some((section, with_benchmark)) = section {
            i += 1;
            while !matches!(primary_lines[i].trim(), "]" | "],") {
                merged.push(primary_lines[i].clone());
                i += 1;
            }
            let have: std::collections::BTreeSet<String> = section_lines(&primary_lines, section)
                .iter()
                .map(|l| key_of(l, with_benchmark))
                .collect();
            let extras: Vec<String> = section_lines(&secondary_lines, section)
                .into_iter()
                .filter(|l| !have.contains(&key_of(l, with_benchmark)))
                .collect();
            if !extras.is_empty() {
                let last = merged.len() - 1;
                if !merged[last].trim_end().ends_with(',') {
                    merged[last].push(',');
                }
                added += extras.len();
                for (j, extra) in extras.iter().enumerate() {
                    let comma = if j + 1 < extras.len() { "," } else { "" };
                    merged.push(format!("{extra}{comma}"));
                }
            }
            merged.push(primary_lines[i].clone());
        }
        i += 1;
    }
    let mut text = merged.join("\n");
    text.push('\n');
    if let Err(e) = std::fs::write(out_path, text) {
        eprintln!("bench_compare: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("merged {primary} + {secondary} ({added} entries added) -> {out_path}");
    ExitCode::SUCCESS
}

// ----------------------------------------------------------------------
// Comparison modes.
// ----------------------------------------------------------------------

/// Per-strategy gate: fail on wall-time regressions > `threshold_pct` or
/// predicate-call regressions > `calls_threshold_pct` (calls are
/// deterministic, so the default call threshold is zero).
fn compare_wall(
    baseline: &Json,
    current: &Json,
    threshold_pct: f64,
    calls_threshold_pct: f64,
) -> ExitCode {
    // Strategy aggregates are keyed per format: the same strategy name
    // appears once per frontend in a `--format both` results file.
    let key_of = |s: &Json| format!("{}/{}", s.format_field(), s.str_field("strategy"));
    let base: BTreeMap<String, (f64, f64)> = baseline
        .get("strategies")
        .map(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|s| {
            (
                key_of(s),
                (s.num_field("wall_secs"), s.num_field("predicate_calls")),
            )
        })
        .collect();
    let mut compared = 0usize;
    let mut failed = false;
    for s in current.get("strategies").map(Json::as_arr).unwrap_or(&[]) {
        let name = key_of(s);
        let Some(&(base_wall, base_calls)) = base.get(&name) else {
            println!("{name:<36} (not in baseline, skipped)");
            continue;
        };
        compared += 1;
        let cur_wall = s.num_field("wall_secs");
        let delta_pct = if base_wall > 0.0 {
            100.0 * (cur_wall - base_wall) / base_wall
        } else {
            0.0
        };
        let cur_calls = s.num_field("predicate_calls");
        let calls_ceiling = base_calls * (1.0 + calls_threshold_pct / 100.0);
        let wall_bad = delta_pct > threshold_pct;
        let calls_bad = base_calls.is_finite() && cur_calls > calls_ceiling;
        failed |= wall_bad || calls_bad;
        println!(
            "{name:<36} wall {base_wall:>9.3}s → {cur_wall:>9.3}s ({delta_pct:>+7.1}%)  calls {base_calls:>7.0} → {cur_calls:>7.0}  {}",
            if wall_bad {
                "WALL REGRESSION"
            } else if calls_bad {
                "CALLS REGRESSION"
            } else {
                "ok"
            }
        );
    }
    if compared == 0 {
        eprintln!("bench_compare: no common strategies to compare");
        return ExitCode::from(2);
    }
    if failed {
        eprintln!(
            "bench_compare: regression beyond thresholds (wall {threshold_pct:.0}%, calls {calls_threshold_pct:.0}%)"
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench_compare: within thresholds (wall {threshold_pct:.0}%, calls {calls_threshold_pct:.0}%)"
        );
        ExitCode::SUCCESS
    }
}

/// Determinism smoke: the two files must describe the same computation
/// (per-run calls, sizes and cache totals), wall times excepted.
fn compare_identical(baseline: &Json, current: &Json) -> ExitCode {
    const FIELDS: [&str; 4] = [
        "predicate_calls",
        "final_bytes",
        "cache_hits",
        "cache_misses",
    ];
    let key = |r: &Json| {
        (
            r.format_field(),
            r.str_field("benchmark"),
            r.str_field("strategy"),
        )
    };
    let base: BTreeMap<_, Json> = baseline
        .get("runs")
        .map(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|r| (key(r), r.clone()))
        .collect();
    let runs = current.get("runs").map(Json::as_arr).unwrap_or(&[]);
    let mut mismatches = 0usize;
    let mut compared = 0usize;
    for r in runs {
        let k = key(r);
        let Some(b) = base.get(&k) else {
            eprintln!("{}/{}/{}: missing from baseline", k.0, k.1, k.2);
            mismatches += 1;
            continue;
        };
        compared += 1;
        for field in FIELDS {
            let (bv, cv) = (b.num_field(field), r.num_field(field));
            if bv != cv {
                eprintln!("{}/{}/{}: {field} differs: {bv} vs {cv}", k.0, k.1, k.2);
                mismatches += 1;
            }
        }
    }
    if base.len() != runs.len() {
        eprintln!(
            "run counts differ: {} baseline vs {} current",
            base.len(),
            runs.len()
        );
        mismatches += 1;
    }
    if mismatches > 0 {
        eprintln!("bench_compare: {mismatches} mismatches — runs are NOT identical");
        ExitCode::FAILURE
    } else {
        println!("bench_compare: {compared} runs identical (calls, sizes, cache totals)");
        ExitCode::SUCCESS
    }
}

/// Service gate over two `BENCH_service.json` files (loadgen output):
/// per worker count, warm throughput may not drop more than
/// `threshold_pct` below baseline and warm p95 may not rise more than
/// `threshold_pct` above it; additionally the highest-worker run must
/// sustain at least `min_warm_jps` warm jobs/sec absolute.
fn compare_service(
    baseline: &Json,
    current: &Json,
    threshold_pct: f64,
    min_warm_jps: f64,
) -> ExitCode {
    match service_gate(baseline, current, threshold_pct, min_warm_jps) {
        None => ExitCode::from(2),
        Some(true) => {
            eprintln!(
                "bench_compare: service gate failed (threshold {threshold_pct:.0}%, floor {min_warm_jps:.0} jobs/s)"
            );
            ExitCode::FAILURE
        }
        Some(false) => {
            println!("bench_compare: service throughput and p95 within gates");
            ExitCode::SUCCESS
        }
    }
}

/// The shared per-worker-count gate body for `--service` and
/// `--cluster`. Returns `None` when nothing was comparable, otherwise
/// whether any gate failed.
fn service_gate(
    baseline: &Json,
    current: &Json,
    threshold_pct: f64,
    min_warm_jps: f64,
) -> Option<bool> {
    let runs_of = |doc: &Json| -> BTreeMap<u64, Json> {
        doc.get("runs")
            .map(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|r| (r.num_field("workers") as u64, r.clone()))
            .collect()
    };
    let base = runs_of(baseline);
    let runs = runs_of(current);
    let mut compared = 0usize;
    let mut failed = false;
    for (workers, run) in &runs {
        let warm = |r: &Json, f: &str| r.get("warm").map(|w| w.num_field(f)).unwrap_or(f64::NAN);
        let cur_jps = warm(run, "jobs_per_sec");
        let cur_p95 = warm(run, "p95_ms");
        match base.get(workers) {
            Some(b) => {
                compared += 1;
                let base_jps = warm(b, "jobs_per_sec");
                let base_p95 = warm(b, "p95_ms");
                let jps_floor = base_jps * (1.0 - threshold_pct / 100.0);
                let p95_ceil = base_p95 * (1.0 + threshold_pct / 100.0);
                let jps_bad = cur_jps < jps_floor;
                // A p95 gate only makes sense against a sane baseline.
                let p95_bad = base_p95.is_finite() && base_p95 > 0.0 && cur_p95 > p95_ceil;
                failed |= jps_bad || p95_bad;
                println!(
                    "{workers:>2} workers  warm {base_jps:>8.2} → {cur_jps:>8.2} jobs/s  p95 {base_p95:>7.1} → {cur_p95:>7.1} ms  {}",
                    if jps_bad || p95_bad { "REGRESSION" } else { "ok" }
                );
            }
            None => println!("{workers:>2} workers  (not in baseline, skipped)"),
        }
    }
    if compared == 0 {
        eprintln!("bench_compare: no common worker counts to compare");
        return None;
    }
    if min_warm_jps > 0.0 {
        match runs.iter().next_back() {
            Some((workers, run)) => {
                let jps = run
                    .get("warm")
                    .map(|w| w.num_field("jobs_per_sec"))
                    .unwrap_or(f64::NAN);
                let ok = jps >= min_warm_jps;
                failed |= !ok;
                println!(
                    "{workers:>2} workers  warm floor {min_warm_jps:>8.2} jobs/s, measured {jps:>8.2}  {}",
                    if ok { "ok" } else { "BELOW FLOOR" }
                );
            }
            None => unreachable!("compared > 0"),
        }
    }
    Some(failed)
}

/// Cluster gate over two `BENCH_service.json` files written by
/// `loadgen --cluster`: the per-worker-node-count throughput/p95/floor
/// gates of `--service`, plus a participation check — every current run's
/// coordinator must have accepted worker verdicts, otherwise the cluster
/// measured nothing but the coordinator's own inline path.
fn compare_cluster(
    baseline: &Json,
    current: &Json,
    threshold_pct: f64,
    min_warm_jps: f64,
) -> ExitCode {
    let Some(mut failed) = service_gate(baseline, current, threshold_pct, min_warm_jps) else {
        return ExitCode::from(2);
    };
    for run in current.get("runs").map(Json::as_arr).unwrap_or(&[]) {
        let workers = run.num_field("workers");
        let verdicts = run
            .get("cluster")
            .map(|c| c.num_field("verdicts"))
            .unwrap_or(f64::NAN);
        if verdicts.is_nan() || verdicts <= 0.0 {
            eprintln!(
                "{workers:>2} workers  coordinator accepted no worker verdicts — cluster inert"
            );
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "bench_compare: cluster gate failed (threshold {threshold_pct:.0}%, floor {min_warm_jps:.0} jobs/s)"
        );
        ExitCode::FAILURE
    } else {
        println!("bench_compare: cluster throughput, p95 and participation within gates");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut threshold_pct = 10.0f64;
    let mut calls_threshold_pct = 0.0f64;
    let mut min_warm_jps = 0.0f64;
    let mut identical = false;
    let mut service = false;
    let mut cluster = false;
    let mut merge_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                threshold_pct = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--threshold takes a percentage");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--calls-threshold" => {
                calls_threshold_pct =
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--calls-threshold takes a percentage");
                            std::process::exit(2);
                        });
                i += 2;
            }
            "--min-warm-jps" => {
                min_warm_jps = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--min-warm-jps takes a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--identical" => {
                identical = true;
                i += 1;
            }
            "--merge-baseline" => {
                merge_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--merge-baseline takes an output path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--service" => {
                service = true;
                i += 1;
            }
            "--cluster" => {
                cluster = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!("usage: bench_compare BASELINE.json CURRENT.json [--threshold PCT]");
                println!("                     [--calls-threshold PCT]");
                println!(
                    "                     [--identical | --service | --cluster [--min-warm-jps N]]"
                );
                println!();
                println!(
                    "  default      fail on per-strategy wall-time regression > PCT% (default 10)"
                );
                println!(
                    "               or predicate-call regression > --calls-threshold% (default 0)"
                );
                println!("  --identical  fail unless per-run calls, sizes and cache totals match");
                println!("  --merge-baseline OUT.json");
                println!("               write OUT.json = first file + the second file's entries");
                println!("               whose (benchmark, format, strategy) key is new; used by");
                println!(
                    "               BENCH_REBASELINE=1 ./ci.sh to refresh BENCH_baseline.json"
                );
                println!(
                    "  --service    gate BENCH_service.json: warm jobs/sec and p95 within PCT%"
                );
                println!("               of baseline per worker count; with --min-warm-jps, the");
                println!("               highest-worker run must also sustain that absolute floor");
                println!(
                    "  --cluster    the --service gates over loadgen --cluster output, plus a"
                );
                println!("               check that worker nodes actually answered probes");
                return ExitCode::SUCCESS;
            }
            other => {
                files.push(other.to_owned());
                i += 1;
            }
        }
    }
    let [baseline, current] = files.as_slice() else {
        eprintln!(
            "usage: bench_compare BASELINE.json CURRENT.json [--threshold PCT] [--identical | --service]"
        );
        return ExitCode::from(2);
    };
    if let Some(out) = merge_out {
        return merge_baselines(baseline, current, &out);
    }
    let baseline = parse_file(baseline);
    let current = parse_file(current);
    if identical {
        compare_identical(&baseline, &current)
    } else if cluster {
        compare_cluster(&baseline, &current, threshold_pct, min_warm_jps)
    } else if service {
        compare_service(&baseline, &current, threshold_pct, min_warm_jps)
    } else {
        compare_wall(&baseline, &current, threshold_pct, calls_threshold_pct)
    }
}
