//! Compares two `BENCH_results.json` files (as written by `eval --json`).
//!
//! ```text
//! bench_compare BASELINE.json CURRENT.json [--threshold PCT] [--identical]
//! ```
//!
//! Default mode: per-strategy wall-time gate. For every strategy present
//! in both files the current total `wall_secs` may exceed the baseline by
//! at most `--threshold` percent (default 10); any worse regression makes
//! the process exit non-zero, so the comparison can gate CI.
//!
//! `--identical` mode: ignores wall times entirely and instead asserts
//! that the two files describe *the same computation* — identical
//! per-run `predicate_calls`, `final_bytes`, `cache_hits` and
//! `cache_misses` for every (benchmark, strategy) pair. This is the
//! determinism smoke used by `ci.sh` to pin `--probe-threads N` runs to
//! the sequential results.
//!
//! The parser below is a minimal recursive-descent JSON reader for the
//! subset our own renderer emits (objects, arrays, strings, numbers,
//! booleans); the harness stays dependency-free.

use std::collections::BTreeMap;
use std::process::ExitCode;

// ----------------------------------------------------------------------
// Minimal JSON value + parser.
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    fn str_field(&self, key: &str) -> String {
        match self.get(key) {
            Some(Json::Str(s)) => s.clone(),
            _ => String::new(),
        }
    }

    fn num_field(&self, key: &str) -> f64 {
        match self.get(key) {
            Some(Json::Num(n)) => *n,
            _ => f64::NAN,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, what: &str) -> ! {
        eprintln!(
            "bench_compare: JSON parse error at byte {}: {what}",
            self.pos
        );
        std::process::exit(2);
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self
            .bytes
            .get(self.pos)
            .unwrap_or_else(|| self.fail("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) {
        if self.peek() != b {
            self.fail(&format!("expected '{}'", b as char));
        }
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Json {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            value
        } else {
            self.fail(&format!("expected '{text}'"))
        }
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut map = BTreeMap::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(map);
        }
        loop {
            let key = self.string();
            self.expect(b':');
            map.insert(key, self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(map);
                }
                _ => self.fail("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut out = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(out);
        }
        loop {
            out.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(out);
                }
                _ => self.fail("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => self.fail("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return out;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => self.fail("unsupported escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Our renderer only escapes quotes and backslashes, so
                    // any other byte is literal UTF-8 content.
                    let start = self.pos;
                    let len = utf8_len(b);
                    self.pos += len;
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => self.fail("invalid UTF-8 in string"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) => Json::Num(n),
            Err(_) => self.fail("expected a number"),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

fn parse_file(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut p = Parser::new(&text);
    let v = p.value();
    p.skip_ws();
    v
}

// ----------------------------------------------------------------------
// Comparison modes.
// ----------------------------------------------------------------------

/// Per-strategy wall-time gate: fail on > `threshold_pct` regressions.
fn compare_wall(baseline: &Json, current: &Json, threshold_pct: f64) -> ExitCode {
    let base: BTreeMap<String, f64> = baseline
        .get("strategies")
        .map(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|s| (s.str_field("strategy"), s.num_field("wall_secs")))
        .collect();
    let mut compared = 0usize;
    let mut failed = false;
    for s in current.get("strategies").map(Json::as_arr).unwrap_or(&[]) {
        let name = s.str_field("strategy");
        let Some(&base_wall) = base.get(&name) else {
            println!("{name:<24} (not in baseline, skipped)");
            continue;
        };
        compared += 1;
        let cur_wall = s.num_field("wall_secs");
        let delta_pct = if base_wall > 0.0 {
            100.0 * (cur_wall - base_wall) / base_wall
        } else {
            0.0
        };
        let regressed = delta_pct > threshold_pct;
        failed |= regressed;
        println!(
            "{name:<24} baseline {base_wall:>9.3}s  current {cur_wall:>9.3}s  {delta_pct:>+7.1}%  {}",
            if regressed { "REGRESSION" } else { "ok" }
        );
    }
    if compared == 0 {
        eprintln!("bench_compare: no common strategies to compare");
        return ExitCode::from(2);
    }
    if failed {
        eprintln!("bench_compare: wall-time regression beyond {threshold_pct:.0}% threshold");
        ExitCode::FAILURE
    } else {
        println!("bench_compare: within {threshold_pct:.0}% threshold");
        ExitCode::SUCCESS
    }
}

/// Determinism smoke: the two files must describe the same computation
/// (per-run calls, sizes and cache totals), wall times excepted.
fn compare_identical(baseline: &Json, current: &Json) -> ExitCode {
    const FIELDS: [&str; 4] = [
        "predicate_calls",
        "final_bytes",
        "cache_hits",
        "cache_misses",
    ];
    let key = |r: &Json| (r.str_field("benchmark"), r.str_field("strategy"));
    let base: BTreeMap<_, Json> = baseline
        .get("runs")
        .map(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|r| (key(r), r.clone()))
        .collect();
    let runs = current.get("runs").map(Json::as_arr).unwrap_or(&[]);
    let mut mismatches = 0usize;
    let mut compared = 0usize;
    for r in runs {
        let k = key(r);
        let Some(b) = base.get(&k) else {
            eprintln!("{}/{}: missing from baseline", k.0, k.1);
            mismatches += 1;
            continue;
        };
        compared += 1;
        for field in FIELDS {
            let (bv, cv) = (b.num_field(field), r.num_field(field));
            if bv != cv {
                eprintln!("{}/{}: {field} differs: {bv} vs {cv}", k.0, k.1);
                mismatches += 1;
            }
        }
    }
    if base.len() != runs.len() {
        eprintln!(
            "run counts differ: {} baseline vs {} current",
            base.len(),
            runs.len()
        );
        mismatches += 1;
    }
    if mismatches > 0 {
        eprintln!("bench_compare: {mismatches} mismatches — runs are NOT identical");
        ExitCode::FAILURE
    } else {
        println!("bench_compare: {compared} runs identical (calls, sizes, cache totals)");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut threshold_pct = 10.0f64;
    let mut identical = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                threshold_pct = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--threshold takes a percentage");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--identical" => {
                identical = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!("usage: bench_compare BASELINE.json CURRENT.json [--threshold PCT] [--identical]");
                println!();
                println!(
                    "  default      fail on per-strategy wall-time regression > PCT% (default 10)"
                );
                println!("  --identical  fail unless per-run calls, sizes and cache totals match");
                return ExitCode::SUCCESS;
            }
            other => {
                files.push(other.to_owned());
                i += 1;
            }
        }
    }
    let [baseline, current] = files.as_slice() else {
        eprintln!(
            "usage: bench_compare BASELINE.json CURRENT.json [--threshold PCT] [--identical]"
        );
        return ExitCode::from(2);
    };
    let baseline = parse_file(baseline);
    let current = parse_file(current);
    if identical {
        compare_identical(&baseline, &current)
    } else {
        compare_wall(&baseline, &current, threshold_pct)
    }
}
