//! Reduces a benchmark container: the command-line face of the paper's
//! tool.
//!
//! ```text
//! reduce --input bench.lbrc [--format classfile|stackvm]
//!        --decompiler a|b|c|all
//!        [--strategy NAME] [--list-strategies]
//!        [--out reduced.lbrc] [--json report.json] [--disasm]
//!        [--per-error] [--cost SECS] [--probe-threads N]
//!        [--engine dpll|cdcl] [--order baseline|learned|portfolio]
//! ```
//!
//! `--strategy` takes any name in the strategy registry (see
//! `--list-strategies` for the full zoo and each strategy's capability
//! flags); the short aliases of earlier releases (`logical`,
//! `logical-min`, `lossy1`, `lossy2`, `ddmin`) still resolve.
//!
//! `--format` selects the frontend; everything downstream of the parse —
//! strategies, probe threading, engines, validation, the JSON report —
//! is the same [`Input`]-generic pipeline for both formats.
//! `--probe-threads N` runs N speculative probe threads inside the GBR
//! search (and N concurrent searches in `--per-error` mode); the reduced
//! output is bit-identical at every setting. `--engine cdcl` backs the
//! logical strategies' complete searches with the CDCL solver — same
//! output, different solver effort — and `--order` picks the GBR variable
//! order of the `logical` strategy (each choice is deterministic, but
//! different choices may commit different sound results). `--json` writes a small
//! machine-readable report (sizes, predicate calls, trace digest) for
//! comparing runs — the CI daemon smoke test diffs it against the
//! service's result document.
//!
//! Exit status: `0` on success, `1` when the input cannot be read, does
//! not trigger the selected decompiler's bugs, or the reduction itself
//! fails, `2` on usage errors.

use lbr_classfile::{disassemble_program, read_program, write_class_directory};
use lbr_core::{EngineChoice, Input, InputOracle};
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{check_report, OrderChoice, ReductionSession, RunOptions};
use lbr_service::{atomic_write, atomic_write_str, Json};
use lbr_stackvm::{Module as StackModule, StackBugSet, StackOracle};

/// Prints a diagnostic and exits with status 1 (runtime failure).
fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

/// Everything the format-generic run needs beyond the parsed input.
struct ReduceArgs {
    decompiler: String,
    strategy: String,
    out: Option<String>,
    out_dir: Option<String>,
    json: Option<String>,
    disasm: bool,
    per_error: bool,
    cost: f64,
    options: RunOptions,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut format = "classfile".to_owned();
    let mut run = ReduceArgs {
        decompiler: "a".to_owned(),
        strategy: "logical".to_owned(),
        out: None,
        out_dir: None,
        json: None,
        disasm: false,
        per_error: false,
        cost: 33.0,
        options: RunOptions::default(),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--input" | "-i" => input = Some(value()),
            "--format" | "-f" => format = value(),
            "--out" | "-o" => run.out = Some(value()),
            "--out-dir" => run.out_dir = Some(value()),
            "--json" => run.json = Some(value()),
            "--decompiler" | "-d" => run.decompiler = value(),
            "--strategy" | "-s" => run.strategy = value(),
            "--cost" => run.cost = value().parse().expect("--cost takes seconds"),
            "--probe-threads" => {
                run.options.probe_threads = value().parse().expect("--probe-threads takes a number")
            }
            "--probe-latency-micros" => {
                run.options.probe_latency_micros = value()
                    .parse()
                    .expect("--probe-latency-micros takes a number")
            }
            "--engine" => {
                run.options.engine = match value().as_str() {
                    "dpll" => EngineChoice::Dpll,
                    "cdcl" => EngineChoice::Cdcl,
                    other => {
                        eprintln!("unknown engine {other} (dpll|cdcl)");
                        std::process::exit(2);
                    }
                }
            }
            "--order" => {
                run.options.order = match value().as_str() {
                    "baseline" => OrderChoice::Baseline,
                    "learned" => OrderChoice::Learned,
                    "portfolio" => OrderChoice::Portfolio,
                    other => {
                        eprintln!("unknown order {other} (baseline|learned|portfolio)");
                        std::process::exit(2);
                    }
                }
            }
            "--disasm" => run.disasm = true,
            "--per-error" => run.per_error = true,
            "--list-strategies" => {
                list_strategies();
                return;
            }
            "--help" | "-h" => {
                println!("usage: reduce --input bench.lbrc [--format classfile|stackvm]");
                println!("              [--decompiler a|b|c|all]");
                println!("              [--strategy NAME] [--list-strategies]");
                println!(
                    "              [--out reduced.lbrc] [--out-dir dir/] [--json report.json]"
                );
                println!("              [--disasm] [--per-error] [--cost SECS]");
                println!("              [--probe-threads N] [--probe-latency-micros N]");
                println!("              [--engine dpll|cdcl] [--order baseline|learned|portfolio]");
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let input = input.unwrap_or_else(|| {
        eprintln!("--input is required (try --help)");
        std::process::exit(2);
    });
    if !lbr_jreduce::known_strategy(&run.strategy) {
        eprintln!("unknown strategy {} (try --list-strategies)", run.strategy);
        std::process::exit(2);
    }
    let bytes = std::fs::read(&input).unwrap_or_else(|e| fail(format!("cannot read {input}: {e}")));
    match format.as_str() {
        "classfile" => {
            let program =
                read_program(&bytes).unwrap_or_else(|e| fail(format!("bad container: {e}")));
            let bugs = match run.decompiler.as_str() {
                "a" => BugSet::decompiler_a(),
                "b" => BugSet::decompiler_b(),
                "c" => BugSet::decompiler_c(),
                "all" => BugSet::all(),
                other => {
                    eprintln!("unknown decompiler {other}");
                    std::process::exit(2);
                }
            };
            let oracle = DecompilerOracle::new(&program, bugs);
            run_reduce(
                &program,
                &oracle,
                &run,
                &|p| disassemble_program(p),
                &|p, dir| write_class_directory(p, dir).map_err(|e| e.to_string()),
            );
        }
        "stackvm" => {
            let module = <StackModule as Input>::from_bytes(&bytes)
                .unwrap_or_else(|e| fail(format!("bad container: {e}")));
            let bugs = match run.decompiler.as_str() {
                "a" => StackBugSet::lowering_a(),
                "b" => StackBugSet::lowering_b(),
                "c" => StackBugSet::lowering_c(),
                "all" => StackBugSet::all(),
                other => {
                    eprintln!("unknown decompiler {other}");
                    std::process::exit(2);
                }
            };
            let oracle = StackOracle::new(&module, bugs);
            run_reduce(&module, &oracle, &run, &|m| format!("{m:#?}\n"), &|_, _| {
                Err("--out-dir is classfile-only".to_owned())
            });
        }
        other => {
            eprintln!("unknown format {other} (classfile|stackvm)");
            std::process::exit(2);
        }
    }
}

/// Prints the strategy registry: every runnable name plus its
/// capability flags (the single source of truth the daemon's `stats`
/// response also enumerates).
fn list_strategies() {
    println!("{:<24} capabilities", "strategy");
    for (name, caps) in lbr_jreduce::strategy_catalog() {
        let flags: Vec<&str> = [
            (caps.resumable, "resumable"),
            (caps.speculative, "speculative"),
            (caps.per_error, "per-error"),
            (caps.honors_engine, "engine"),
            (caps.honors_order, "order"),
            (caps.uses_model, "model"),
        ]
        .iter()
        .filter_map(|&(on, tag)| on.then_some(tag))
        .collect();
        println!("{name:<24} {}", flags.join(","));
    }
}

/// The format-generic body: same session, strategies, validation, and
/// reporting for every frontend behind the [`Input`] trait. The two
/// closures are the only format-specific affordances (human-readable
/// dump, directory export).
fn run_reduce<I: Input, O: InputOracle<I>>(
    program: &I,
    oracle: &O,
    args: &ReduceArgs,
    disassemble: &dyn Fn(&I) -> String,
    write_dir: &dyn Fn(&I, &std::path::Path) -> Result<usize, String>,
) {
    if !oracle.is_failing() {
        fail(format!(
            "the input does not trigger decompiler {}'s bugs — nothing to reduce",
            args.decompiler
        ));
    }
    eprintln!(
        "input: {} units; {} compiler errors to preserve",
        program.unit_count(),
        oracle.error_count()
    );

    if args.per_error {
        let report = ReductionSession::new(program, oracle)
            .cost_per_call(args.cost)
            .options(args.options)
            .run_per_error()
            .unwrap_or_else(|e| fail(format!("per-error reduction failed: {e}")));
        println!(
            "per-error witnesses ({} searches, {} tool runs):",
            report.errors.len(),
            report.total_calls
        );
        for (error, size) in &report.errors {
            println!(
                "  {:>4} classes {:>8} bytes  {error}",
                size.classes, size.bytes
            );
        }
        return;
    }

    let report = ReductionSession::new(program, oracle)
        .strategy(args.strategy.clone())
        .cost_per_call(args.cost)
        .options(args.options)
        .run()
        .unwrap_or_else(|e| fail(format!("reduction failed: {e}")));
    // A result only counts if it holds up end to end: error preserved,
    // still verifying, not grown, and the serialized bytes re-read into
    // the same verifying program. Anything less is a reducer bug, not a
    // result — refuse to report success.
    check_report(&report)
        .unwrap_or_else(|e| fail(format!("reduced output failed validation: {e}")));
    println!(
        "{}: {} → {} classes, {} → {} bytes ({:.1}%), {} tool runs, errors preserved: {}",
        report.strategy,
        report.initial.classes,
        report.final_metrics.classes,
        report.initial.bytes,
        report.final_metrics.bytes,
        100.0 * report.relative_bytes(),
        report.predicate_calls,
        report.errors_preserved,
    );
    if args.disasm {
        print!("{}", disassemble(&report.reduced));
    }
    if let Some(path) = &args.out {
        atomic_write(std::path::Path::new(path), &report.reduced.to_bytes())
            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(dir) = &args.out_dir {
        let n = write_dir(&report.reduced, std::path::Path::new(dir))
            .unwrap_or_else(|e| fail(format!("cannot write {dir}: {e}")));
        eprintln!("wrote {n} class files to {dir}");
    }
    if let Some(path) = &args.json {
        // The same identity fields the service's result document carries,
        // so `diff`ing daemon output against an in-process run is trivial.
        let doc = Json::obj([
            ("format", Json::str(I::FORMAT)),
            ("strategy", Json::str(&report.strategy)),
            (
                "initial_classes",
                Json::count(report.initial.classes as u64),
            ),
            ("initial_bytes", Json::count(report.initial.bytes as u64)),
            (
                "final_classes",
                Json::count(report.final_metrics.classes as u64),
            ),
            (
                "final_bytes",
                Json::count(report.final_metrics.bytes as u64),
            ),
            ("predicate_calls", Json::count(report.predicate_calls)),
            (
                "trace_digest",
                Json::str(format!("{:016x}", report.trace.digest())),
            ),
            ("errors_preserved", Json::Bool(report.errors_preserved)),
            ("still_valid", Json::Bool(report.still_valid)),
        ]);
        atomic_write_str(std::path::Path::new(path), &doc.render())
            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}
