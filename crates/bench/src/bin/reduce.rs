//! Reduces a benchmark container: the command-line face of the paper's
//! tool.
//!
//! ```text
//! reduce --input bench.lbrc --decompiler a|b|c|all
//!        [--strategy logical|logical-min|jreduce|lossy1|lossy2|ddmin]
//!        [--out reduced.lbrc] [--json report.json] [--disasm]
//!        [--per-error] [--cost SECS] [--probe-threads N]
//!        [--engine dpll|cdcl] [--order baseline|learned|portfolio]
//! ```
//!
//! `--probe-threads N` runs N speculative probe threads inside the GBR
//! search (and N concurrent searches in `--per-error` mode); the reduced
//! output is bit-identical at every setting. `--engine cdcl` backs the
//! logical strategies' complete searches with the CDCL solver — same
//! output, different solver effort — and `--order` picks the GBR variable
//! order of the `logical` strategy (each choice is deterministic, but
//! different choices may commit different sound results). `--json` writes a small
//! machine-readable report (sizes, predicate calls, trace digest) for
//! comparing runs — the CI daemon smoke test diffs it against the
//! service's result document.
//!
//! Exit status: `0` on success, `1` when the input cannot be read, does
//! not trigger the selected decompiler's bugs, or the reduction itself
//! fails, `2` on usage errors.

use lbr_classfile::{disassemble_program, read_program, write_class_directory, write_program};
use lbr_core::{EngineChoice, LossyPick};
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{check_report, OrderChoice, ReductionSession, RunOptions, Strategy};
use lbr_logic::MsaStrategy;
use lbr_service::{atomic_write, atomic_write_str, Json};

/// Prints a diagnostic and exits with status 1 (runtime failure).
fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut json: Option<String> = None;
    let mut decompiler = "a".to_owned();
    let mut strategy = "logical".to_owned();
    let mut disasm = false;
    let mut per_error = false;
    let mut cost = 33.0f64;
    let mut options = RunOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--input" | "-i" => input = Some(value()),
            "--out" | "-o" => out = Some(value()),
            "--out-dir" => out_dir = Some(value()),
            "--json" => json = Some(value()),
            "--decompiler" | "-d" => decompiler = value(),
            "--strategy" | "-s" => strategy = value(),
            "--cost" => cost = value().parse().expect("--cost takes seconds"),
            "--probe-threads" => {
                options.probe_threads = value().parse().expect("--probe-threads takes a number")
            }
            "--probe-latency-micros" => {
                options.probe_latency_micros = value()
                    .parse()
                    .expect("--probe-latency-micros takes a number")
            }
            "--engine" => {
                options.engine = match value().as_str() {
                    "dpll" => EngineChoice::Dpll,
                    "cdcl" => EngineChoice::Cdcl,
                    other => {
                        eprintln!("unknown engine {other} (dpll|cdcl)");
                        std::process::exit(2);
                    }
                }
            }
            "--order" => {
                options.order = match value().as_str() {
                    "baseline" => OrderChoice::Baseline,
                    "learned" => OrderChoice::Learned,
                    "portfolio" => OrderChoice::Portfolio,
                    other => {
                        eprintln!("unknown order {other} (baseline|learned|portfolio)");
                        std::process::exit(2);
                    }
                }
            }
            "--disasm" => disasm = true,
            "--per-error" => per_error = true,
            "--help" | "-h" => {
                println!("usage: reduce --input bench.lbrc [--decompiler a|b|c|all]");
                println!(
                    "              [--strategy logical|logical-min|jreduce|lossy1|lossy2|ddmin]"
                );
                println!(
                    "              [--out reduced.lbrc] [--out-dir dir/] [--json report.json]"
                );
                println!("              [--disasm] [--per-error] [--cost SECS]");
                println!("              [--probe-threads N] [--probe-latency-micros N]");
                println!("              [--engine dpll|cdcl] [--order baseline|learned|portfolio]");
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let input = input.unwrap_or_else(|| {
        eprintln!("--input is required (try --help)");
        std::process::exit(2);
    });
    let bytes = std::fs::read(&input).unwrap_or_else(|e| fail(format!("cannot read {input}: {e}")));
    let program = read_program(&bytes).unwrap_or_else(|e| fail(format!("bad container: {e}")));
    let bugs = match decompiler.as_str() {
        "a" => BugSet::decompiler_a(),
        "b" => BugSet::decompiler_b(),
        "c" => BugSet::decompiler_c(),
        "all" => BugSet::all(),
        other => {
            eprintln!("unknown decompiler {other}");
            std::process::exit(2);
        }
    };
    let oracle = DecompilerOracle::new(&program, bugs);
    if !oracle.is_failing() {
        fail(format!(
            "the input does not trigger decompiler {decompiler}'s bugs — nothing to reduce"
        ));
    }
    eprintln!(
        "input: {} classes; {} compiler errors to preserve",
        program.len(),
        oracle.error_count()
    );

    if per_error {
        let report = ReductionSession::new(&program, &oracle)
            .cost_per_call(cost)
            .options(options)
            .run_per_error()
            .unwrap_or_else(|e| fail(format!("per-error reduction failed: {e}")));
        println!(
            "per-error witnesses ({} searches, {} tool runs):",
            report.errors.len(),
            report.total_calls
        );
        for (error, size) in &report.errors {
            println!(
                "  {:>4} classes {:>8} bytes  {error}",
                size.classes, size.bytes
            );
        }
        return;
    }

    let strategy = match strategy.as_str() {
        "logical" => Strategy::Logical(MsaStrategy::GreedyClosure),
        "logical-min" => Strategy::LogicalMinimized,
        "jreduce" => Strategy::JReduce,
        "lossy1" => Strategy::Lossy(LossyPick::FirstFirst),
        "lossy2" => Strategy::Lossy(LossyPick::LastLast),
        "ddmin" => Strategy::DdminItems,
        other => {
            eprintln!("unknown strategy {other}");
            std::process::exit(2);
        }
    };
    let report = ReductionSession::new(&program, &oracle)
        .strategy(strategy)
        .cost_per_call(cost)
        .options(options)
        .run()
        .unwrap_or_else(|e| fail(format!("reduction failed: {e}")));
    // A result only counts if it holds up end to end: error preserved,
    // still verifying, not grown, and the serialized bytes re-read into
    // the same verifying program. Anything less is a reducer bug, not a
    // result — refuse to report success.
    check_report(&report)
        .unwrap_or_else(|e| fail(format!("reduced output failed validation: {e}")));
    println!(
        "{}: {} → {} classes, {} → {} bytes ({:.1}%), {} tool runs, errors preserved: {}",
        report.strategy,
        report.initial.classes,
        report.final_metrics.classes,
        report.initial.bytes,
        report.final_metrics.bytes,
        100.0 * report.relative_bytes(),
        report.predicate_calls,
        report.errors_preserved,
    );
    if disasm {
        print!("{}", disassemble_program(&report.reduced));
    }
    if let Some(path) = out {
        atomic_write(std::path::Path::new(&path), &write_program(&report.reduced))
            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(dir) = out_dir {
        let n = write_class_directory(&report.reduced, std::path::Path::new(&dir))
            .unwrap_or_else(|e| fail(format!("cannot write {dir}: {e}")));
        eprintln!("wrote {n} class files to {dir}");
    }
    if let Some(path) = json {
        // The same identity fields the service's result document carries,
        // so `diff`ing daemon output against an in-process run is trivial.
        let doc = Json::obj([
            ("strategy", Json::str(&report.strategy)),
            (
                "initial_classes",
                Json::count(report.initial.classes as u64),
            ),
            ("initial_bytes", Json::count(report.initial.bytes as u64)),
            (
                "final_classes",
                Json::count(report.final_metrics.classes as u64),
            ),
            (
                "final_bytes",
                Json::count(report.final_metrics.bytes as u64),
            ),
            ("predicate_calls", Json::count(report.predicate_calls)),
            (
                "trace_digest",
                Json::str(format!("{:016x}", report.trace.digest())),
            ),
            ("errors_preserved", Json::Bool(report.errors_preserved)),
            ("still_valid", Json::Bool(report.still_valid)),
        ]);
        atomic_write_str(std::path::Path::new(&path), &doc.render())
            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}
