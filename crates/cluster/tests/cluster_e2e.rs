//! End-to-end and property tests for the reduction cluster.
//!
//! The claims under test are the subsystem's whole point:
//!
//! * the ordered-verdict merge is a **permutation-invariant** function of
//!   the verdict set — worker reply order can never move the result;
//! * a clustered daemon produces **byte-identical** reduced output and
//!   trace digest to the single-host daemon at 1, 2, and 4 workers;
//! * a worker dying mid-run and a partitioned cache tier are both
//!   invisible to the result;
//! * a warm shared cache tier yields cross-worker hits visible in the
//!   coordinator's stats.

use lbr_classfile::write_program;
use lbr_cluster::{run_worker, ClusterServer, RemoteFrontier, SharedFrontier, WorkerOptions};
use lbr_core::{ConcurrentPredicate, FaultPlan, Probe, ProbeDistributor, VerdictSource};
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{
    build_model, reduce_program, run_logical_resumable, CandidateProbe, ReductionReport,
    RunOptions, ServiceHooks,
};
use lbr_logic::{MsaStrategy, VarSet};
use lbr_prng::{SliceChoose, SplitMix64};
use lbr_service::{Client, Daemon, DaemonConfig, Json, PersistentOracleCache};
use lbr_workload::{generate, WorkloadConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbr-cluster-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A failing benchmark program for decompiler `a`, written as a container.
fn make_container(dir: &Path, seed: u64, classes: usize) -> (PathBuf, Vec<u8>) {
    let config = WorkloadConfig {
        seed,
        classes,
        interfaces: (classes / 3).max(2),
        plant: BugSet::decompiler_a().kinds().to_vec(),
        ..WorkloadConfig::default()
    };
    let program = generate(&config);
    let bytes = write_program(&program);
    let path = dir.join(format!("bench-{seed}.lbrc"));
    std::fs::write(&path, &bytes).expect("write container");
    (path, bytes)
}

/// The in-process single-host reference every cluster run must reproduce.
fn baseline(bytes: &[u8]) -> ReductionReport {
    let program = lbr_classfile::read_program(bytes).expect("read container");
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
    assert!(oracle.is_failing(), "fixture must trigger decompiler a");
    run_logical_resumable(
        &program,
        &oracle,
        MsaStrategy::GreedyClosure,
        33.0,
        &RunOptions::default(),
        ServiceHooks::default(),
    )
    .expect("baseline reduction")
}

// ----------------------------------------------------------------------
// Satellite: the permutation-invariance property test (no TCP — the
// frontier itself is the unit under test).
// ----------------------------------------------------------------------

/// A distributor over one pre-built [`SharedFrontier`], for in-process
/// fake workers.
struct TestDistributor {
    frontier: Arc<SharedFrontier>,
}

impl ProbeDistributor for TestDistributor {
    fn open_frontier<'a>(
        &'a self,
        local: &'a dyn ConcurrentPredicate,
    ) -> Box<dyn VerdictSource + 'a> {
        Box::new(RemoteFrontier::new(Arc::clone(&self.frontier), local))
    }

    fn frontier_width(&self) -> usize {
        8
    }
}

/// A fake worker: pulls slices, evaluates them with its own rebuilt
/// pipeline predicate (exactly like a real worker node), then submits
/// the verdicts in a seed-shuffled order.
fn shuffling_worker(
    frontier: &SharedFrontier,
    program: &lbr_classfile::Program,
    worker: u64,
    seed: u64,
    stop: &AtomicBool,
) {
    let oracle = DecompilerOracle::new(program, BugSet::decompiler_a());
    let model = build_model(program).expect("worker model");
    let registry = &model.registry;
    let materialize = |keep: &VarSet| reduce_program(program, registry, keep);
    let base = CandidateProbe {
        materialize: &materialize,
        oracle: &oracle,
    };
    let mut rng = SplitMix64::seed_from_u64(seed);
    while !stop.load(Ordering::SeqCst) {
        let batch = frontier.pull(worker, 4);
        if batch.is_empty() {
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        let results: Vec<(VarSet, Probe)> = batch
            .into_iter()
            .map(|keep| {
                let probe = base.probe(&keep);
                (keep, probe)
            })
            .collect();
        // The shuffle under test: reply order is a seeded permutation.
        for (keep, probe) in results.shuffled(&mut rng) {
            frontier.verdict(worker, keep, *probe);
        }
    }
}

/// Shuffles worker reply order across 100 seeds: the GBR trace digest,
/// reduced bytes, and call counts must never move. This is the
/// permutation-invariance of the coordinator's ordered-verdict merge —
/// verdicts are consumed by key in demand order, never by arrival order.
#[test]
fn verdict_merge_is_permutation_invariant_over_100_seeds() {
    let dir = scratch("permutation");
    let (_, bytes) = make_container(&dir, 3, 10);
    let program = lbr_classfile::read_program(&bytes).unwrap();
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
    let reference = baseline(&bytes);
    for seed in 0..100u64 {
        let frontier = Arc::new(SharedFrontier::new());
        let stop = AtomicBool::new(false);
        let report = std::thread::scope(|scope| {
            for worker in 0..2u64 {
                let frontier = Arc::clone(&frontier);
                let (program, stop) = (&program, &stop);
                scope.spawn(move || {
                    shuffling_worker(&frontier, program, worker + 1, seed ^ (worker + 1), stop)
                });
            }
            let distributor = TestDistributor {
                frontier: Arc::clone(&frontier),
            };
            let report = run_logical_resumable(
                &program,
                &oracle,
                MsaStrategy::GreedyClosure,
                33.0,
                &RunOptions::default(),
                ServiceHooks {
                    distributor: Some(&distributor),
                    ..ServiceHooks::default()
                },
            )
            .expect("clustered reduction");
            stop.store(true, Ordering::SeqCst);
            report
        });
        assert_eq!(
            report.trace.digest(),
            reference.trace.digest(),
            "seed {seed}: shuffled reply order moved the trace digest"
        );
        assert_eq!(
            write_program(&report.reduced),
            write_program(&reference.reduced),
            "seed {seed}: shuffled reply order changed the reduced bytes"
        );
        assert_eq!(
            report.predicate_calls, reference.predicate_calls,
            "seed {seed}: shuffled reply order changed the call count"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// Full-stack TCP end-to-end.
// ----------------------------------------------------------------------

struct Cluster {
    client: Client,
    /// The authoritative oracle-cache tier this coordinator serves.
    tier: Arc<PersistentOracleCache>,
    server: Arc<ClusterServer>,
    daemon: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Cluster {
    /// Starts a clustered coordinator plus `workers` in-process worker
    /// nodes over real TCP.
    fn start(dir: &Path, workers: usize, faults: Option<FaultPlan>) -> Cluster {
        Cluster::start_with_tier(dir, workers, faults, None)
    }

    /// Like [`Cluster::start`], but with an externally supplied
    /// authoritative cache tier (models a coordinator restart that keeps
    /// the warm tier while the daemon's own state starts cold).
    fn start_with_tier(
        dir: &Path,
        workers: usize,
        faults: Option<FaultPlan>,
        tier: Option<Arc<PersistentOracleCache>>,
    ) -> Cluster {
        std::fs::create_dir_all(dir).expect("state dir");
        let cache =
            Arc::new(PersistentOracleCache::open(dir.join("oracle.cache")).expect("open cache"));
        let tier = tier.unwrap_or_else(|| Arc::clone(&cache));
        let server = ClusterServer::start(dir, Arc::clone(&tier), 4).expect("cluster server");
        let daemon = Daemon::start_clustered(
            DaemonConfig::new(dir, 2),
            cache,
            Arc::clone(&server) as Arc<dyn lbr_service::ClusterDispatch>,
        )
        .expect("start daemon");
        let addr = daemon.local_addr().to_string();
        let handle = std::thread::spawn(move || daemon.run());
        let client = Client::connect(addr);
        assert!(
            client.wait_ready(Duration::from_secs(5)),
            "daemon never came up"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let coordinator = server.local_addr().to_string();
        let workers = (0..workers)
            .map(|i| {
                let mut options = WorkerOptions::new(&coordinator, format!("test-worker-{i}"));
                options.stop = Some(Arc::clone(&stop));
                options.cache_faults = faults;
                std::thread::spawn(move || run_worker(&options))
            })
            .collect();
        Cluster {
            client,
            tier,
            server,
            daemon: Some(handle),
            stop,
            workers,
        }
    }

    fn submit_and_wait(&self, input: &Path, output: &Path) -> Json {
        let spec = Json::obj([
            ("input", Json::str(input.display().to_string())),
            ("decompiler", Json::str("a")),
            ("output", Json::str(output.display().to_string())),
            // Modeled probe latency: gives workers time to win batches
            // (with zero latency the driver computes everything inline
            // before anyone can pull).
            ("probe_latency_micros", Json::count(2_000)),
        ]);
        let id = self.client.submit(&spec).expect("submit");
        self.client.wait_result(id).expect("result")
    }

    fn finish(mut self) -> Json {
        let stats = self.client.stats().expect("stats");
        self.stop.store(true, Ordering::SeqCst);
        self.client.shutdown().expect("shutdown");
        for worker in self.workers.drain(..) {
            let _ = worker.join().expect("worker thread");
        }
        self.server.shutdown();
        self.daemon
            .take()
            .unwrap()
            .join()
            .expect("daemon thread")
            .expect("daemon run");
        stats
    }
}

fn assert_matches_reference(result: &Json, reference: &ReductionReport, output: &Path, tag: &str) {
    assert_eq!(
        result.str_field("status"),
        Some("done"),
        "{tag}: {result:?}"
    );
    assert_eq!(
        result.u64_field("predicate_calls"),
        Some(reference.predicate_calls),
        "{tag}: call count"
    );
    assert_eq!(
        result.str_field("trace_digest"),
        Some(format!("{:016x}", reference.trace.digest()).as_str()),
        "{tag}: trace digest"
    );
    assert_eq!(
        std::fs::read(output).expect("reduced output"),
        write_program(&reference.reduced),
        "{tag}: reduced bytes"
    );
}

/// The headline acceptance test: 1, 2, and 4 workers all reproduce the
/// single-host reduction byte-for-byte, and the workers demonstrably
/// participated.
#[test]
fn cluster_matches_single_host_at_1_2_4_workers() {
    let dir = scratch("e2e");
    let (input, bytes) = make_container(&dir, 21, 16);
    let reference = baseline(&bytes);
    for workers in [1usize, 2, 4] {
        let state = dir.join(format!("state-{workers}"));
        let cluster = Cluster::start(&state, workers, None);
        let output = dir.join(format!("out-{workers}.lbrc"));
        let result = cluster.submit_and_wait(&input, &output);
        let stats = cluster.finish();
        assert_matches_reference(&result, &reference, &output, &format!("{workers} workers"));
        let cluster_stats = stats.get("cluster").expect("stats.cluster");
        assert_eq!(
            cluster_stats.u64_field("workers_seen"),
            Some(workers as u64),
            "{workers} workers: stats"
        );
        assert!(
            cluster_stats.u64_field("verdicts").unwrap_or(0) > 0,
            "{workers} workers: workers never answered a probe: {cluster_stats:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A warm shared cache tier yields cross-worker hits. The shape is a
/// coordinator hand-off: cluster A's run populates the authoritative
/// tier; cluster B inherits the warm tier but a cold daemon-side cache,
/// so B's (brand new) workers answer their probes from entries stored
/// by somebody else — visible as `cross_worker_hits` in B's stats.
#[test]
fn warm_shared_tier_yields_cross_worker_hits() {
    let dir = scratch("tier");
    let (input, bytes) = make_container(&dir, 33, 14);
    let reference = baseline(&bytes);
    let first = Cluster::start(&dir.join("state-a"), 2, None);
    let out1 = dir.join("out1.lbrc");
    cluster_check(&first, &input, &out1, &reference, "first coordinator");
    let tier = Arc::clone(&first.tier);
    let _ = first.finish();
    let second = Cluster::start_with_tier(&dir.join("state-b"), 2, None, Some(tier));
    let out2 = dir.join("out2.lbrc");
    let result2 = second.submit_and_wait(&input, &out2);
    let stats = second.finish();
    assert_matches_reference(&result2, &reference, &out2, "warm-tier coordinator");
    let cluster_stats = stats.get("cluster").expect("stats.cluster");
    assert!(
        cluster_stats.u64_field("cache_hits").unwrap_or(0) > 0,
        "warm tier must answer worker lookups: {cluster_stats:?}"
    );
    assert!(
        cluster_stats.u64_field("cross_worker_hits").unwrap_or(0) > 0,
        "warm tier hits must cross workers: {cluster_stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn cluster_check(
    cluster: &Cluster,
    input: &Path,
    output: &Path,
    reference: &ReductionReport,
    tag: &str,
) {
    let result = cluster.submit_and_wait(input, output);
    assert_matches_reference(&result, reference, output, tag);
}

/// A worker dying mid-run is invisible: its slice requeues, the driver
/// takes demanded probes over, and the result is still bit-identical.
#[test]
fn worker_death_mid_run_is_transparent() {
    let dir = scratch("death");
    let (input, bytes) = make_container(&dir, 44, 16);
    let reference = baseline(&bytes);
    let cluster = Cluster::start(&dir.join("state"), 2, None);
    // Kill one worker shortly after the job starts probing.
    let stop = Arc::clone(&cluster.stop);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::SeqCst);
    });
    let output = dir.join("out.lbrc");
    let result = cluster.submit_and_wait(&input, &output);
    killer.join().unwrap();
    let _ = cluster.finish();
    assert_matches_reference(&result, &reference, &output, "after worker death");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fully partitioned cache tier (every operation faulted) degrades to
/// local misses: no sharing, identical result.
#[test]
fn partitioned_cache_tier_degrades_to_local_miss() {
    let dir = scratch("partition");
    let (input, bytes) = make_container(&dir, 55, 14);
    let reference = baseline(&bytes);
    let cluster = Cluster::start(
        &dir.join("state"),
        2,
        Some(FaultPlan { rate: 1.0, seed: 7 }),
    );
    let output = dir.join("out.lbrc");
    let result = cluster.submit_and_wait(&input, &output);
    let stats = cluster.finish();
    assert_matches_reference(&result, &reference, &output, "partitioned tier");
    let cluster_stats = stats.get("cluster").expect("stats.cluster");
    assert_eq!(
        cluster_stats.u64_field("cache_gets"),
        Some(0),
        "a fully partitioned tier must never reach the coordinator: {cluster_stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
