//! The shared speculative frontier: the coordinator-side structure that
//! carries one job's probe work between the GBR driver and the worker
//! nodes.
//!
//! A [`SharedFrontier`] plays the role the local
//! [`ProbeScheduler`](lbr_core::ProbeScheduler) plays for in-process
//! speculation, with the worker pool replaced by whoever shows up over
//! TCP:
//!
//! * the driver **speculates** — replaces the queue of candidate
//!   keep-sets with the probes the search may need next;
//! * workers **pull** slices of the queue as probe batches and stream
//!   **verdicts** back, in whatever order the network delivers them;
//! * the driver **demands** verdicts in the exact sequential probe order
//!   of single-host GBR — ready verdicts return instantly, in-flight
//!   ones are awaited, unclaimed ones are computed inline against the
//!   local oracle stack.
//!
//! Ordered demands are what make the cluster deterministic: the merge of
//! worker replies is a *permutation-invariant* function of the verdict
//! set, because every verdict is keyed by its candidate subset and the
//! driver consumes them by key, never by arrival order. The property test
//! below shuffles reply order across a hundred seeds and asserts the
//! reduction trace digest never moves.
//!
//! Robustness lives here too: [`worker_gone`](SharedFrontier::worker_gone)
//! requeues a dead worker's unfinished slice (demanded probes jump the
//! queue and wake the driver, which takes them over inline), and a
//! patience backstop re-runs a probe locally if its worker goes silent
//! without dropping the connection. Probes are pure, so a duplicated run
//! costs time, never correctness — first verdict wins.

use lbr_core::{
    ConcurrentPredicate, DemandKind, Demanded, KeyedMap, MemoScan, Probe, VerdictSource,
};
use lbr_logic::VarSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// The pseudo-worker id of the coordinator's own driving thread, used
/// when a demand computes a probe inline (no worker had claimed it).
pub const LOCAL_WORKER: u64 = u64::MAX;

/// How long a demand waits on a claimed-but-unanswered probe before
/// re-running it locally. A backstop for workers that hang without
/// dropping their connection — clean deaths requeue via
/// [`SharedFrontier::worker_gone`] within milliseconds.
const TAKEOVER_PATIENCE: Duration = Duration::from_secs(5);

/// Condvar wait slice while a demand is parked on an in-flight probe.
const WAIT_SLICE: Duration = Duration::from_millis(5);

/// Where one claimed probe stands.
#[derive(Debug, Clone, Copy)]
enum SlotState {
    /// Claimed by a worker (or [`LOCAL_WORKER`]); verdict pending.
    Assigned(u64),
    /// Verdict recorded; the value every later demand returns.
    Done(Probe),
    /// Its worker died before answering; requeued for reassignment.
    Abandoned,
}

#[derive(Debug)]
struct Slot {
    state: SlotState,
    /// Whether the driver ever demanded this subset (deterministic
    /// hit/miss accounting, same rule as the local scheduler).
    demanded: bool,
}

#[derive(Debug, Default)]
struct FrontierInner {
    /// Every subset ever claimed or answered, keyed exactly.
    table: KeyedMap<Slot>,
    /// Speculation not yet claimed by anyone. Replaced wholesale by
    /// [`SharedFrontier::speculate`]; entries here have no table slot.
    queue: VecDeque<VarSet>,
}

/// One job's probe frontier, shared between the GBR driving thread and
/// the cluster's connection threads. See the module docs for the
/// protocol.
#[derive(Debug, Default)]
pub struct SharedFrontier {
    inner: Mutex<FrontierInner>,
    /// Signalled on every verdict and every requeue.
    ready: Condvar,
    executed: AtomicU64,
    requeued: AtomicU64,
    stale: AtomicU64,
}

impl SharedFrontier {
    /// An empty frontier.
    pub fn new() -> Self {
        SharedFrontier::default()
    }

    fn lock(&self) -> MutexGuard<'_, FrontierInner> {
        self.inner.lock().expect("frontier lock")
    }

    /// Replaces the speculation queue with `candidates` (empty cancels
    /// all pending speculation). Subsets already claimed or answered are
    /// skipped — their verdicts land in the table either way.
    pub fn speculate(&self, candidates: Vec<VarSet>) {
        let mut inner = self.lock();
        inner.queue.clear();
        for candidate in candidates {
            match inner.table.get(&candidate).map(|slot| slot.state) {
                Some(SlotState::Done(_)) | Some(SlotState::Assigned(_)) => {}
                Some(SlotState::Abandoned) | None => inner.queue.push_back(candidate),
            }
        }
    }

    /// Claims up to `max` queued subsets for `worker` and returns them as
    /// a probe batch. An empty batch means the frontier is (currently)
    /// drained.
    pub fn pull(&self, worker: u64, max: usize) -> Vec<VarSet> {
        let mut inner = self.lock();
        let mut batch = Vec::new();
        while batch.len() < max {
            let Some(key) = inner.queue.pop_front() else {
                break;
            };
            match inner.table.get_mut(&key) {
                None => {
                    inner.table.insert_if_absent(
                        &key,
                        Slot {
                            state: SlotState::Assigned(worker),
                            demanded: false,
                        },
                    );
                    batch.push(key);
                }
                Some(slot) => match slot.state {
                    SlotState::Abandoned => {
                        slot.state = SlotState::Assigned(worker);
                        batch.push(key);
                    }
                    // Raced with an inline demand or another pull.
                    SlotState::Done(_) | SlotState::Assigned(_) => {}
                },
            }
        }
        batch
    }

    /// Records one verdict from `worker`. Returns `false` for stale
    /// verdicts (the subset was already answered — a takeover or a
    /// duplicate); first write wins, which is sound because the
    /// predicate is pure.
    pub fn verdict(&self, worker: u64, key: &VarSet, probe: Probe) -> bool {
        let _ = worker;
        let mut inner = self.lock();
        let accepted = match inner.table.get_mut(key) {
            Some(slot) => match slot.state {
                SlotState::Done(_) => false,
                SlotState::Assigned(_) | SlotState::Abandoned => {
                    slot.state = SlotState::Done(probe);
                    true
                }
            },
            // Unknown subset: a reply for a slot this frontier never
            // assigned (e.g. reconstructed under a different universe).
            None => false,
        };
        drop(inner);
        if accepted {
            self.executed.fetch_add(1, Ordering::Relaxed);
            self.ready.notify_all();
        } else {
            self.stale.fetch_add(1, Ordering::Relaxed);
        }
        accepted
    }

    /// Releases every probe still assigned to `worker` (it died or
    /// disconnected): demanded subsets jump to the queue front and the
    /// waiting driver is woken to take them over; the rest requeue at
    /// the back for live workers.
    pub fn worker_gone(&self, worker: u64) {
        let mut inner = self.lock();
        let orphaned: Vec<VarSet> = inner
            .table
            .iter()
            .filter(|(_, slot)| matches!(slot.state, SlotState::Assigned(w) if w == worker))
            .map(|(key, _)| key.clone())
            .collect();
        let mut released = 0u64;
        for key in orphaned {
            let demanded = {
                let slot = inner.table.get_mut(&key).expect("orphaned slot");
                slot.state = SlotState::Abandoned;
                slot.demanded
            };
            if demanded {
                inner.queue.push_front(key);
            } else {
                inner.queue.push_back(key);
            }
            released += 1;
        }
        drop(inner);
        if released > 0 {
            self.requeued.fetch_add(released, Ordering::Relaxed);
            self.ready.notify_all();
        }
    }

    /// The driver's ordered demand: returns the verdict for `input`,
    /// waiting on an in-flight worker or computing inline against
    /// `local` when nobody claimed it. See the module docs for the
    /// determinism argument.
    pub fn demand(&self, input: &VarSet, local: &dyn ConcurrentPredicate) -> Demanded {
        let mut inner = self.lock();
        let first_demand = match inner.table.get_mut(input) {
            Some(slot) => {
                let first = !slot.demanded;
                slot.demanded = true;
                first
            }
            None => true,
        };
        let mut waited = Duration::ZERO;
        loop {
            match inner.table.get(input).map(|slot| slot.state) {
                Some(SlotState::Done(probe)) => {
                    return Demanded {
                        probe,
                        first_demand,
                        kind: if waited.is_zero() {
                            DemandKind::Ready
                        } else {
                            DemandKind::Waited
                        },
                    };
                }
                Some(SlotState::Assigned(w)) if w != LOCAL_WORKER && waited < TAKEOVER_PATIENCE => {
                    let (guard, _) = self
                        .ready
                        .wait_timeout(inner, WAIT_SLICE)
                        .expect("frontier lock");
                    inner = guard;
                    waited += WAIT_SLICE;
                }
                // Unclaimed, abandoned, or past patience: run it here.
                _ => {
                    match inner.table.get_mut(input) {
                        Some(slot) => slot.state = SlotState::Assigned(LOCAL_WORKER),
                        None => {
                            inner.table.insert_if_absent(
                                input,
                                Slot {
                                    state: SlotState::Assigned(LOCAL_WORKER),
                                    demanded: true,
                                },
                            );
                        }
                    }
                    drop(inner);
                    let computed = local.probe(input);
                    let mut inner = self.lock();
                    let slot = inner.table.get_mut(input).expect("claimed slot");
                    let probe = match slot.state {
                        // A worker's verdict landed while we ran the
                        // tool: keep the first write (values are equal —
                        // the predicate is pure).
                        SlotState::Done(probe) => probe,
                        _ => {
                            slot.state = SlotState::Done(computed);
                            self.executed.fetch_add(1, Ordering::Relaxed);
                            computed
                        }
                    };
                    drop(inner);
                    self.ready.notify_all();
                    return Demanded {
                        probe,
                        first_demand,
                        kind: DemandKind::Computed,
                    };
                }
            }
        }
    }

    /// Probes answered through this frontier (worker verdicts plus
    /// inline computes).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Probes requeued after their worker died.
    pub fn requeued(&self) -> u64 {
        self.requeued.load(Ordering::Relaxed)
    }

    /// Verdicts dropped because the subset was already answered.
    pub fn stale(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Entry/demand totals over answered probes, matching the local
    /// scheduler's accounting: `entries − demanded` is pure speculative
    /// waste.
    pub fn scan(&self) -> MemoScan {
        let inner = self.lock();
        let mut scan = MemoScan::default();
        for (_, slot) in inner.table.iter() {
            if matches!(slot.state, SlotState::Done(_)) {
                scan.entries += 1;
                if slot.demanded {
                    scan.demanded += 1;
                }
            }
        }
        scan
    }

    /// Pending (unclaimed) speculation, for observability.
    pub fn queue_depth(&self) -> usize {
        self.lock().queue.len()
    }
}

/// A [`VerdictSource`] view of a [`SharedFrontier`] bound to the run's
/// local oracle stack — what
/// [`open_frontier`](lbr_core::ProbeDistributor::open_frontier) hands the
/// GBR driver. The local predicate is the zero-worker (and dead-worker)
/// fallback: the run always makes progress.
pub struct RemoteFrontier<'a> {
    shared: std::sync::Arc<SharedFrontier>,
    local: &'a dyn ConcurrentPredicate,
}

impl<'a> RemoteFrontier<'a> {
    /// Binds `shared` to the run's local probe fallback.
    pub fn new(shared: std::sync::Arc<SharedFrontier>, local: &'a dyn ConcurrentPredicate) -> Self {
        RemoteFrontier { shared, local }
    }
}

impl VerdictSource for RemoteFrontier<'_> {
    fn demand(&self, input: &VarSet) -> Demanded {
        self.shared.demand(input, self.local)
    }

    fn speculate(&self, candidates: Vec<VarSet>) {
        self.shared.speculate(candidates);
    }

    fn executed(&self) -> u64 {
        self.shared.executed()
    }

    fn scan(&self) -> MemoScan {
        self.shared.scan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_logic::Var;

    fn set(universe: usize, vars: &[u32]) -> VarSet {
        VarSet::from_iter_with_universe(universe, vars.iter().map(|&v| Var::new(v)))
    }

    fn probe_of(size: u64) -> Probe {
        Probe {
            outcome: true,
            size,
        }
    }

    #[test]
    fn pull_claims_and_speculate_replaces() {
        let frontier = SharedFrontier::new();
        frontier.speculate(vec![set(8, &[0]), set(8, &[1]), set(8, &[2])]);
        let batch = frontier.pull(1, 2);
        assert_eq!(batch.len(), 2);
        // Retarget: the unclaimed tail is cancelled, claimed slices stay.
        frontier.speculate(vec![set(8, &[3])]);
        let batch2 = frontier.pull(2, 8);
        assert_eq!(batch2, vec![set(8, &[3])]);
        assert_eq!(frontier.pull(2, 8), Vec::<VarSet>::new());
    }

    #[test]
    fn verdicts_are_first_write_wins() {
        let frontier = SharedFrontier::new();
        frontier.speculate(vec![set(8, &[0])]);
        let batch = frontier.pull(1, 1);
        assert!(frontier.verdict(1, &batch[0], probe_of(10)));
        assert!(!frontier.verdict(2, &batch[0], probe_of(99)), "stale");
        assert_eq!(frontier.stale(), 1);
        let local = |_: &VarSet| panic!("must be answered from the table");
        let got = frontier.demand(&batch[0], &local);
        assert_eq!(got.probe.size, 10);
        assert!(got.first_demand);
        assert_eq!(got.kind, DemandKind::Ready);
    }

    #[test]
    fn unclaimed_demand_computes_inline() {
        let frontier = SharedFrontier::new();
        let local = |keep: &VarSet| keep.len() > 1;
        let got = frontier.demand(&set(8, &[0, 1]), &local);
        assert!(got.probe.outcome);
        assert_eq!(got.kind, DemandKind::Computed);
        assert!(got.first_demand);
        let again = frontier.demand(&set(8, &[0, 1]), &local);
        assert!(!again.first_demand, "repeat demand is a memo hit");
        assert_eq!(again.kind, DemandKind::Ready);
        assert_eq!(frontier.executed(), 1);
    }

    #[test]
    fn dead_worker_slice_is_requeued_and_taken_over() {
        let frontier = SharedFrontier::new();
        let a = set(8, &[0]);
        let b = set(8, &[1]);
        frontier.speculate(vec![a.clone(), b.clone()]);
        let batch = frontier.pull(7, 2);
        assert_eq!(batch.len(), 2);
        // The driver demands `a` on another thread, then the worker dies.
        let computed = std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let local = |keep: &VarSet| keep.len() == 1;
                frontier.demand(&a, &local)
            });
            std::thread::sleep(Duration::from_millis(20));
            frontier.worker_gone(7);
            handle.join().expect("demand thread")
        });
        assert!(computed.probe.outcome, "taken over and computed locally");
        assert_eq!(frontier.requeued(), 2);
        // The undemanded probe is back on the queue for live workers.
        assert_eq!(frontier.pull(8, 8), vec![b]);
    }

    #[test]
    fn scan_counts_answered_probes_only() {
        let frontier = SharedFrontier::new();
        frontier.speculate(vec![set(8, &[0]), set(8, &[1]), set(8, &[2])]);
        let batch = frontier.pull(1, 3);
        frontier.verdict(1, &batch[0], probe_of(1));
        frontier.verdict(1, &batch[1], probe_of(2));
        let local = |_: &VarSet| true;
        frontier.demand(&batch[0], &local);
        let scan = frontier.scan();
        assert_eq!(scan.entries, 2, "unanswered claims are not entries");
        assert_eq!(scan.demanded, 1);
    }
}
