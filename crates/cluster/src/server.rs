//! The coordinator's cluster server: worker connections, job frontiers,
//! and the shared oracle-cache tier.
//!
//! One [`ClusterServer`] rides alongside one reduction daemon. It binds
//! its own TCP listener (published in `cluster.addr` next to
//! `daemon.addr`), accepts worker nodes, and implements the daemon's
//! [`ClusterDispatch`] hook: every job whose strategy is resumable and
//! speculative (the logical GBR family) gets a [`ProbeDistributor`]
//! whose frontier the connected workers drain.
//!
//! ```text
//!                        coordinator host
//!   clients ──► daemon (job queue, checkpoints) ──► GBR driver thread
//!                   │                                  │ demand/speculate
//!                   │ ClusterDispatch          SharedFrontier (per job)
//!                   ▼                                  ▲ pull/verdict
//!               ClusterServer ◄── TCP (OP_CLUSTER) ──► worker nodes
//!                   │
//!          PersistentOracleCache (authoritative tier, shared with daemon)
//! ```
//!
//! The server owns nothing a worker could corrupt: verdicts merge into
//! each job's [`SharedFrontier`] keyed by subset (first write wins), the
//! cache tier is the daemon's own content-addressed
//! [`PersistentOracleCache`] behind the same namespace digests, and a
//! worker that vanishes mid-batch just has its slice requeued.

use crate::frontier::{RemoteFrontier, SharedFrontier};
use crate::wire::{
    keep_from_json, keep_to_json, probe_fields, probe_from, recv_doc, send_doc, to_hex,
};
use lbr_core::{ConcurrentPredicate, ProbeDistributor, VerdictSource};
use lbr_service::{
    atomic_write_str, namespace_digest, ClusterDispatch, JobSpec, Json, PersistentOracleCache,
};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default probes per pulled batch.
pub const DEFAULT_BATCH: usize = 8;

/// How long an idle worker is told to wait before re-pulling.
const IDLE_WAIT_MS: u64 = 5;

/// One registered job: everything a connection thread needs to serve
/// pulls, verdicts, and cache traffic for it.
struct JobSession {
    job: u64,
    /// The job's cache namespace — identical to the daemon's own
    /// (digest of decompiler id + input bytes), so worker-tier entries
    /// and coordinator-side entries share one keyspace.
    namespace: u64,
    /// What a worker needs to rebuild the exact pipeline predicate.
    descriptor: Json,
    frontier: Arc<SharedFrontier>,
}

/// Monotonic counters for the `stats` endpoint.
#[derive(Default)]
struct Counters {
    batches: AtomicU64,
    probes_assigned: AtomicU64,
    verdicts: AtomicU64,
    verdicts_stale: AtomicU64,
    requeued: AtomicU64,
    descriptors_sent: AtomicU64,
    cache_gets: AtomicU64,
    cache_hits: AtomicU64,
    cross_worker_hits: AtomicU64,
    cache_puts: AtomicU64,
    jobs_opened: AtomicU64,
}

/// State shared by the acceptor, connection threads, and distributors.
struct ServerShared {
    cache: Arc<PersistentOracleCache>,
    batch: usize,
    jobs: Mutex<HashMap<u64, Arc<JobSession>>>,
    /// (namespace, keep fingerprint) → worker that stored the entry;
    /// lets a cache hit tell whether it crossed workers.
    origins: Mutex<HashMap<(u64, u64), u64>>,
    next_worker: AtomicU64,
    workers_connected: AtomicU64,
    workers_seen: AtomicU64,
    counters: Counters,
    shutdown: AtomicBool,
}

impl ServerShared {
    fn sessions_by_id(&self) -> Vec<Arc<JobSession>> {
        let jobs = self.jobs.lock().expect("jobs lock");
        let mut sessions: Vec<Arc<JobSession>> = jobs.values().cloned().collect();
        sessions.sort_unstable_by_key(|s| s.job);
        sessions
    }

    fn session(&self, job: u64) -> Option<Arc<JobSession>> {
        self.jobs.lock().expect("jobs lock").get(&job).cloned()
    }
}

/// The worker-facing side of a clustered coordinator. Start one with
/// [`start`](ClusterServer::start), then hand it (as the
/// [`ClusterDispatch`]) to
/// [`Daemon::start_clustered`](lbr_service::Daemon::start_clustered).
pub struct ClusterServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
}

impl ClusterServer {
    /// Binds an ephemeral localhost listener, publishes it in
    /// `state_dir/cluster.addr`, and starts accepting worker
    /// connections. `cache` must be the same instance the daemon uses —
    /// it *is* the shared tier.
    pub fn start(
        state_dir: &Path,
        cache: Arc<PersistentOracleCache>,
        batch: usize,
    ) -> io::Result<Arc<ClusterServer>> {
        std::fs::create_dir_all(state_dir)?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        atomic_write_str(&state_dir.join("cluster.addr"), &format!("{addr}\n"))?;
        let shared = Arc::new(ServerShared {
            cache,
            batch: batch.max(1),
            jobs: Mutex::new(HashMap::new()),
            origins: Mutex::new(HashMap::new()),
            next_worker: AtomicU64::new(1),
            workers_connected: AtomicU64::new(0),
            workers_seen: AtomicU64::new(0),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("lbr-cluster-accept".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    let conn_shared = Arc::clone(&accept_shared);
                    let _ = std::thread::Builder::new()
                        .name("lbr-cluster-conn".to_owned())
                        .spawn(move || serve_connection(&conn_shared, stream));
                }
            })
            .expect("spawn cluster acceptor");
        Ok(Arc::new(ClusterServer { shared, addr }))
    }

    /// The bound worker-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Workers connected right now.
    pub fn workers_connected(&self) -> u64 {
        self.shared.workers_connected.load(Ordering::Relaxed)
    }

    /// Stops accepting new workers (existing connections drain on their
    /// next request error).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor.
        let _ = TcpStream::connect(self.addr);
    }
}

impl ClusterDispatch for ClusterServer {
    fn job_distributor(&self, spec: &JobSpec, input: &[u8]) -> Option<Box<dyn ProbeDistributor>> {
        // Distributed probe batches only pay off for strategies whose
        // search both checkpoints and probes speculatively (the GBR
        // service path). The registry resolves aliases, so the legacy
        // wire spelling `"logical"` keeps distributing.
        let caps = lbr_jreduce::strategy_caps(&spec.strategy)?;
        if !(caps.resumable && caps.speculative) {
            return None;
        }
        let descriptor = Json::obj([
            ("input", Json::str(to_hex(input))),
            ("format", Json::str(spec.format.clone())),
            ("decompiler", Json::str(spec.decompiler.clone())),
            ("latency_micros", Json::count(spec.probe_latency_micros)),
        ]);
        Some(Box::new(JobDistributor {
            shared: Arc::clone(&self.shared),
            job: spec.id,
            namespace: namespace_digest(&spec.decompiler, input),
            descriptor,
        }))
    }

    fn stats(&self) -> Json {
        let shared = &self.shared;
        let c = &shared.counters;
        let count = |a: &AtomicU64| Json::count(a.load(Ordering::Relaxed));
        Json::obj([
            ("workers_connected", count(&shared.workers_connected)),
            ("workers_seen", count(&shared.workers_seen)),
            ("jobs_open", {
                Json::count(shared.jobs.lock().expect("jobs lock").len() as u64)
            }),
            ("jobs_distributed", count(&c.jobs_opened)),
            ("batches", count(&c.batches)),
            ("probes_assigned", count(&c.probes_assigned)),
            ("verdicts", count(&c.verdicts)),
            ("verdicts_stale", count(&c.verdicts_stale)),
            ("requeued", count(&c.requeued)),
            ("descriptors_sent", count(&c.descriptors_sent)),
            ("cache_gets", count(&c.cache_gets)),
            ("cache_hits", count(&c.cache_hits)),
            ("cross_worker_hits", count(&c.cross_worker_hits)),
            ("cache_puts", count(&c.cache_puts)),
        ])
    }
}

/// The per-job [`ProbeDistributor`] the daemon threads into a
/// [`ReductionSession`](lbr_jreduce::ReductionSession).
struct JobDistributor {
    shared: Arc<ServerShared>,
    job: u64,
    namespace: u64,
    descriptor: Json,
}

impl ProbeDistributor for JobDistributor {
    fn open_frontier<'a>(
        &'a self,
        local: &'a dyn ConcurrentPredicate,
    ) -> Box<dyn VerdictSource + 'a> {
        let frontier = Arc::new(SharedFrontier::new());
        let session = Arc::new(JobSession {
            job: self.job,
            namespace: self.namespace,
            descriptor: self.descriptor.clone(),
            frontier: Arc::clone(&frontier),
        });
        self.shared
            .jobs
            .lock()
            .expect("jobs lock")
            .insert(self.job, session);
        self.shared
            .counters
            .jobs_opened
            .fetch_add(1, Ordering::Relaxed);
        Box::new(OpenFrontier {
            remote: RemoteFrontier::new(frontier, local),
            shared: Arc::clone(&self.shared),
            job: self.job,
        })
    }

    fn frontier_width(&self) -> usize {
        self.shared.workers_connected.load(Ordering::Relaxed) as usize * self.shared.batch
    }
}

/// The live frontier of one run: unregisters the job when the run ends,
/// so workers stop being offered its work. Verdicts racing the
/// unregistration land in the (now private) frontier — harmless.
struct OpenFrontier<'a> {
    remote: RemoteFrontier<'a>,
    shared: Arc<ServerShared>,
    job: u64,
}

impl VerdictSource for OpenFrontier<'_> {
    fn demand(&self, input: &lbr_logic::VarSet) -> lbr_core::Demanded {
        self.remote.demand(input)
    }

    fn speculate(&self, candidates: Vec<lbr_logic::VarSet>) {
        self.remote.speculate(candidates)
    }

    fn executed(&self) -> u64 {
        self.remote.executed()
    }

    fn scan(&self) -> lbr_core::MemoScan {
        self.remote.scan()
    }
}

impl Drop for OpenFrontier<'_> {
    fn drop(&mut self) {
        self.shared
            .jobs
            .lock()
            .expect("jobs lock")
            .remove(&self.job);
    }
}

// ----------------------------------------------------------------------
// Connection handling (one thread per worker).
// ----------------------------------------------------------------------

/// Serves one worker connection until EOF or a protocol error, then
/// requeues everything the worker still held.
fn serve_connection(shared: &Arc<ServerShared>, mut stream: TcpStream) {
    let mut worker: Option<u64> = None;
    while let Ok(request) = recv_doc(&mut stream) {
        let reply = handle_request(shared, &mut worker, &request);
        if send_doc(&mut stream, &reply).is_err() {
            break;
        }
    }
    if let Some(worker) = worker {
        shared.workers_connected.fetch_sub(1, Ordering::Relaxed);
        for session in shared.sessions_by_id() {
            let before = session.frontier.requeued();
            session.frontier.worker_gone(worker);
            let released = session.frontier.requeued() - before;
            shared
                .counters
                .requeued
                .fetch_add(released, Ordering::Relaxed);
        }
    }
}

fn error_reply(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(message))])
}

fn handle_request(shared: &Arc<ServerShared>, worker: &mut Option<u64>, request: &Json) -> Json {
    match request.str_field("op") {
        Some("hello") => {
            let id = shared.next_worker.fetch_add(1, Ordering::Relaxed);
            *worker = Some(id);
            shared.workers_connected.fetch_add(1, Ordering::Relaxed);
            shared.workers_seen.fetch_add(1, Ordering::Relaxed);
            Json::obj([
                ("ok", Json::Bool(true)),
                ("worker", Json::count(id)),
                ("batch", Json::count(shared.batch as u64)),
            ])
        }
        Some("pull") => handle_pull(shared, request),
        Some("verdicts") => handle_verdicts(shared, request),
        Some("cache_get") => handle_cache_get(shared, request),
        Some("cache_put") => handle_cache_put(shared, request),
        Some(other) => error_reply(&format!("unknown cluster op {other:?}")),
        None => error_reply("missing op"),
    }
}

/// Picks the job a pulling worker should serve: its current job if that
/// still has queued work (descriptor stickiness), else the lowest job id
/// with work, else — when nothing is queued anywhere — its current job
/// again so it keeps polling cheaply.
fn handle_pull(shared: &Arc<ServerShared>, request: &Json) -> Json {
    let Some(worker) = request.u64_field("worker") else {
        return error_reply("pull before hello");
    };
    let max = request
        .u64_field("max")
        .map_or(shared.batch, |n| (n as usize).clamp(1, 1024));
    let current = request.u64_field("job");
    let sessions = shared.sessions_by_id();
    let chosen = current
        .and_then(|id| {
            sessions
                .iter()
                .find(|s| s.job == id && s.frontier.queue_depth() > 0)
        })
        .or_else(|| sessions.iter().find(|s| s.frontier.queue_depth() > 0));
    let Some(session) = chosen else {
        return Json::obj([
            ("ok", Json::Bool(true)),
            ("kind", Json::str("idle")),
            ("wait_ms", Json::count(IDLE_WAIT_MS)),
        ]);
    };
    if current != Some(session.job) {
        shared
            .counters
            .descriptors_sent
            .fetch_add(1, Ordering::Relaxed);
        return Json::obj([
            ("ok", Json::Bool(true)),
            ("kind", Json::str("job")),
            ("job", Json::count(session.job)),
            ("descriptor", session.descriptor.clone()),
        ]);
    }
    let batch = session.frontier.pull(worker, max);
    if batch.is_empty() {
        return Json::obj([
            ("ok", Json::Bool(true)),
            ("kind", Json::str("idle")),
            ("wait_ms", Json::count(IDLE_WAIT_MS)),
        ]);
    }
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .probes_assigned
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    let universe = batch[0].universe() as u64;
    Json::obj([
        ("ok", Json::Bool(true)),
        ("kind", Json::str("batch")),
        ("job", Json::count(session.job)),
        ("universe", Json::count(universe)),
        (
            "probes",
            Json::Arr(batch.iter().map(keep_to_json).collect()),
        ),
    ])
}

fn handle_verdicts(shared: &Arc<ServerShared>, request: &Json) -> Json {
    let (Some(worker), Some(job), Some(universe)) = (
        request.u64_field("worker"),
        request.u64_field("job"),
        request.u64_field("universe"),
    ) else {
        return error_reply("verdicts needs worker, job, universe");
    };
    let Some(session) = shared.session(job) else {
        // The run finished while the batch was in flight; drop it.
        return Json::obj([("ok", Json::Bool(true)), ("accepted", Json::count(0))]);
    };
    let Some(results) = request.get("results").and_then(Json::as_arr) else {
        return error_reply("verdicts needs results");
    };
    let mut accepted = 0u64;
    for result in results {
        let Some(keep_doc) = result.get("keep") else {
            return error_reply("verdict missing keep");
        };
        let keep = match keep_from_json(keep_doc, universe as usize) {
            Ok(keep) => keep,
            Err(e) => return error_reply(&e),
        };
        let probe = match probe_from(result) {
            Ok(probe) => probe,
            Err(e) => return error_reply(&e),
        };
        if session.frontier.verdict(worker, &keep, probe) {
            accepted += 1;
            shared.counters.verdicts.fetch_add(1, Ordering::Relaxed);
        } else {
            shared
                .counters
                .verdicts_stale
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    Json::obj([
        ("ok", Json::Bool(true)),
        ("accepted", Json::count(accepted)),
    ])
}

fn handle_cache_get(shared: &Arc<ServerShared>, request: &Json) -> Json {
    let (Some(worker), Some(job), Some(universe), Some(keep_doc)) = (
        request.u64_field("worker"),
        request.u64_field("job"),
        request.u64_field("universe"),
        request.get("keep"),
    ) else {
        return error_reply("cache_get needs worker, job, universe, keep");
    };
    let Some(session) = shared.session(job) else {
        return Json::obj([("ok", Json::Bool(true)), ("hit", Json::Bool(false))]);
    };
    let keep = match keep_from_json(keep_doc, universe as usize) {
        Ok(keep) => keep,
        Err(e) => return error_reply(&e),
    };
    shared.counters.cache_gets.fetch_add(1, Ordering::Relaxed);
    match shared.cache.lookup(session.namespace, &keep) {
        Some(probe) => {
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            let origin = shared
                .origins
                .lock()
                .expect("origins lock")
                .get(&(session.namespace, keep.fingerprint()))
                .copied();
            // An entry this worker did not store itself — it came from
            // another worker, the coordinator's own probes, or disk.
            if origin != Some(worker) {
                shared
                    .counters
                    .cross_worker_hits
                    .fetch_add(1, Ordering::Relaxed);
            }
            let [outcome, size] = probe_fields(probe);
            Json::obj([
                ("ok", Json::Bool(true)),
                ("hit", Json::Bool(true)),
                outcome,
                size,
            ])
        }
        None => Json::obj([("ok", Json::Bool(true)), ("hit", Json::Bool(false))]),
    }
}

fn handle_cache_put(shared: &Arc<ServerShared>, request: &Json) -> Json {
    let (Some(worker), Some(job), Some(universe), Some(keep_doc)) = (
        request.u64_field("worker"),
        request.u64_field("job"),
        request.u64_field("universe"),
        request.get("keep"),
    ) else {
        return error_reply("cache_put needs worker, job, universe, keep");
    };
    let Some(session) = shared.session(job) else {
        return Json::obj([("ok", Json::Bool(true))]);
    };
    let keep = match keep_from_json(keep_doc, universe as usize) {
        Ok(keep) => keep,
        Err(e) => return error_reply(&e),
    };
    let probe = match probe_from(request) {
        Ok(probe) => probe,
        Err(e) => return error_reply(&e),
    };
    shared.cache.store(session.namespace, &keep, probe);
    shared.counters.cache_puts.fetch_add(1, Ordering::Relaxed);
    shared
        .origins
        .lock()
        .expect("origins lock")
        .entry((session.namespace, keep.fingerprint()))
        .or_insert(worker);
    Json::obj([("ok", Json::Bool(true))])
}
