//! The worker node: connects to a coordinator, rebuilds the exact
//! pipeline predicate per job, and evaluates pulled probe batches.
//!
//! A worker is stateless by design — everything it needs arrives in the
//! job descriptor (the container bytes, the oracle id, the modeled probe
//! latency), and everything it produces goes back as keyed verdicts. Its
//! oracle stack mirrors the single-host pipeline's exactly:
//!
//! ```text
//! probe → local memo → coordinator cache tier → latency → CandidateProbe
//! ```
//!
//! The coordinator-hosted tier is queried over the same connection
//! (`cache_get`/`cache_put`); a [`FaultPlan`] can partition it, in which
//! case the layer degrades to a local miss — the probe still runs, the
//! answer is still exact, only the sharing is lost.

use crate::wire::{from_hex, keep_from_json, keep_to_json, probe_fields, recv_doc, send_doc};
use lbr_classfile::read_program;
use lbr_core::{
    CacheLayer, ConcurrentPredicate, FaultInjector, FaultPlan, Input, InputOracle, LatencyLayer,
    MemoryCache, OracleStack, Probe, ProbeCache,
};
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{build_model, reduce_program, CandidateProbe};
use lbr_logic::VarSet;
use lbr_service::Json;
use lbr_stackvm::{
    build_stack_model, reduce_module, Module as StackModule, StackBugSet, StackOracle,
};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a worker node runs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator cluster address, `host:port`.
    pub coordinator: String,
    /// Display name sent in `hello` (diagnostics only).
    pub name: String,
    /// Probes per pulled batch; `None` accepts the coordinator's value.
    pub batch: Option<usize>,
    /// Simulated cache-tier faults: each fired operation behaves as a
    /// partition (lookup → miss, store → dropped).
    pub cache_faults: Option<FaultPlan>,
    /// Reconnect (with backoff) when the coordinator drops, instead of
    /// returning the error. What `lbr-workerd` wants; in-process test
    /// workers usually don't.
    pub reconnect: bool,
    /// Cooperative stop for in-process workers; checked between
    /// requests. `None` runs until the connection dies.
    pub stop: Option<Arc<AtomicBool>>,
}

impl WorkerOptions {
    /// Options for a worker named `name` against `coordinator`.
    pub fn new(coordinator: impl Into<String>, name: impl Into<String>) -> Self {
        WorkerOptions {
            coordinator: coordinator.into(),
            name: name.into(),
            batch: None,
            cache_faults: None,
            reconnect: false,
            stop: None,
        }
    }

    fn stopped(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|stop| stop.load(Ordering::SeqCst))
    }
}

/// One strict request/response cluster connection, shareable between the
/// pull loop and the cache tier (which issues RPCs from inside probes).
struct ClusterConn {
    stream: Mutex<TcpStream>,
}

impl ClusterConn {
    fn request(&self, doc: &Json) -> io::Result<Json> {
        let mut stream = self.stream.lock().expect("conn lock");
        send_doc(&mut *stream as &mut dyn Write, doc)?;
        recv_doc(&mut *stream as &mut dyn Read)
    }
}

/// What the job-serving loop decided.
enum ServeNext {
    /// The stop flag fired; exit cleanly.
    Stop,
    /// The coordinator redirected us to another job.
    Switch(u64, Json),
}

/// Runs a worker until its stop flag fires (never, for `lbr-workerd`)
/// or — with `reconnect` off — the coordinator connection fails.
pub fn run_worker(options: &WorkerOptions) -> io::Result<()> {
    loop {
        if options.stopped() {
            return Ok(());
        }
        match serve_coordinator(options) {
            Ok(()) => return Ok(()),
            Err(e) if !options.reconnect => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

/// One connection's lifetime: hello, then pull/evaluate until stopped or
/// disconnected.
fn serve_coordinator(options: &WorkerOptions) -> io::Result<()> {
    let stream = TcpStream::connect(&options.coordinator)?;
    let _ = stream.set_nodelay(true);
    let conn = ClusterConn {
        stream: Mutex::new(stream),
    };
    let hello = conn.request(&Json::obj([
        ("op", Json::str("hello")),
        ("name", Json::str(options.name.clone())),
    ]))?;
    let worker = hello
        .u64_field("worker")
        .ok_or_else(|| protocol("hello reply lacks a worker id"))?;
    let batch = options
        .batch
        .unwrap_or_else(|| hello.u64_field("batch").unwrap_or(8) as usize)
        .max(1);
    let mut current: Option<(u64, Json)> = None;
    loop {
        if options.stopped() {
            return Ok(());
        }
        match current.take() {
            Some((job, descriptor)) => {
                match serve_job(&conn, options, worker, batch, job, &descriptor)? {
                    ServeNext::Stop => return Ok(()),
                    ServeNext::Switch(next_job, next_descriptor) => {
                        current = Some((next_job, next_descriptor));
                    }
                }
            }
            None => {
                let reply = conn.request(&pull_request(worker, None, batch))?;
                match reply.str_field("kind") {
                    Some("job") => current = Some(take_descriptor(&reply)?),
                    Some("idle") | None => {
                        let wait = reply.u64_field("wait_ms").unwrap_or(5).min(100);
                        std::thread::sleep(Duration::from_millis(wait));
                    }
                    Some(other) => {
                        return Err(protocol(&format!(
                            "unexpected pull kind {other:?} with no job loaded"
                        )))
                    }
                }
            }
        }
    }
}

fn pull_request(worker: u64, job: Option<u64>, max: usize) -> Json {
    let mut fields = vec![
        ("op", Json::str("pull")),
        ("worker", Json::count(worker)),
        ("max", Json::count(max as u64)),
    ];
    if let Some(job) = job {
        fields.push(("job", Json::count(job)));
    }
    Json::obj_from(fields)
}

fn take_descriptor(reply: &Json) -> io::Result<(u64, Json)> {
    let job = reply
        .u64_field("job")
        .ok_or_else(|| protocol("job reply lacks an id"))?;
    let descriptor = reply
        .get("descriptor")
        .cloned()
        .ok_or_else(|| protocol("job reply lacks a descriptor"))?;
    Ok((job, descriptor))
}

fn protocol(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_owned())
}

/// Loads one job from its descriptor and serves its batches until the
/// coordinator redirects or the stop flag fires. The predicate built
/// here is byte-for-byte the pipeline's own: same container parse, same
/// oracle, same model, same materialization.
fn serve_job(
    conn: &ClusterConn,
    options: &WorkerOptions,
    worker: u64,
    batch: usize,
    job: u64,
    descriptor: &Json,
) -> io::Result<ServeNext> {
    let bytes = from_hex(
        descriptor
            .str_field("input")
            .ok_or_else(|| protocol("descriptor lacks input"))?,
    )
    .map_err(|e| protocol(&e))?;
    match descriptor.str_field("format") {
        Some("stackvm") => {
            let module = <StackModule as Input>::from_bytes(&bytes)
                .map_err(|e| protocol(&format!("bad container: {e}")))?;
            let bugs = match descriptor.str_field("decompiler") {
                Some("a") => StackBugSet::lowering_a(),
                Some("b") => StackBugSet::lowering_b(),
                Some("c") => StackBugSet::lowering_c(),
                _ => StackBugSet::all(),
            };
            let oracle = StackOracle::new(&module, bugs);
            let model =
                build_stack_model(&module).map_err(|e| protocol(&format!("bad model: {e}")))?;
            let registry = &model.registry;
            let universe = model.cnf.num_vars();
            let materialize = |keep: &VarSet| reduce_module(&module, registry, keep);
            serve_batches(
                conn,
                options,
                worker,
                batch,
                job,
                descriptor,
                universe,
                &materialize,
                &oracle,
            )
        }
        _ => {
            let program =
                read_program(&bytes).map_err(|e| protocol(&format!("bad container: {e}")))?;
            let bugs = match descriptor.str_field("decompiler") {
                Some("a") => BugSet::decompiler_a(),
                Some("b") => BugSet::decompiler_b(),
                Some("c") => BugSet::decompiler_c(),
                _ => BugSet::all(),
            };
            let oracle = DecompilerOracle::new(&program, bugs);
            let model = build_model(&program).map_err(|e| protocol(&format!("bad model: {e}")))?;
            let registry = &model.registry;
            let universe = model.cnf.num_vars();
            let materialize = |keep: &VarSet| reduce_program(&program, registry, keep);
            serve_batches(
                conn,
                options,
                worker,
                batch,
                job,
                descriptor,
                universe,
                &materialize,
                &oracle,
            )
        }
    }
}

/// The format-generic half of [`serve_job`]: stacks the cache tiers over
/// the job's predicate and answers pulled batches until redirected.
#[allow(clippy::too_many_arguments)]
fn serve_batches<I: Input, O: InputOracle<I>>(
    conn: &ClusterConn,
    options: &WorkerOptions,
    worker: u64,
    batch: usize,
    job: u64,
    descriptor: &Json,
    universe: usize,
    materialize: &(dyn Fn(&VarSet) -> I + Sync),
    oracle: &O,
) -> io::Result<ServeNext> {
    let base = CandidateProbe {
        materialize,
        oracle,
    };
    let local_memo = MemoryCache::new();
    let memo_layer = CacheLayer::new(&local_memo);
    let remote_tier = RemoteCacheTier::new(conn, worker, job, universe, options.cache_faults);
    let remote_layer = CacheLayer::new(&remote_tier);
    let latency = LatencyLayer::new(descriptor.u64_field("latency_micros").unwrap_or(0));
    let mut stack = OracleStack::new(&base);
    stack.push(&memo_layer);
    stack.push(&remote_layer);
    stack.push(&latency);
    loop {
        if options.stopped() {
            return Ok(ServeNext::Stop);
        }
        let reply = conn.request(&pull_request(worker, Some(job), batch))?;
        match reply.str_field("kind") {
            Some("batch") => {
                let batch_universe = reply
                    .u64_field("universe")
                    .ok_or_else(|| protocol("batch lacks a universe"))?
                    as usize;
                if batch_universe != universe {
                    return Err(protocol(&format!(
                        "batch universe {batch_universe} != model universe {universe}"
                    )));
                }
                let probes = reply
                    .get("probes")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| protocol("batch lacks probes"))?;
                let mut results = Vec::with_capacity(probes.len());
                for keep_doc in probes {
                    let keep = keep_from_json(keep_doc, universe).map_err(|e| protocol(&e))?;
                    let probe = stack.probe(&keep);
                    let [outcome, size] = probe_fields(probe);
                    results.push(Json::obj([("keep", keep_to_json(&keep)), outcome, size]));
                    if options.stopped() {
                        break;
                    }
                }
                let ack = conn.request(&Json::obj([
                    ("op", Json::str("verdicts")),
                    ("worker", Json::count(worker)),
                    ("job", Json::count(job)),
                    ("universe", Json::count(universe as u64)),
                    ("results", Json::Arr(results)),
                ]))?;
                if ack.bool_field("ok") != Some(true) {
                    return Err(protocol("verdicts rejected"));
                }
            }
            Some("idle") => {
                let wait = reply.u64_field("wait_ms").unwrap_or(5).min(100);
                std::thread::sleep(Duration::from_millis(wait));
            }
            Some("job") => {
                let (next_job, next_descriptor) = take_descriptor(&reply)?;
                return Ok(ServeNext::Switch(next_job, next_descriptor));
            }
            _ => return Err(protocol("unexpected pull reply")),
        }
    }
}

/// The coordinator-hosted cache tier as a [`ProbeCache`] layer. Every
/// fault (simulated via [`FaultPlan`]) or transport error degrades the
/// operation to a local miss / dropped store — the stack beneath still
/// answers exactly, only the cross-worker sharing is lost.
struct RemoteCacheTier<'c> {
    conn: &'c ClusterConn,
    worker: u64,
    job: u64,
    universe: usize,
    faults: FaultInjector,
    /// Set after a transport error: stop issuing RPCs, run local-miss.
    degraded: AtomicBool,
}

impl<'c> RemoteCacheTier<'c> {
    fn new(
        conn: &'c ClusterConn,
        worker: u64,
        job: u64,
        universe: usize,
        plan: Option<FaultPlan>,
    ) -> Self {
        let faults = FaultInjector::new();
        if let Some(plan) = plan {
            faults.arm(plan);
        }
        RemoteCacheTier {
            conn,
            worker,
            job,
            universe,
            faults,
            degraded: AtomicBool::new(false),
        }
    }

    fn keyed(&self, op: &str, key: &VarSet) -> Vec<(&'static str, Json)> {
        let _ = op;
        vec![
            ("worker", Json::count(self.worker)),
            ("job", Json::count(self.job)),
            ("universe", Json::count(self.universe as u64)),
            ("keep", keep_to_json(key)),
        ]
    }
}

impl ProbeCache for RemoteCacheTier<'_> {
    fn lookup(&self, key: &VarSet) -> Option<Probe> {
        if self.degraded.load(Ordering::Relaxed) || self.faults.fire() {
            return None;
        }
        let mut fields = vec![("op", Json::str("cache_get"))];
        fields.extend(self.keyed("cache_get", key));
        match self.conn.request(&Json::obj_from(fields)) {
            Ok(reply) if reply.bool_field("hit") == Some(true) => Some(Probe {
                outcome: reply.bool_field("outcome")?,
                size: reply.u64_field("size")?,
            }),
            Ok(_) => None,
            Err(_) => {
                self.degraded.store(true, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &VarSet, probe: Probe) {
        if self.degraded.load(Ordering::Relaxed) || self.faults.fire() {
            return;
        }
        let mut fields = vec![("op", Json::str("cache_put"))];
        fields.extend(self.keyed("cache_put", key));
        let [outcome, size] = probe_fields(probe);
        fields.push(outcome);
        fields.push(size);
        if self.conn.request(&Json::obj_from(fields)).is_err() {
            self.degraded.store(true, Ordering::Relaxed);
        }
    }
}
