//! The distributed reduction cluster: a coordinator and worker nodes
//! sharing one oracle-cache tier.
//!
//! The paper's cost model is brutally simple — wall time ≈ predicate
//! calls × ≈33 s of decompile+compile — which makes probe evaluation the
//! one thing worth distributing. This crate scales the speculative
//! frontier of parallel GBR past one host:
//!
//! * the **coordinator** (`lbr-coordinatord`) is the ordinary reduction
//!   daemon plus a [`ClusterServer`]: it owns the job queue, the
//!   checkpoints, and the authoritative content-addressed
//!   [`PersistentOracleCache`](lbr_service::PersistentOracleCache);
//! * **workers** (`lbr-workerd`) connect over TCP, pull slices of each
//!   job's speculative frontier as probe batches, evaluate them with a
//!   local oracle stack (local memo → coordinator-hosted cache tier →
//!   probe), and stream verdicts back;
//! * the GBR driver *demands* verdicts in the exact sequential probe
//!   order through a [`SharedFrontier`], so the reduced program and its
//!   trace digest are **bit-identical** to the single-host daemon at any
//!   worker count — zero workers included (unclaimed demands compute
//!   inline).
//!
//! Robustness is part of the design, not a bolt-on: a worker dying
//! mid-batch has its slice requeued (demanded probes wake the driver,
//! which takes them over), a partitioned cache tier degrades to local
//! misses via [`FaultPlan`](lbr_core::FaultPlan), and a `kill -9`'d
//! coordinator restarts from its checkpoints exactly like the
//! single-host daemon — the chaos smoke in `ci.sh` asserts byte-identical
//! output through all three.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod frontier;
pub mod server;
pub mod wire;
pub mod worker;

pub use frontier::{RemoteFrontier, SharedFrontier, LOCAL_WORKER};
pub use server::{ClusterServer, DEFAULT_BATCH};
pub use wire::CLUSTER_MAX_FRAME;
pub use worker::{run_worker, WorkerOptions};
