//! The cluster wire dialect: [`Json`] documents in `OP_CLUSTER` binary
//! frames, plus the codecs for the values both sides exchange.
//!
//! Cluster peers speak the length-prefixed binary framing of
//! [`lbr_service::frame`] exclusively — opcode [`OP_CLUSTER`], one JSON
//! document per frame, strict request/response per connection (the worker
//! always speaks first). The messages:
//!
//! | request (worker → coordinator)                    | response |
//! |---------------------------------------------------|----------|
//! | `{"op":"hello","name":…}`                          | `{"ok":true,"worker":id,"batch":n}` |
//! | `{"op":"pull","worker":id,"job":id\|null,"max":n}` | `kind:"job"` (descriptor), `kind:"batch"` (probes), or `kind:"idle"` |
//! | `{"op":"verdicts","worker":id,"job":id,…}`         | `{"ok":true,"accepted":n}` |
//! | `{"op":"cache_get","job":id,"keep":[…]}`           | `{"ok":true,"hit":bool,…}` |
//! | `{"op":"cache_put","job":id,"keep":[…],…}`         | `{"ok":true}` |
//!
//! Candidate keep-sets travel as dense variable-index arrays plus the
//! model universe; both sides rebuild the exact [`VarSet`], so cache keys
//! and frontier slots agree bit-for-bit across hosts. Job inputs (the
//! `.lbrc` container bytes) travel hex-encoded inside the job descriptor.

use lbr_core::Probe;
use lbr_logic::{Var, VarSet};
use lbr_service::{read_binary_frame, write_binary_frame, Json, OP_CLUSTER};
use std::io::{self, Read, Write};

/// Frame cap on cluster connections. Job descriptors carry whole input
/// containers, so the cap is far above the daemon's client-facing 1 MiB.
pub const CLUSTER_MAX_FRAME: usize = 64 << 20;

/// Writes one cluster document as a binary frame.
pub fn send_doc(writer: &mut dyn Write, doc: &Json) -> io::Result<()> {
    write_binary_frame(writer, OP_CLUSTER, doc)
}

/// Reads one cluster document, rejecting frames that are not
/// [`OP_CLUSTER`] or exceed [`CLUSTER_MAX_FRAME`] (before allocating).
pub fn recv_doc(reader: &mut dyn Read) -> io::Result<Json> {
    let (opcode, doc) = read_binary_frame(reader, CLUSTER_MAX_FRAME)?;
    if opcode != OP_CLUSTER {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected opcode {opcode:#04x} on cluster connection"),
        ));
    }
    Ok(doc)
}

/// Encodes a keep-set as its dense index array (universe travels beside
/// it, once per message, not per set).
pub fn keep_to_json(keep: &VarSet) -> Json {
    Json::Arr(keep.iter().map(|v| Json::count(v.index() as u64)).collect())
}

/// Rebuilds a keep-set from an index array over `universe`. Indices at or
/// beyond the universe are an error — they would silently change the set.
pub fn keep_from_json(doc: &Json, universe: usize) -> Result<VarSet, String> {
    let arr = doc.as_arr().ok_or("keep-set is not an array")?;
    let mut vars = Vec::with_capacity(arr.len());
    for item in arr {
        let index = item.as_u64().ok_or("keep-set index is not a number")? as usize;
        if index >= universe {
            return Err(format!(
                "keep-set index {index} outside universe {universe}"
            ));
        }
        vars.push(Var::new(index as u32));
    }
    Ok(VarSet::from_iter_with_universe(universe, vars))
}

/// Encodes a probe verdict into message fields.
pub fn probe_fields(probe: Probe) -> [(&'static str, Json); 2] {
    [
        ("outcome", Json::Bool(probe.outcome)),
        ("size", Json::count(probe.size)),
    ]
}

/// Decodes a probe verdict from message fields.
pub fn probe_from(doc: &Json) -> Result<Probe, String> {
    Ok(Probe {
        outcome: doc.bool_field("outcome").ok_or("missing probe outcome")?,
        size: doc.u64_field("size").ok_or("missing probe size")?,
    })
}

/// Hex-encodes container bytes for a job descriptor.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes a hex-encoded job input.
pub fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("odd-length hex input".to_owned());
    }
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&text[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_sets_round_trip() {
        let keep = VarSet::from_iter_with_universe(17, [0u32, 3, 16].map(Var::new));
        let back = keep_from_json(&keep_to_json(&keep), 17).unwrap();
        assert_eq!(back, keep);
        assert_eq!(back.fingerprint(), keep.fingerprint());
    }

    #[test]
    fn keep_set_outside_universe_is_rejected() {
        let keep = VarSet::from_iter_with_universe(8, [7u32].map(Var::new));
        let err = keep_from_json(&keep_to_json(&keep), 4).unwrap_err();
        assert!(err.contains("outside universe"), "{err}");
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn docs_round_trip_over_a_pipe() {
        let doc = Json::obj([
            ("op", Json::str("pull")),
            ("max", Json::count(8)),
            ("keep", keep_to_json(&VarSet::full(5))),
        ]);
        let mut buf = Vec::new();
        send_doc(&mut buf, &doc).unwrap();
        let back = recv_doc(&mut buf.as_slice()).unwrap();
        assert_eq!(back.str_field("op"), Some("pull"));
        assert_eq!(back.u64_field("max"), Some(8));
    }
}
