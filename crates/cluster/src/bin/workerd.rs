//! The cluster worker binary: evaluates probe batches for a coordinator.
//!
//! ```text
//! lbr-workerd (--coordinator HOST:PORT | --state-dir DIR)
//!             [--name NAME] [--batch N]
//!             [--cache-fault-rate P --cache-fault-seed S]
//! ```
//!
//! `--state-dir` reads the coordinator's `cluster.addr` (the easy path
//! when both run on one machine). The fault flags simulate a partition
//! of the coordinator-hosted cache tier: faulted operations degrade to
//! local misses, results stay exact. Reconnects with backoff if the
//! coordinator goes away.

use lbr_cluster::{run_worker, WorkerOptions};
use lbr_core::FaultPlan;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut coordinator: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut name = format!("worker-{}", std::process::id());
    let mut batch: Option<usize> = None;
    let mut fault_rate: Option<f64> = None;
    let mut fault_seed = 0u64;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--coordinator" => coordinator = Some(value()),
            "--state-dir" => state_dir = Some(value()),
            "--name" => name = value(),
            "--batch" => {
                batch = Some(value().parse().unwrap_or_else(|_| {
                    eprintln!("--batch takes a number");
                    std::process::exit(2);
                }))
            }
            "--cache-fault-rate" => {
                fault_rate = Some(value().parse().unwrap_or_else(|_| {
                    eprintln!("--cache-fault-rate takes a probability");
                    std::process::exit(2);
                }))
            }
            "--cache-fault-seed" => {
                fault_seed = value().parse().unwrap_or_else(|_| {
                    eprintln!("--cache-fault-seed takes a number");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "usage: lbr-workerd (--coordinator HOST:PORT | --state-dir DIR)\n\
                     \x20                  [--name NAME] [--batch N]\n\
                     \x20                  [--cache-fault-rate P --cache-fault-seed S]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let coordinator = match (coordinator, state_dir) {
        (Some(addr), _) => addr,
        (None, Some(dir)) => {
            let path = std::path::Path::new(&dir).join("cluster.addr");
            match std::fs::read_to_string(&path) {
                Ok(text) => text.trim().to_owned(),
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        (None, None) => {
            eprintln!("--coordinator or --state-dir is required (try --help)");
            std::process::exit(2);
        }
    };
    let mut options = WorkerOptions::new(coordinator, name);
    options.batch = batch;
    options.reconnect = true;
    if let Some(rate) = fault_rate {
        options.cache_faults = Some(FaultPlan {
            rate,
            seed: fault_seed,
        });
    }
    if let Err(e) = run_worker(&options) {
        eprintln!("worker error: {e}");
        std::process::exit(1);
    }
}
