//! The cluster coordinator binary: the reduction daemon with a
//! worker-facing cluster server attached.
//!
//! ```text
//! lbr-coordinatord --state-dir state/ [--workers N] [--batch N]
//!                  [--queue-capacity N] [--checkpoint-interval-ms N]
//! ```
//!
//! Prints the client-facing daemon address on stdout (persisted in
//! `state/daemon.addr`); workers find the cluster listener via
//! `state/cluster.addr`. Kill it however you like — jobs checkpoint and
//! a restart resumes them, warm cache and all, exactly like the plain
//! daemon.

use lbr_cluster::{ClusterServer, DEFAULT_BATCH};
use lbr_service::{Daemon, DaemonConfig, PersistentOracleCache};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut state_dir: Option<String> = None;
    let mut workers = 2usize;
    let mut batch = DEFAULT_BATCH;
    let mut queue_capacity = 64usize;
    let mut checkpoint_interval_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        let parse = |flag: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} takes a number");
                std::process::exit(2);
            })
        };
        match flag {
            "--state-dir" => state_dir = Some(value()),
            "--workers" => workers = parse(flag, value()) as usize,
            "--batch" => batch = parse(flag, value()) as usize,
            "--queue-capacity" => queue_capacity = parse(flag, value()) as usize,
            "--checkpoint-interval-ms" => checkpoint_interval_ms = Some(parse(flag, value())),
            "--help" | "-h" => {
                println!(
                    "usage: lbr-coordinatord --state-dir DIR [--workers N] [--batch N]\n\
                     \x20                       [--queue-capacity N] [--checkpoint-interval-ms N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(state_dir) = state_dir else {
        eprintln!("--state-dir is required (try --help)");
        std::process::exit(2);
    };
    if let Err(e) = std::fs::create_dir_all(&state_dir) {
        eprintln!("cannot create {state_dir}: {e}");
        std::process::exit(1);
    }
    let cache =
        match PersistentOracleCache::open(std::path::Path::new(&state_dir).join("oracle.cache")) {
            Ok(cache) => Arc::new(cache),
            Err(e) => {
                eprintln!("cannot open oracle cache: {e}");
                std::process::exit(1);
            }
        };
    let cluster = match ClusterServer::start(
        std::path::Path::new(&state_dir),
        Arc::clone(&cache),
        batch.max(1),
    ) {
        Ok(cluster) => cluster,
        Err(e) => {
            eprintln!("cannot start cluster server: {e}");
            std::process::exit(1);
        }
    };
    let mut config = DaemonConfig::new(&state_dir, workers);
    config.queue_capacity = queue_capacity.max(1);
    if let Some(ms) = checkpoint_interval_ms {
        config.checkpoint_interval = Duration::from_millis(ms);
    }
    let daemon = match Daemon::start_clustered(config, cache, Arc::clone(&cluster) as _) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", daemon.local_addr());
    eprintln!("cluster listener: {}", cluster.local_addr());
    let result = daemon.run();
    cluster.shutdown();
    if let Err(e) = result {
        eprintln!("daemon error: {e}");
        std::process::exit(1);
    }
}
