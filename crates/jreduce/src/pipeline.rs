//! End-to-end reduction drivers: one entry point per evaluated strategy.
//!
//! The paper evaluates four reduction strategies; [`Strategy`] mirrors
//! them:
//!
//! * [`Strategy::Logical`] — the paper's tool: the full logical model plus
//!   Generalized Binary Reduction,
//! * [`Strategy::JReduce`] — the baseline: the class-mention graph plus
//!   Binary Reduction over closures,
//! * [`Strategy::Lossy`] — the logical model lossily encoded into graph
//!   constraints (two variants), reduced with Binary Reduction,
//! * [`Strategy::DdminItems`] — ddmin at item granularity with a validity
//!   filter (the ablation showing why plain ddmin disappoints).

use crate::classgraph::ClassGraph;
use crate::model::{build_model, LogicalModel, ModelError, ModelStats};
use crate::reducer::reduce_program;
use lbr_classfile::{program_byte_size, Program};
use crate::item::ItemRegistry;
use lbr_core::{
    binary_reduction, closure_size_order, ddmin, generalized_binary_reduction,
    generalized_binary_reduction_controlled,
    generalized_binary_reduction_speculative_controlled, lossy_graph, BinaryReductionError,
    ConcurrentPredicate, DepGraph, GbrCheckpoint, GbrConfig, GbrControl, GbrError, Instance,
    LossyPick, Oracle, Probe, ProbeCache, ProbeStats, PropagationMode, ReductionTrace,
    ShardedMemo, SpeculationConfig, TestOutcome,
};
use lbr_decompiler::DecompilerOracle;
use lbr_logic::{MsaStrategy, VarSet};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

/// A reduction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's reducer: logical model + GBR with the given MSA
    /// strategy and the closure-size variable order.
    Logical(MsaStrategy),
    /// The order ablation: GBR with the *natural* (declaration) variable
    /// order instead of the closure-size heuristic Theorem 4.5 wants.
    LogicalNaturalOrder,
    /// GBR followed by the local-minimization postpass
    /// ([`lbr_core::minimize_solution`]): extra tool runs for a possibly
    /// smaller output.
    LogicalMinimized,
    /// The J-Reduce baseline: class graph + Binary Reduction.
    JReduce,
    /// A lossy encoding of the logical model + Binary Reduction.
    Lossy(LossyPick),
    /// ddmin over items with a validity filter.
    DdminItems,
}

impl Strategy {
    /// A stable name for reports.
    pub fn name(&self) -> String {
        match self {
            Strategy::Logical(m) => format!("logical/{}", m.name()),
            Strategy::LogicalNaturalOrder => "logical/natural-order".to_owned(),
            Strategy::LogicalMinimized => "logical/minimized".to_owned(),
            Strategy::JReduce => "jreduce".to_owned(),
            Strategy::Lossy(p) => p.name().to_owned(),
            Strategy::DdminItems => "ddmin-items".to_owned(),
        }
    }
}

/// Performance knobs for a reduction run. They change how fast a run is,
/// never what it computes: results, predicate-call counts, and traces are
/// identical across all settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// How GBR propagates the dependency model (incremental watched-literal
    /// engine vs the scan-based baseline).
    pub propagation: PropagationMode,
    /// Whether the oracle memoizes probe outcomes by candidate subset, so
    /// repeated probes never re-run the tool.
    pub memoize: bool,
    /// Intra-run probe parallelism. `1` (the default) probes sequentially.
    /// With `n > 1`, GBR-based strategies ([`Strategy::Logical`] and
    /// [`Strategy::LogicalNaturalOrder`]) speculate on the binary search's
    /// pending probe with `n`-way parallel tool runs, and the per-error
    /// sweep runs up to `n` error searches concurrently — both with
    /// bit-identical results and identical logical call counts. The other
    /// strategies ignore the knob (Binary Reduction's closure sweep and
    /// ddmin consume each probe result before choosing the next candidate,
    /// so there is no pending-probe tree to speculate on).
    pub probe_threads: usize,
    /// Emulated latency of one tool invocation, in microseconds (default
    /// `0`: no emulation). The paper's probes are ≈33 s subprocess
    /// invocations (decompile + recompile) whose cost is dominated by
    /// process launch and I/O, not CPU — the regime speculative probing
    /// targets. The in-process model probes of this reproduction finish in
    /// microseconds of pure CPU instead, so on a single core speculation
    /// can only add overhead. A nonzero latency sleeps that long inside
    /// every probe that actually runs the tool (memoized repeats stay
    /// free), restoring the latency-bound regime for wall-clock
    /// measurements. Results, call counts, traces and modeled times are
    /// unaffected.
    pub probe_latency_micros: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            propagation: PropagationMode::default(),
            memoize: true,
            probe_threads: 1,
            probe_latency_micros: 0,
        }
    }
}

impl RunOptions {
    /// The pre-engine configuration: scan-based propagation, no memo. Used
    /// as the measurable baseline for the performance comparison.
    pub fn legacy() -> Self {
        RunOptions {
            propagation: PropagationMode::LegacyScan,
            memoize: false,
            probe_threads: 1,
            probe_latency_micros: 0,
        }
    }
}

/// Size metrics of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeMetrics {
    /// Number of classes (including interfaces).
    pub classes: usize,
    /// Serialized size in bytes.
    pub bytes: usize,
}

impl SizeMetrics {
    /// Measures a program.
    pub fn of(program: &Program) -> Self {
        SizeMetrics {
            classes: program.len(),
            bytes: program_byte_size(program),
        }
    }
}

/// The outcome of one reduction run.
#[derive(Debug, Clone)]
pub struct ReductionReport {
    /// Strategy name.
    pub strategy: String,
    /// Input sizes.
    pub initial: SizeMetrics,
    /// Output sizes.
    pub final_metrics: SizeMetrics,
    /// Number of black-box predicate invocations.
    pub predicate_calls: u64,
    /// Probes answered from the oracle's memo without re-running the tool
    /// (0 when memoization is off or the strategy bypasses the oracle).
    pub cache_hits: u64,
    /// Probes that actually ran the tool while memoization was on.
    pub cache_misses: u64,
    /// Probe accounting under speculation: `useful_calls` always equals
    /// [`predicate_calls`](Self::predicate_calls); `speculative_calls` and
    /// `critical_path_calls` are zero / equal to the fresh-tool-run count
    /// for sequential runs and reflect wasted vs blocking probes when
    /// `probe_threads > 1`.
    pub probe_stats: ProbeStats,
    /// Wall-clock seconds of the whole run.
    pub wall_secs: f64,
    /// Modeled tool time (`calls × cost_per_call`).
    pub modeled_secs: f64,
    /// The reduction-over-time trace (sizes in bytes).
    pub trace: ReductionTrace,
    /// Model statistics, when a logical model was built.
    pub model_stats: Option<ModelStats>,
    /// The reduced program.
    pub reduced: Program,
    /// Whether the reduced program still produces the full error message.
    pub errors_preserved: bool,
    /// Whether the reduced program still verifies.
    pub still_valid: bool,
}

impl ReductionReport {
    /// Final size relative to the input, in bytes (the paper's headline
    /// 4.6% vs 24.3%).
    pub fn relative_bytes(&self) -> f64 {
        self.final_metrics.bytes as f64 / self.initial.bytes.max(1) as f64
    }

    /// Final size relative to the input, in classes.
    pub fn relative_classes(&self) -> f64 {
        self.final_metrics.classes as f64 / self.initial.classes.max(1) as f64
    }
}

/// Why a pipeline run failed.
#[derive(Debug)]
pub enum PipelineError {
    /// The input does not trigger the decompiler's bugs.
    NotFailing,
    /// The input does not verify, so no model can be built.
    Model(ModelError),
    /// GBR failed (see [`GbrError`]).
    Gbr(GbrError),
    /// Binary Reduction failed.
    Binary(BinaryReductionError),
    /// The lossy encoding was contradictory (forbidden required items).
    LossyContradiction,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::NotFailing => write!(f, "input does not trigger the tool's bugs"),
            PipelineError::Model(e) => write!(f, "{e}"),
            PipelineError::Gbr(e) => write!(f, "gbr: {e}"),
            PipelineError::Binary(e) => write!(f, "binary reduction: {e}"),
            PipelineError::LossyContradiction => write!(f, "lossy encoding is contradictory"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ModelError> for PipelineError {
    fn from(e: ModelError) -> Self {
        PipelineError::Model(e)
    }
}

impl From<GbrError> for PipelineError {
    fn from(e: GbrError) -> Self {
        PipelineError::Gbr(e)
    }
}

impl From<BinaryReductionError> for PipelineError {
    fn from(e: BinaryReductionError) -> Self {
        PipelineError::Binary(e)
    }
}

/// Runs one strategy on one benchmark.
///
/// `cost_per_call_secs` models the cost of one decompile+compile tool
/// invocation (the paper measured ≈33 s); it drives the modeled-time axis
/// of the Figure 8 reproductions.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn run_reduction(
    program: &Program,
    oracle: &DecompilerOracle,
    strategy: Strategy,
    cost_per_call_secs: f64,
) -> Result<ReductionReport, PipelineError> {
    run_reduction_with(
        program,
        oracle,
        strategy,
        cost_per_call_secs,
        &RunOptions::default(),
    )
}

/// Like [`run_reduction`], with explicit performance [`RunOptions`]
/// (propagation mode and oracle memoization). Results are identical across
/// all option settings; only the wall-clock time differs.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn run_reduction_with(
    program: &Program,
    oracle: &DecompilerOracle,
    strategy: Strategy,
    cost_per_call_secs: f64,
    options: &RunOptions,
) -> Result<ReductionReport, PipelineError> {
    if !oracle.is_failing() {
        return Err(PipelineError::NotFailing);
    }
    let start = Instant::now();
    let initial = SizeMetrics::of(program);
    let parts = match strategy {
        Strategy::Logical(msa) => run_logical(
            program,
            oracle,
            msa,
            OrderKind::ClosureSize,
            cost_per_call_secs,
            options,
        )?,
        Strategy::LogicalNaturalOrder => run_logical(
            program,
            oracle,
            MsaStrategy::GreedyClosure,
            OrderKind::Natural,
            cost_per_call_secs,
            options,
        )?,
        Strategy::LogicalMinimized => {
            run_logical_minimized(program, oracle, cost_per_call_secs, options)?
        }
        Strategy::JReduce => run_jreduce(program, oracle, cost_per_call_secs, options)?,
        Strategy::Lossy(pick) => run_lossy(program, oracle, pick, cost_per_call_secs, options)?,
        Strategy::DdminItems => run_ddmin(program, oracle, cost_per_call_secs, options)?,
    };
    let RunParts {
        reduced,
        calls,
        trace,
        model_stats,
        cache_hits,
        cache_misses,
        probe_stats,
    } = parts;
    let errors_preserved = oracle.preserves_failure(&reduced);
    let still_valid = lbr_classfile::verify_program(&reduced).is_empty();
    Ok(ReductionReport {
        strategy: strategy.name(),
        initial,
        final_metrics: SizeMetrics::of(&reduced),
        predicate_calls: calls,
        cache_hits,
        cache_misses,
        probe_stats,
        wall_secs: start.elapsed().as_secs_f64(),
        modeled_secs: calls as f64 * cost_per_call_secs,
        trace,
        model_stats,
        reduced,
        errors_preserved,
        still_valid,
    })
}

struct RunParts {
    reduced: Program,
    calls: u64,
    trace: ReductionTrace,
    model_stats: Option<ModelStats>,
    cache_hits: u64,
    cache_misses: u64,
    probe_stats: ProbeStats,
}

/// Probe accounting for a run without speculation: every probe is useful,
/// nothing is speculative, and the critical path is every probe that had
/// to run the tool (all of them without a memo, the misses with one).
fn sequential_probe_stats(calls: u64, cache_hits: u64, cache_misses: u64) -> ProbeStats {
    ProbeStats {
        useful_calls: calls,
        speculative_calls: 0,
        critical_path_calls: if cache_hits + cache_misses == calls {
            cache_misses
        } else {
            calls
        },
        memo_hits: cache_hits,
        memo_misses: cache_misses,
    }
}

/// Sleeps for the emulated tool-invocation latency (no-op at 0). Called
/// exactly where the wrapped tool actually runs, so memoized probes are
/// never charged.
fn emulate_tool_latency(micros: u64) {
    if micros > 0 {
        std::thread::sleep(std::time::Duration::from_micros(micros));
    }
}

/// The thread-safe probe path for speculative GBR: builds the candidate
/// program, tests it against the oracle and measures its bytes, all from
/// borrowed shared state — pure per probe, so many workers can probe one
/// instance concurrently.
struct CandidateProbe<'a> {
    program: &'a Program,
    registry: &'a ItemRegistry,
    oracle: &'a DecompilerOracle,
    latency_micros: u64,
    /// An external probe cache (e.g. the service daemon's persistent,
    /// cross-job one). A hit replaces only the tool invocation, beneath
    /// every per-run counter, so results and accounting are identical
    /// whether it is cold, warm, or absent.
    external_cache: Option<&'a dyn ProbeCache>,
}

impl ConcurrentPredicate for CandidateProbe<'_> {
    fn probe(&self, keep: &VarSet) -> Probe {
        if let Some(cache) = self.external_cache {
            if let Some(probe) = cache.lookup(keep) {
                return probe;
            }
        }
        let candidate = reduce_program(self.program, self.registry, keep);
        emulate_tool_latency(self.latency_micros);
        let probe = Probe {
            outcome: self.oracle.preserves_failure(&candidate),
            size: program_byte_size(&candidate) as u64,
        };
        if let Some(cache) = self.external_cache {
            cache.store(keep, probe);
        }
        probe
    }
}

/// Which variable order GBR uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OrderKind {
    ClosureSize,
    Natural,
}

/// Builds the standard oracle wrapper (size metric + optional memo) around
/// a keep-set predicate.
fn wrap_oracle<'p>(
    predicate: &'p mut dyn lbr_core::Predicate,
    cost: f64,
    size_of: impl Fn(&VarSet) -> u64 + 'p,
    options: &RunOptions,
) -> Oracle<'p> {
    let wrapped = Oracle::new(predicate, cost).with_size_metric(size_of);
    if options.memoize {
        wrapped.with_memo()
    } else {
        wrapped
    }
}

fn run_logical(
    program: &Program,
    oracle: &DecompilerOracle,
    msa: MsaStrategy,
    order_kind: OrderKind,
    cost: f64,
    options: &RunOptions,
) -> Result<RunParts, PipelineError> {
    run_logical_hooked(
        program,
        oracle,
        msa,
        order_kind,
        cost,
        options,
        ServiceHooks::default(),
    )
}

/// Long-running-service hooks for a logical reduction run: an external
/// probe cache, cooperative cancellation, and checkpoint/resume. The
/// default value is inert, making [`run_logical_resumable`] equivalent to
/// [`run_reduction_with`] on [`Strategy::Logical`].
///
/// All four hooks preserve the pipeline's determinism contract:
///
/// * `cache` sits beneath every per-run counter — a hit replaces only the
///   tool invocation, so verdicts, sizes, call counts, and traces are
///   bit-identical whether it is cold, warm, or absent.
/// * `cancel`/`checkpoint`/`resume` snapshot and restore the GBR loop
///   between probes; a resumed run converges to the same solution as an
///   uninterrupted one (its *trace* covers only the probes demanded after
///   the resume point — replays of the interrupted iteration's tail,
///   which a warm cache answers without tool runs).
#[derive(Default)]
pub struct ServiceHooks<'h> {
    /// Probe cache shared across runs of the *same* program + oracle
    /// (callers must namespace keys; the keep-set alone is not unique).
    pub cache: Option<&'h dyn ProbeCache>,
    /// Polled between probes; `true` aborts with
    /// [`PipelineError::Gbr`]([`GbrError::Cancelled`]).
    pub cancel: Option<&'h (dyn Fn() -> bool + Sync)>,
    /// Invoked with a resumable snapshot after every GBR iteration.
    pub checkpoint: Option<&'h mut dyn FnMut(&GbrCheckpoint)>,
    /// Continue a previous run from its last checkpoint.
    pub resume: Option<GbrCheckpoint>,
}

impl std::fmt::Debug for ServiceHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHooks")
            .field("cache", &self.cache.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("checkpoint", &self.checkpoint.is_some())
            .field("resume", &self.resume)
            .finish()
    }
}

/// [`Strategy::Logical`] with [`ServiceHooks`]: the entry point the
/// reduction daemon drives. Equivalent to [`run_reduction_with`] when the
/// hooks are default; see [`ServiceHooks`] for the exact determinism and
/// resume semantics.
///
/// # Errors
///
/// See [`PipelineError`]; a fired cancellation hook surfaces as
/// [`PipelineError::Gbr`]([`GbrError::Cancelled`]).
pub fn run_logical_resumable(
    program: &Program,
    oracle: &DecompilerOracle,
    msa: MsaStrategy,
    cost_per_call_secs: f64,
    options: &RunOptions,
    hooks: ServiceHooks<'_>,
) -> Result<ReductionReport, PipelineError> {
    if !oracle.is_failing() {
        return Err(PipelineError::NotFailing);
    }
    let start = Instant::now();
    let initial = SizeMetrics::of(program);
    let parts = run_logical_hooked(
        program,
        oracle,
        msa,
        OrderKind::ClosureSize,
        cost_per_call_secs,
        options,
        hooks,
    )?;
    let RunParts {
        reduced,
        calls,
        trace,
        model_stats,
        cache_hits,
        cache_misses,
        probe_stats,
    } = parts;
    let errors_preserved = oracle.preserves_failure(&reduced);
    let still_valid = lbr_classfile::verify_program(&reduced).is_empty();
    Ok(ReductionReport {
        strategy: Strategy::Logical(msa).name(),
        initial,
        final_metrics: SizeMetrics::of(&reduced),
        predicate_calls: calls,
        cache_hits,
        cache_misses,
        probe_stats,
        wall_secs: start.elapsed().as_secs_f64(),
        modeled_secs: calls as f64 * cost_per_call_secs,
        trace,
        model_stats,
        reduced,
        errors_preserved,
        still_valid,
    })
}

fn run_logical_hooked(
    program: &Program,
    oracle: &DecompilerOracle,
    msa: MsaStrategy,
    order_kind: OrderKind,
    cost: f64,
    options: &RunOptions,
    mut hooks: ServiceHooks<'_>,
) -> Result<RunParts, PipelineError> {
    let model: LogicalModel = build_model(program)?;
    let stats = model.stats();
    let order = match order_kind {
        OrderKind::ClosureSize => closure_size_order(&model.cnf),
        OrderKind::Natural => lbr_core::natural_order(&model.cnf),
    };
    let instance = Instance::over_all_vars(model.cnf.clone());
    let registry = &model.registry;
    let config = GbrConfig {
        msa_strategy: msa,
        propagation: options.propagation,
        ..GbrConfig::default()
    };
    let mut control = GbrControl {
        cancel: hooks.cancel,
        checkpoint: hooks.checkpoint.take(),
        resume: hooks.resume.take(),
    };
    if options.probe_threads > 1 {
        // Speculative parallel probing: the scheduler's concurrent memo
        // subsumes the oracle memo (distinct demanded subsets run the tool
        // once either way), so the same deterministic hit/miss counts come
        // back in the stats.
        let probe = CandidateProbe {
            program,
            registry,
            oracle,
            latency_micros: options.probe_latency_micros,
            external_cache: hooks.cache,
        };
        let spec = SpeculationConfig {
            threads: options.probe_threads,
            width: 0,
            cost_per_call_secs: cost,
        };
        let run = generalized_binary_reduction_speculative_controlled(
            &instance,
            &order,
            &probe,
            &config,
            &spec,
            &mut control,
        )?;
        let reduced = reduce_program(program, registry, &run.outcome.solution);
        return Ok(RunParts {
            reduced,
            calls: run.stats.useful_calls,
            trace: run.trace,
            model_stats: Some(stats),
            cache_hits: run.stats.memo_hits,
            cache_misses: run.stats.memo_misses,
            probe_stats: run.stats,
        });
    }
    let last_bytes = Cell::new(0u64);
    let external = hooks.cache;
    let mut predicate = |keep: &VarSet| {
        // The external cache replaces the *tool run* only: latency is not
        // emulated on a hit (that is the point of a persistent cache), and
        // the per-run accounting above this closure never sees it.
        if let Some(probe) = external.and_then(|c| c.lookup(keep)) {
            last_bytes.set(probe.size);
            return probe.outcome;
        }
        let candidate = reduce_program(program, registry, keep);
        emulate_tool_latency(options.probe_latency_micros);
        let outcome = oracle.preserves_failure(&candidate);
        let size = program_byte_size(&candidate) as u64;
        last_bytes.set(size);
        if let Some(cache) = external {
            cache.store(keep, Probe { outcome, size });
        }
        outcome
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let outcome =
        generalized_binary_reduction_controlled(&instance, &order, &mut wrapped, &config, &mut control)?;
    let calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    let trace = wrapped.into_trace();
    let reduced = reduce_program(program, registry, &outcome.solution);
    Ok(RunParts {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        cache_hits,
        cache_misses,
        probe_stats: sequential_probe_stats(calls, cache_hits, cache_misses),
    })
}

fn run_logical_minimized(
    program: &Program,
    oracle: &DecompilerOracle,
    cost: f64,
    options: &RunOptions,
) -> Result<RunParts, PipelineError> {
    let model: LogicalModel = build_model(program)?;
    let stats = model.stats();
    let order = closure_size_order(&model.cnf);
    let instance = Instance::over_all_vars(model.cnf.clone());
    let registry = &model.registry;
    let last_bytes = Cell::new(0u64);
    let mut predicate = |keep: &VarSet| {
        let candidate = reduce_program(program, registry, keep);
        last_bytes.set(program_byte_size(&candidate) as u64);
        emulate_tool_latency(options.probe_latency_micros);
        oracle.preserves_failure(&candidate)
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let config = GbrConfig {
        propagation: options.propagation,
        ..GbrConfig::default()
    };
    let outcome = generalized_binary_reduction(&instance, &order, &mut wrapped, &config)?;
    let (minimized, _stats) =
        lbr_core::minimize_solution(&instance, &order, &mut wrapped, &outcome.solution);
    let calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    let trace = wrapped.into_trace();
    let reduced = reduce_program(program, registry, &minimized);
    Ok(RunParts {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        cache_hits,
        cache_misses,
        probe_stats: sequential_probe_stats(calls, cache_hits, cache_misses),
    })
}

fn run_jreduce(
    program: &Program,
    oracle: &DecompilerOracle,
    cost: f64,
    options: &RunOptions,
) -> Result<RunParts, PipelineError> {
    let cg = ClassGraph::new(program);
    let last_bytes = Cell::new(0u64);
    let mut predicate = |keep: &VarSet| {
        let candidate = cg.subset_program(program, keep);
        last_bytes.set(program_byte_size(&candidate) as u64);
        emulate_tool_latency(options.probe_latency_micros);
        oracle.preserves_failure(&candidate)
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let outcome = binary_reduction(&cg.graph, &mut wrapped)?;
    let calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    let trace = wrapped.into_trace();
    let reduced = cg.subset_program(program, &outcome.solution);
    Ok(RunParts {
        reduced,
        calls,
        trace,
        model_stats: None,
        cache_hits,
        cache_misses,
        probe_stats: sequential_probe_stats(calls, cache_hits, cache_misses),
    })
}

fn run_lossy(
    program: &Program,
    oracle: &DecompilerOracle,
    pick: LossyPick,
    cost: f64,
    options: &RunOptions,
) -> Result<RunParts, PipelineError> {
    let model = build_model(program)?;
    let stats = model.stats();
    let order = closure_size_order(&model.cnf);
    let lg = lossy_graph(&model.cnf, &order, pick).ok_or(PipelineError::LossyContradiction)?;
    if !lg.forbidden.is_empty() {
        // Our models generate no purely negative clauses, so a non-empty
        // forbidden set indicates a contradictory encoding.
        return Err(PipelineError::LossyContradiction);
    }
    let graph: DepGraph = lg.graph;
    let registry = &model.registry;
    let last_bytes = Cell::new(0u64);
    let mut predicate = |keep: &VarSet| {
        let candidate = reduce_program(program, registry, keep);
        last_bytes.set(program_byte_size(&candidate) as u64);
        emulate_tool_latency(options.probe_latency_micros);
        oracle.preserves_failure(&candidate)
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let outcome = binary_reduction(&graph, &mut wrapped)?;
    let calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    let trace = wrapped.into_trace();
    let reduced = reduce_program(program, registry, &outcome.solution);
    Ok(RunParts {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        cache_hits,
        cache_misses,
        probe_stats: sequential_probe_stats(calls, cache_hits, cache_misses),
    })
}

fn run_ddmin(
    program: &Program,
    oracle: &DecompilerOracle,
    cost: f64,
    options: &RunOptions,
) -> Result<RunParts, PipelineError> {
    let model = build_model(program)?;
    let stats = model.stats();
    let registry = &model.registry;
    let n = registry.len();
    let atoms: Vec<VarSet> = (0..n as u32)
        .map(|i| VarSet::from_iter_with_universe(n, [lbr_logic::Var::new(i)]))
        .collect();
    let cnf = &model.cnf;
    let mut trace = ReductionTrace::new();
    let mut calls = 0u64;
    let start = Instant::now();
    let (solution, _stats) = ddmin(&atoms, n, |keep| {
        if !cnf.eval(keep) {
            return TestOutcome::Unresolved; // invalid — "don't know"
        }
        calls += 1;
        let candidate = reduce_program(program, registry, keep);
        emulate_tool_latency(options.probe_latency_micros);
        let ok = oracle.preserves_failure(&candidate);
        trace.record(
            calls,
            start.elapsed().as_secs_f64(),
            calls as f64 * cost,
            program_byte_size(&candidate) as u64,
            ok,
        );
        if ok {
            TestOutcome::Fail
        } else {
            TestOutcome::Pass
        }
    });
    let reduced = reduce_program(program, registry, &solution);
    Ok(RunParts {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        cache_hits: 0,
        cache_misses: 0,
        probe_stats: sequential_probe_stats(calls, 0, 0),
    })
}

/// The result of a per-error reduction sweep.
#[derive(Debug, Clone)]
pub struct PerErrorReport {
    /// One `(error message, reduced size)` row per distinct baseline
    /// error, in message order.
    pub errors: Vec<(String, SizeMetrics)>,
    /// The traces of all searches, concatenated sequentially (the way the
    /// paper's long-running cases accumulate "951 decompilations …").
    pub combined_trace: ReductionTrace,
    /// Total predicate invocations across all searches.
    pub total_calls: u64,
    /// Probes answered by the shared error cache without re-running the
    /// tool. The searches all start from the same instance, so every
    /// search after the first begins with guaranteed hits.
    pub cache_hits: u64,
    /// Probes that actually decompiled a candidate.
    pub cache_misses: u64,
}

impl PerErrorReport {
    /// Fraction of probes served from the cache (`0.0` when disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Reduces once *per distinct baseline error* — the paper's observation
/// that "some cases have many distinct bugs; each bug requires GBR to do
/// an individual search". Each search preserves exactly one error message
/// and produces its own (usually much smaller) witness.
///
/// All searches run against the same instance and differ only in which
/// error they look for, so the expensive part of every probe — building
/// the candidate program and collecting its error set — is shared through
/// one cache keyed by keep-set. The first search pays for its probes; the
/// later searches re-probe many of the same subsets (every search starts
/// from the same `D₀`) and get them for free.
///
/// # Errors
///
/// See [`PipelineError`]; an individual search that fails is skipped.
pub fn run_per_error(
    program: &Program,
    oracle: &DecompilerOracle,
    cost_per_call_secs: f64,
) -> Result<PerErrorReport, PipelineError> {
    run_per_error_with(program, oracle, cost_per_call_secs, &RunOptions::default())
}

/// Like [`run_per_error`], with explicit performance [`RunOptions`].
///
/// With `probe_threads > 1` the individual searches — which are
/// embarrassingly parallel — run concurrently on scoped worker threads,
/// sharing one concurrent probe cache. Output is deterministic: rows,
/// traces, call counts, and cache totals are identical to the sequential
/// sweep (the cache computes each distinct subset exactly once under any
/// interleaving), and rows stay in baseline error order.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn run_per_error_with(
    program: &Program,
    oracle: &DecompilerOracle,
    cost_per_call_secs: f64,
    options: &RunOptions,
) -> Result<PerErrorReport, PipelineError> {
    if !oracle.is_failing() {
        return Err(PipelineError::NotFailing);
    }
    let model = build_model(program)?;
    let order = closure_size_order(&model.cnf);
    let instance = Instance::over_all_vars(model.cnf.clone());
    let registry = &model.registry;
    if options.probe_threads > 1 {
        return run_per_error_parallel(
            program,
            oracle,
            cost_per_call_secs,
            options,
            &order,
            &instance,
            registry,
        );
    }
    // Shared across searches: keep-set → (error messages, candidate bytes).
    type ErrorCache = HashMap<VarSet, (std::collections::BTreeSet<String>, u64)>;
    let cache: RefCell<ErrorCache> = RefCell::new(HashMap::new());
    let hits = Cell::new(0u64);
    let misses = Cell::new(0u64);
    let probe = |keep: &VarSet| -> (u64, std::collections::BTreeSet<String>) {
        if options.memoize {
            if let Some((errors, bytes)) = cache.borrow().get(keep) {
                hits.set(hits.get() + 1);
                return (*bytes, errors.clone());
            }
        }
        let candidate = reduce_program(program, registry, keep);
        emulate_tool_latency(options.probe_latency_micros);
        let errors = oracle.errors(&candidate);
        let bytes = program_byte_size(&candidate) as u64;
        if options.memoize {
            misses.set(misses.get() + 1);
            cache
                .borrow_mut()
                .insert(keep.clone(), (errors.clone(), bytes));
        }
        (bytes, errors)
    };
    let mut rows = Vec::new();
    let mut combined_trace = ReductionTrace::new();
    let mut total_calls = 0u64;
    for error in oracle.baseline().clone() {
        // The probe computes outcome and size together; the size metric
        // reads the bytes of the probe that just ran instead of probing
        // again (the oracle measures right after testing).
        let last_bytes = Cell::new(0u64);
        let mut predicate = |keep: &VarSet| {
            let (bytes, errors) = probe(keep);
            last_bytes.set(bytes);
            errors.contains(&error)
        };
        let mut wrapped = Oracle::new(&mut predicate, cost_per_call_secs)
            .with_size_metric(|_| last_bytes.get());
        let config = GbrConfig {
            propagation: options.propagation,
            ..GbrConfig::default()
        };
        let outcome = generalized_binary_reduction(&instance, &order, &mut wrapped, &config)?;
        total_calls += wrapped.calls();
        combined_trace.append_sequential(wrapped.trace());
        let reduced = reduce_program(program, registry, &outcome.solution);
        drop(wrapped);
        rows.push((error.clone(), SizeMetrics::of(&reduced)));
    }
    Ok(PerErrorReport {
        errors: rows,
        combined_trace,
        total_calls,
        cache_hits: hits.get(),
        cache_misses: misses.get(),
    })
}

/// The parallel half of [`run_per_error_with`]: each baseline error's GBR
/// search is independent, so workers claim error indices atomically and
/// write results into per-error slots; the report is assembled in baseline
/// order afterwards, making the output identical to the sequential sweep.
#[allow(clippy::too_many_arguments)]
fn run_per_error_parallel(
    program: &Program,
    oracle: &DecompilerOracle,
    cost_per_call_secs: f64,
    options: &RunOptions,
    order: &lbr_logic::VarOrder,
    instance: &Instance,
    registry: &ItemRegistry,
) -> Result<PerErrorReport, PipelineError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let errors: Vec<String> = oracle.baseline().iter().cloned().collect();
    // Shared across all searches: keep-set → (error messages, bytes). The
    // run-once claim discipline makes the hit/miss totals deterministic
    // (misses = distinct subsets probed) and equal to the sequential
    // sweep's, where later searches hit what earlier ones cached.
    let shared: Option<ShardedMemo<(BTreeSet<String>, u64)>> = options
        .memoize
        .then(|| ShardedMemo::new(4 * options.probe_threads));
    type Slot = Result<((String, SizeMetrics), ReductionTrace, u64), PipelineError>;
    let slots: Vec<Mutex<Option<Slot>>> = errors.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = options.probe_threads.min(errors.len()).max(1);
    let config = GbrConfig {
        propagation: options.propagation,
        ..GbrConfig::default()
    };
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(error) = errors.get(i) else {
                    break;
                };
                let run_probe = |keep: &VarSet| {
                    let candidate = reduce_program(program, registry, keep);
                    emulate_tool_latency(options.probe_latency_micros);
                    (oracle.errors(&candidate), program_byte_size(&candidate) as u64)
                };
                let last_bytes = Cell::new(0u64);
                let mut predicate = |keep: &VarSet| {
                    let (errs, bytes) = match &shared {
                        Some(memo) => memo.get_or_compute(keep, || run_probe(keep)),
                        None => run_probe(keep),
                    };
                    last_bytes.set(bytes);
                    errs.contains(error)
                };
                let mut wrapped = Oracle::new(&mut predicate, cost_per_call_secs)
                    .with_size_metric(|_| last_bytes.get());
                let outcome =
                    generalized_binary_reduction(instance, order, &mut wrapped, &config);
                let slot: Slot = outcome.map_err(PipelineError::from).map(|out| {
                    let reduced = reduce_program(program, registry, &out.solution);
                    (
                        (error.clone(), SizeMetrics::of(&reduced)),
                        wrapped.trace().clone(),
                        wrapped.calls(),
                    )
                });
                *slots[i].lock().expect("per-error slot") = Some(slot);
            });
        }
    });
    let mut rows = Vec::new();
    let mut combined_trace = ReductionTrace::new();
    let mut total_calls = 0u64;
    for slot in slots {
        let (row, trace, calls) = slot
            .into_inner()
            .expect("per-error slot")
            .expect("worker wrote slot")?;
        rows.push(row);
        combined_trace.append_sequential(&trace);
        total_calls += calls;
    }
    Ok(PerErrorReport {
        errors: rows,
        combined_trace,
        total_calls,
        cache_hits: shared.as_ref().map_or(0, |m| m.hits()),
        cache_misses: shared.as_ref().map_or(0, |m| m.misses()),
    })
}

/// Convenience: run a strategy and panic-free assert the soundness bits
/// every run must satisfy (used by tests, the binaries, and the fuzzing
/// harness): error preserved, still verifying, not grown, and — because a
/// result is ultimately a *file* — the reduced program must survive a
/// binary round trip (serialize → parse → equal → verify).
pub fn check_report(report: &ReductionReport) -> Result<(), String> {
    if !report.errors_preserved {
        return Err(format!(
            "{}: reduced program lost the error message",
            report.strategy
        ));
    }
    if !report.still_valid {
        return Err(format!(
            "{}: reduced program does not verify",
            report.strategy
        ));
    }
    if report.final_metrics.bytes > report.initial.bytes {
        return Err(format!("{}: reduction grew the input", report.strategy));
    }
    lbr_classfile::round_trip_verify(&report.reduced)
        .map_err(|e| format!("{}: round-trip check failed: {e}", report.strategy))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_classfile::{
        ClassFile, Code, Insn, MethodDescriptor, MethodInfo, MethodRef, Type,
    };
    use lbr_decompiler::{BugKind, BugSet};

    fn ctor() -> MethodInfo {
        MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        )
    }

    /// A benchmark with one cast-to-interface bug plus unrelated classes
    /// that a good reducer should drop.
    fn benchmark() -> Program {
        let mut i = ClassFile::new_interface("I");
        i.methods
            .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
        let mut a = ClassFile::new_class("A");
        a.interfaces.push("I".into());
        a.methods.push(ctor());
        // A realistic body: stubbing it out should save real bytes.
        let mut chunky = vec![];
        for k in 0..20 {
            chunky.push(Insn::IConst(k));
            chunky.push(Insn::Pop);
        }
        chunky.push(Insn::Return);
        a.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::new(1, 1, chunky),
        ));
        a.methods.push(MethodInfo::new(
            "trigger",
            MethodDescriptor::void(),
            Code::new(
                2,
                1,
                vec![
                    Insn::ALoad(0),
                    Insn::CheckCast("I".into()),
                    Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())),
                    Insn::Return,
                ],
            ),
        ));
        // Unrelated ballast classes.
        let mut ballast = Vec::new();
        for k in 0..6 {
            let mut c = ClassFile::new_class(format!("Ballast{k}"));
            c.methods.push(ctor());
            c.methods.push(MethodInfo::new(
                "use",
                MethodDescriptor::new(vec![Type::reference("A")], None),
                Code::new(1, 2, vec![Insn::Return]),
            ));
            ballast.push(c);
        }
        let mut p: Program = [i, a].into_iter().collect();
        for b in ballast {
            p.insert(b);
        }
        p
    }

    #[test]
    fn logical_beats_jreduce_on_the_benchmark() {
        let p = benchmark();
        assert!(lbr_classfile::verify_program(&p).is_empty());
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        assert!(oracle.is_failing());
        let logical = run_reduction(
            &p,
            &oracle,
            Strategy::Logical(MsaStrategy::GreedyClosure),
            0.0,
        )
        .expect("logical runs");
        check_report(&logical).expect("logical sound");
        let jreduce =
            run_reduction(&p, &oracle, Strategy::JReduce, 0.0).expect("jreduce runs");
        check_report(&jreduce).expect("jreduce sound");
        assert!(
            logical.final_metrics.bytes <= jreduce.final_metrics.bytes,
            "logical ({}) must be at least as small as jreduce ({})",
            logical.final_metrics.bytes,
            jreduce.final_metrics.bytes
        );
        // The ballast must be gone in both.
        assert!(logical.reduced.get("Ballast0").is_none());
        assert!(jreduce.reduced.get("Ballast0").is_none());
        // Logical keeps A but can strip its unused parts.
        assert!(logical.reduced.get("A").is_some());
    }

    #[test]
    fn lossy_variants_run_and_are_sound() {
        let p = benchmark();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        for pick in [LossyPick::FirstFirst, LossyPick::LastLast] {
            let report =
                run_reduction(&p, &oracle, Strategy::Lossy(pick), 0.0).expect("lossy runs");
            check_report(&report).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn ddmin_runs_and_is_sound() {
        let p = benchmark();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        let report =
            run_reduction(&p, &oracle, Strategy::DdminItems, 0.0).expect("ddmin runs");
        check_report(&report).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn not_failing_is_an_error() {
        let p = benchmark();
        let oracle = DecompilerOracle::new(&p, BugSet::none());
        let err = run_reduction(&p, &oracle, Strategy::JReduce, 0.0).unwrap_err();
        assert!(matches!(err, PipelineError::NotFailing));
    }

    #[test]
    fn performance_options_do_not_change_results() {
        let p = benchmark();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        for strategy in [
            Strategy::Logical(MsaStrategy::GreedyClosure),
            Strategy::LogicalMinimized,
            Strategy::JReduce,
            Strategy::Lossy(LossyPick::FirstFirst),
        ] {
            let fast = run_reduction_with(&p, &oracle, strategy, 33.0, &RunOptions::default())
                .expect("default options");
            let slow = run_reduction_with(&p, &oracle, strategy, 33.0, &RunOptions::legacy())
                .expect("legacy options");
            assert_eq!(fast.final_metrics, slow.final_metrics, "{strategy:?}");
            assert_eq!(fast.predicate_calls, slow.predicate_calls, "{strategy:?}");
            assert_eq!(
                fast.cache_hits + fast.cache_misses,
                fast.predicate_calls,
                "{strategy:?}: every probe is a hit or a miss"
            );
            assert_eq!(slow.cache_hits, 0, "{strategy:?}");
            assert_eq!(slow.cache_misses, 0, "{strategy:?}");
        }
    }

    /// The benchmark extended with an unrelated second bug (a static call
    /// that decompiles to a ghost receiver) so the baseline has two
    /// distinct error messages.
    fn two_bug_benchmark() -> Program {
        let mut p = benchmark();
        let mut util = ClassFile::new_class("Util");
        util.methods.push(ctor());
        let mut helper = MethodInfo::new(
            "helper",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        );
        helper.flags |= lbr_classfile::Flags::STATIC;
        util.methods.push(helper);
        util.methods.push(MethodInfo::new(
            "go",
            MethodDescriptor::void(),
            Code::new(
                1,
                1,
                vec![
                    Insn::InvokeStatic(MethodRef::new("Util", "helper", MethodDescriptor::void())),
                    Insn::Return,
                ],
            ),
        ));
        p.insert(util);
        p
    }

    #[test]
    fn per_error_cache_is_shared_across_searches() {
        let p = two_bug_benchmark();
        let oracle = DecompilerOracle::new(
            &p,
            BugSet::of(&[BugKind::CastToObject, BugKind::StaticGhostReceiver]),
        );
        assert!(
            oracle.baseline().len() >= 2,
            "need at least two distinct errors, got {:?}",
            oracle.baseline()
        );
        let cached = run_per_error(&p, &oracle, 0.0).expect("per-error runs");
        assert_eq!(cached.errors.len(), oracle.baseline().len());
        assert!(
            cached.cache_hits > 0,
            "searches share probes (every search starts from the same D0)"
        );
        assert!(cached.cache_hit_rate() > 0.0);
        // The cache is a pure optimization: identical rows and call counts.
        let uncached = run_per_error_with(
            &p,
            &oracle,
            0.0,
            &RunOptions {
                memoize: false,
                ..RunOptions::default()
            },
        )
        .expect("per-error runs uncached");
        assert_eq!(cached.errors, uncached.errors);
        assert_eq!(cached.total_calls, uncached.total_calls);
        assert_eq!(uncached.cache_hits, 0);
        assert_eq!(uncached.cache_misses, 0);
    }

    #[test]
    fn probe_threads_do_not_change_results() {
        let p = benchmark();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        let sequential = run_reduction_with(
            &p,
            &oracle,
            Strategy::Logical(MsaStrategy::GreedyClosure),
            33.0,
            &RunOptions::default(),
        )
        .expect("sequential");
        for threads in [2usize, 4] {
            let parallel = run_reduction_with(
                &p,
                &oracle,
                Strategy::Logical(MsaStrategy::GreedyClosure),
                33.0,
                &RunOptions {
                    probe_threads: threads,
                    ..RunOptions::default()
                },
            )
            .expect("parallel");
            assert_eq!(parallel.final_metrics, sequential.final_metrics, "threads={threads}");
            assert_eq!(
                parallel.predicate_calls, sequential.predicate_calls,
                "threads={threads}"
            );
            assert_eq!(parallel.cache_hits, sequential.cache_hits, "threads={threads}");
            assert_eq!(parallel.cache_misses, sequential.cache_misses, "threads={threads}");
            assert_eq!(
                parallel.probe_stats.useful_calls,
                sequential.predicate_calls,
                "threads={threads}"
            );
            assert!((parallel.modeled_secs - sequential.modeled_secs).abs() < 1e-9);
            // The traces agree on everything but wall-clock timing.
            assert_eq!(parallel.trace.len(), sequential.trace.len());
            for (a, b) in parallel.trace.points().iter().zip(sequential.trace.points()) {
                assert_eq!((a.call, a.size, a.success), (b.call, b.size, b.success));
                assert!((a.modeled_secs - b.modeled_secs).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn per_error_parallel_matches_sequential() {
        let p = two_bug_benchmark();
        let oracle = DecompilerOracle::new(
            &p,
            BugSet::of(&[BugKind::CastToObject, BugKind::StaticGhostReceiver]),
        );
        let sequential =
            run_per_error_with(&p, &oracle, 33.0, &RunOptions::default()).expect("sequential");
        for threads in [2usize, 4] {
            let parallel = run_per_error_with(
                &p,
                &oracle,
                33.0,
                &RunOptions {
                    probe_threads: threads,
                    ..RunOptions::default()
                },
            )
            .expect("parallel");
            assert_eq!(parallel.errors, sequential.errors, "threads={threads}");
            assert_eq!(parallel.total_calls, sequential.total_calls, "threads={threads}");
            assert_eq!(parallel.cache_hits, sequential.cache_hits, "threads={threads}");
            assert_eq!(
                parallel.cache_misses, sequential.cache_misses,
                "threads={threads}"
            );
        }
    }

    /// An in-memory [`ProbeCache`] for tests (the disk-backed one lives in
    /// the service crate).
    #[derive(Default)]
    struct MemCache {
        map: std::sync::Mutex<HashMap<VarSet, Probe>>,
        hits: std::sync::atomic::AtomicU64,
    }

    impl ProbeCache for MemCache {
        fn lookup(&self, key: &VarSet) -> Option<Probe> {
            let got = self.map.lock().unwrap().get(key).copied();
            if got.is_some() {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            got
        }
        fn store(&self, key: &VarSet, probe: Probe) {
            self.map.lock().unwrap().insert(key.clone(), probe);
        }
    }

    #[test]
    fn resumable_matches_plain_run_and_warm_cache_is_invisible() {
        let p = benchmark();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        let plain = run_reduction_with(
            &p,
            &oracle,
            Strategy::Logical(MsaStrategy::GreedyClosure),
            33.0,
            &RunOptions::default(),
        )
        .expect("plain");
        let cache = MemCache::default();
        for round in 0..2 {
            // Round 0 fills the cache; round 1 is served warm. Both must be
            // bit-identical to the plain run in every observable.
            let hooks = ServiceHooks {
                cache: Some(&cache),
                ..ServiceHooks::default()
            };
            let run = run_logical_resumable(
                &p,
                &oracle,
                MsaStrategy::GreedyClosure,
                33.0,
                &RunOptions::default(),
                hooks,
            )
            .expect("resumable");
            assert_eq!(run.final_metrics, plain.final_metrics, "round={round}");
            assert_eq!(run.predicate_calls, plain.predicate_calls, "round={round}");
            assert_eq!(run.cache_hits, plain.cache_hits, "round={round}");
            assert_eq!(run.cache_misses, plain.cache_misses, "round={round}");
            assert_eq!(run.trace.digest(), plain.trace.digest(), "round={round}");
            assert_eq!(
                lbr_classfile::write_program(&run.reduced),
                lbr_classfile::write_program(&plain.reduced),
                "round={round}"
            );
        }
        assert!(
            cache.hits.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "the warm round must actually hit the external cache"
        );
    }

    #[test]
    fn resumable_checkpoint_resume_matches_uninterrupted() {
        let p = benchmark();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        let plain = run_reduction_with(
            &p,
            &oracle,
            Strategy::Logical(MsaStrategy::GreedyClosure),
            33.0,
            &RunOptions::default(),
        )
        .expect("plain");
        // Cancel after the first checkpoint, then resume from it — with a
        // shared cache, so the resumed run's replayed probes are warm.
        let cache = MemCache::default();
        let taken = std::sync::atomic::AtomicUsize::new(0);
        let mut saved: Option<lbr_core::GbrCheckpoint> = None;
        let mut hook = |ck: &lbr_core::GbrCheckpoint| {
            taken.store(ck.iterations, std::sync::atomic::Ordering::Relaxed);
            saved = Some(ck.clone());
        };
        let cancel = || taken.load(std::sync::atomic::Ordering::Relaxed) >= 1;
        let err = run_logical_resumable(
            &p,
            &oracle,
            MsaStrategy::GreedyClosure,
            33.0,
            &RunOptions::default(),
            ServiceHooks {
                cache: Some(&cache),
                cancel: Some(&cancel),
                checkpoint: Some(&mut hook),
                resume: None,
            },
        )
        .expect_err("cancelled");
        assert!(matches!(err, PipelineError::Gbr(GbrError::Cancelled)));
        let ck = saved.expect("checkpoint taken");
        let resumed = run_logical_resumable(
            &p,
            &oracle,
            MsaStrategy::GreedyClosure,
            33.0,
            &RunOptions::default(),
            ServiceHooks {
                cache: Some(&cache),
                resume: Some(ck),
                ..ServiceHooks::default()
            },
        )
        .expect("resumed run completes");
        assert_eq!(resumed.final_metrics, plain.final_metrics);
        assert_eq!(
            lbr_classfile::write_program(&resumed.reduced),
            lbr_classfile::write_program(&plain.reduced)
        );
        assert!(resumed.errors_preserved && resumed.still_valid);
    }

    #[test]
    fn modeled_time_tracks_calls() {
        let p = benchmark();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        let report = run_reduction(
            &p,
            &oracle,
            Strategy::Logical(MsaStrategy::GreedyClosure),
            33.0,
        )
        .expect("runs");
        assert!(report.predicate_calls > 0);
        assert!(
            (report.modeled_secs - report.predicate_calls as f64 * 33.0).abs() < 1e-9
        );
        assert!(report.relative_bytes() <= 1.0);
        assert!(report.relative_classes() <= 1.0);
    }
}
