//! End-to-end reduction drivers: one entry point per evaluated strategy.
//!
//! The paper evaluates four reduction strategies; [`Strategy`] mirrors
//! them:
//!
//! * [`Strategy::Logical`] — the paper's tool: the full logical model plus
//!   Generalized Binary Reduction,
//! * [`Strategy::JReduce`] — the baseline: the coarse unit-mention graph
//!   plus Binary Reduction over closures,
//! * [`Strategy::Lossy`] — the logical model lossily encoded into graph
//!   constraints (two variants), reduced with Binary Reduction,
//! * [`Strategy::DdminItems`] — ddmin at item granularity with a validity
//!   filter (the ablation showing why plain ddmin disappoints).
//!
//! Every driver is generic over the input format: an [`Input`] frontend
//! supplies the logical and coarse models, and an [`InputOracle`]
//! supplies the failure predicate. The stages live in submodules —
//! [`logical`] (GBR with service hooks), [`baselines`] (J-Reduce, lossy,
//! ddmin), [`per_error`] (the per-error sweep) — all built on the
//! [`probe`] module's candidate probe and the `lbr-core` oracle
//! middleware stack. This module owns the shared vocabulary
//! ([`Strategy`], [`RunOptions`], [`ReductionReport`]) and the dispatch;
//! the ergonomic front door is
//! [`ReductionSession`](crate::ReductionSession).

mod baselines;
mod logical;
mod per_error;
mod probe;
#[cfg(test)]
mod tests;

pub use logical::ServiceHooks;
pub use per_error::PerErrorReport;
pub use probe::CandidateProbe;

use lbr_classfile::Program;
use lbr_core::{
    BinaryReductionError, EngineChoice, GbrError, Input, InputOracle, LossyPick, ModelStats,
    ProbeStats, PropagationMode, ReductionTrace,
};
use lbr_logic::MsaStrategy;
use probe::{OrderKind, RunParts};
use std::time::Instant;

/// A reduction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's reducer: logical model + GBR with the given MSA
    /// strategy and the closure-size variable order.
    Logical(MsaStrategy),
    /// The order ablation: GBR with the *natural* (declaration) variable
    /// order instead of the closure-size heuristic Theorem 4.5 wants.
    LogicalNaturalOrder,
    /// GBR followed by the local-minimization postpass
    /// ([`lbr_core::minimize_solution`]): extra tool runs for a possibly
    /// smaller output.
    LogicalMinimized,
    /// The J-Reduce baseline: coarse unit graph + Binary Reduction.
    JReduce,
    /// A lossy encoding of the logical model + Binary Reduction.
    Lossy(LossyPick),
    /// ddmin over items with a validity filter.
    DdminItems,
}

impl Strategy {
    /// A stable name for reports.
    pub fn name(&self) -> String {
        match self {
            Strategy::Logical(m) => format!("logical/{}", m.name()),
            Strategy::LogicalNaturalOrder => "logical/natural-order".to_owned(),
            Strategy::LogicalMinimized => "logical/minimized".to_owned(),
            Strategy::JReduce => "jreduce".to_owned(),
            Strategy::Lossy(p) => p.name().to_owned(),
            Strategy::DdminItems => "ddmin-items".to_owned(),
        }
    }
}

/// Which GBR variable order a [`Strategy::Logical`] run uses. The other
/// strategies — including [`Strategy::LogicalNaturalOrder`], which *is* an
/// order ablation — ignore this knob.
///
/// Unlike the other [`RunOptions`] knobs, a non-default order choice *is*
/// allowed to change what a run computes (a better order finds smaller
/// solutions in fewer probes); each choice remains bit-identical across
/// repeats, thread counts, and the other knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderChoice {
    /// The closure-size order Theorem 4.5 wants (the historical default).
    #[default]
    Baseline,
    /// The closure-size order refined by conflict-activity statistics from
    /// a bounded, deterministic CDCL probe of the dependency model (zero
    /// predicate calls; see [`lbr_core::activity_order`]).
    Learned,
    /// A fixed three-member portfolio — baseline, activity-learned, and
    /// cache-history orders — raced over one shared probe scheduler, the
    /// smallest solution committed with the lowest portfolio index winning
    /// ties (see [`lbr_core::generalized_binary_reduction_portfolio`]).
    Portfolio,
}

/// Performance knobs for a reduction run. They change how fast a run is,
/// never what it computes: results, predicate-call counts, and traces are
/// identical across all settings. (The one documented exception is
/// [`order`](Self::order), which may trade extra probes for a smaller
/// result — still deterministically.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// How GBR propagates the dependency model (incremental watched-literal
    /// engine vs the scan-based baseline).
    pub propagation: PropagationMode,
    /// Whether the oracle memoizes probe outcomes by candidate subset, so
    /// repeated probes never re-run the tool.
    pub memoize: bool,
    /// Intra-run probe parallelism. `1` (the default) probes sequentially.
    /// With `n > 1`, GBR-based strategies ([`Strategy::Logical`] and
    /// [`Strategy::LogicalNaturalOrder`]) speculate on the binary search's
    /// pending probe with `n`-way parallel tool runs, and the per-error
    /// sweep runs up to `n` error searches concurrently — both with
    /// bit-identical results and identical logical call counts. The other
    /// strategies ignore the knob (Binary Reduction's closure sweep and
    /// ddmin consume each probe result before choosing the next candidate,
    /// so there is no pending-probe tree to speculate on).
    pub probe_threads: usize,
    /// Emulated latency of one tool invocation, in microseconds (default
    /// `0`: no emulation). The paper's probes are ≈33 s subprocess
    /// invocations (decompile + recompile) whose cost is dominated by
    /// process launch and I/O, not CPU — the regime speculative probing
    /// targets. The in-process model probes of this reproduction finish in
    /// microseconds of pure CPU instead, so on a single core speculation
    /// can only add overhead. A nonzero latency sleeps that long inside
    /// every probe that actually runs the tool (memoized repeats stay
    /// free), restoring the latency-bound regime for wall-clock
    /// measurements. Results, call counts, traces and modeled times are
    /// unaffected.
    pub probe_latency_micros: u64,
    /// Which complete-search solver backs the MSA computations of the
    /// GBR-based logical strategies (DPLL vs CDCL with learned clauses).
    /// Bit-identical results; only solver effort differs. Requires
    /// [`PropagationMode::Incremental`] to take effect (the legacy scan
    /// has no persistent engine).
    pub engine: EngineChoice,
    /// Which GBR variable order a [`Strategy::Logical`] run uses (see
    /// [`OrderChoice`]). Non-default choices suffix the report's strategy
    /// name (`+order-learned`, `+order-portfolio`).
    pub order: OrderChoice,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            propagation: PropagationMode::default(),
            memoize: true,
            probe_threads: 1,
            probe_latency_micros: 0,
            engine: EngineChoice::default(),
            order: OrderChoice::default(),
        }
    }
}

impl RunOptions {
    /// The pre-engine configuration: scan-based propagation, no memo. Used
    /// as the measurable baseline for the performance comparison.
    pub fn legacy() -> Self {
        RunOptions {
            propagation: PropagationMode::LegacyScan,
            memoize: false,
            probe_threads: 1,
            probe_latency_micros: 0,
            engine: EngineChoice::Dpll,
            order: OrderChoice::Baseline,
        }
    }
}

/// Size metrics of an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeMetrics {
    /// Number of top-level units (classes including interfaces for the
    /// classfile format; functions for stackvm).
    pub classes: usize,
    /// Serialized size in bytes.
    pub bytes: usize,
}

impl SizeMetrics {
    /// Measures an input.
    pub fn of<I: Input>(input: &I) -> Self {
        SizeMetrics {
            classes: input.unit_count(),
            bytes: input.byte_size(),
        }
    }
}

/// The outcome of one reduction run.
#[derive(Debug, Clone)]
pub struct ReductionReport<I = Program> {
    /// Strategy name.
    pub strategy: String,
    /// Input sizes.
    pub initial: SizeMetrics,
    /// Output sizes.
    pub final_metrics: SizeMetrics,
    /// Number of black-box predicate invocations.
    pub predicate_calls: u64,
    /// The unified probe accounting: `useful_calls` always equals
    /// [`predicate_calls`](Self::predicate_calls); `memo_hits`/`memo_misses`
    /// are the per-run memo totals (see [`cache_hits`](Self::cache_hits));
    /// `speculative_calls` and `critical_path_calls` are zero / equal to
    /// the fresh-tool-run count for sequential runs and reflect wasted vs
    /// blocking probes when `probe_threads > 1`.
    pub probe_stats: ProbeStats,
    /// Wall-clock seconds of the whole run.
    pub wall_secs: f64,
    /// Modeled tool time (`calls × cost_per_call`).
    pub modeled_secs: f64,
    /// The reduction-over-time trace (sizes in bytes).
    pub trace: ReductionTrace,
    /// Model statistics, when a logical model was built.
    pub model_stats: Option<ModelStats>,
    /// The reduced input.
    pub reduced: I,
    /// Whether the reduced input still produces the full error message.
    pub errors_preserved: bool,
    /// Whether the reduced input still verifies.
    pub still_valid: bool,
}

impl<I> ReductionReport<I> {
    /// Final size relative to the input, in bytes (the paper's headline
    /// 4.6% vs 24.3%).
    pub fn relative_bytes(&self) -> f64 {
        self.final_metrics.bytes as f64 / self.initial.bytes.max(1) as f64
    }

    /// Final size relative to the input, in top-level units.
    pub fn relative_classes(&self) -> f64 {
        self.final_metrics.classes as f64 / self.initial.classes.max(1) as f64
    }

    /// Probes answered from the oracle's memo without re-running the tool
    /// (0 when memoization is off or the strategy bypasses the oracle).
    pub fn cache_hits(&self) -> u64 {
        self.probe_stats.memo_hits
    }

    /// Probes that actually ran the tool while memoization was on.
    pub fn cache_misses(&self) -> u64 {
        self.probe_stats.memo_misses
    }

    /// Re-types the reduced payload — e.g. serializing it with
    /// [`Input::to_bytes`] so callers can handle reports from different
    /// input formats uniformly.
    pub fn map_reduced<J>(self, f: impl FnOnce(I) -> J) -> ReductionReport<J> {
        ReductionReport {
            strategy: self.strategy,
            initial: self.initial,
            final_metrics: self.final_metrics,
            predicate_calls: self.predicate_calls,
            probe_stats: self.probe_stats,
            wall_secs: self.wall_secs,
            modeled_secs: self.modeled_secs,
            trace: self.trace,
            model_stats: self.model_stats,
            reduced: f(self.reduced),
            errors_preserved: self.errors_preserved,
            still_valid: self.still_valid,
        }
    }
}

/// Why a pipeline run failed.
#[derive(Debug)]
pub enum PipelineError {
    /// The input does not trigger the tool's bugs.
    NotFailing,
    /// The input does not verify, so no model can be built (the
    /// frontend's message).
    Model(String),
    /// GBR failed (see [`GbrError`]).
    Gbr(GbrError),
    /// Binary Reduction failed.
    Binary(BinaryReductionError),
    /// The lossy encoding was contradictory (forbidden required items).
    LossyContradiction,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::NotFailing => write!(f, "input does not trigger the tool's bugs"),
            PipelineError::Model(e) => write!(f, "{e}"),
            PipelineError::Gbr(e) => write!(f, "gbr: {e}"),
            PipelineError::Binary(e) => write!(f, "binary reduction: {e}"),
            PipelineError::LossyContradiction => write!(f, "lossy encoding is contradictory"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<lbr_classfile::ModelError> for PipelineError {
    fn from(e: lbr_classfile::ModelError) -> Self {
        PipelineError::Model(e.to_string())
    }
}

impl From<GbrError> for PipelineError {
    fn from(e: GbrError) -> Self {
        PipelineError::Gbr(e)
    }
}

impl From<BinaryReductionError> for PipelineError {
    fn from(e: BinaryReductionError) -> Self {
        PipelineError::Binary(e)
    }
}

/// Runs one strategy on one benchmark.
///
/// `cost_per_call_secs` models the cost of one decompile+compile tool
/// invocation (the paper measured ≈33 s); it drives the modeled-time axis
/// of the Figure 8 reproductions.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn run_reduction<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    strategy: Strategy,
    cost_per_call_secs: f64,
) -> Result<ReductionReport<I>, PipelineError> {
    run_reduction_with(
        input,
        oracle,
        strategy,
        cost_per_call_secs,
        &RunOptions::default(),
    )
}

/// Like [`run_reduction`], with explicit performance [`RunOptions`]
/// (propagation mode and oracle memoization). Results are identical across
/// all option settings; only the wall-clock time differs.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn run_reduction_with<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    strategy: Strategy,
    cost_per_call_secs: f64,
    options: &RunOptions,
) -> Result<ReductionReport<I>, PipelineError> {
    dispatch(
        input,
        oracle,
        strategy,
        cost_per_call_secs,
        options,
        ServiceHooks::default(),
    )
}

/// [`Strategy::Logical`] with [`ServiceHooks`]: the entry point the
/// reduction daemon drives. Equivalent to [`run_reduction_with`] when the
/// hooks are default; see [`ServiceHooks`] for the exact determinism and
/// resume semantics.
///
/// # Errors
///
/// See [`PipelineError`]; a fired cancellation hook surfaces as
/// [`PipelineError::Gbr`]([`GbrError::Cancelled`]).
pub fn run_logical_resumable<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    msa: MsaStrategy,
    cost_per_call_secs: f64,
    options: &RunOptions,
    hooks: ServiceHooks<'_>,
) -> Result<ReductionReport<I>, PipelineError> {
    dispatch(
        input,
        oracle,
        Strategy::Logical(msa),
        cost_per_call_secs,
        options,
        hooks,
    )
}

/// The one dispatcher every entry point funnels through: check the input
/// actually fails, run the strategy's stage, assemble the report.
/// [`ServiceHooks`] apply to the GBR-based logical strategies; the other
/// stages have no pending-probe tree or resumable loop and ignore them.
pub(crate) fn dispatch<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    strategy: Strategy,
    cost_per_call_secs: f64,
    options: &RunOptions,
    hooks: ServiceHooks<'_>,
) -> Result<ReductionReport<I>, PipelineError> {
    if !oracle.is_failing() {
        return Err(PipelineError::NotFailing);
    }
    let start = Instant::now();
    let initial = SizeMetrics::of(input);
    let cost = cost_per_call_secs;
    let parts = match strategy {
        Strategy::Logical(msa) => logical::run_hooked(
            input,
            oracle,
            msa,
            OrderKind::ClosureSize,
            cost,
            options,
            hooks,
        )?,
        Strategy::LogicalNaturalOrder => logical::run_hooked(
            input,
            oracle,
            MsaStrategy::GreedyClosure,
            OrderKind::Natural,
            cost,
            options,
            hooks,
        )?,
        Strategy::LogicalMinimized => logical::run_minimized(input, oracle, cost, options)?,
        Strategy::JReduce => baselines::run_jreduce(input, oracle, cost, options)?,
        Strategy::Lossy(pick) => baselines::run_lossy(input, oracle, pick, cost, options)?,
        Strategy::DdminItems => baselines::run_ddmin(input, oracle, cost, options)?,
    };
    let RunParts {
        reduced,
        calls,
        trace,
        model_stats,
        probe_stats,
    } = parts;
    let errors_preserved = oracle.preserves_failure(&reduced);
    let still_valid = reduced.validate().is_empty();
    Ok(ReductionReport {
        strategy: strategy_label(strategy, options),
        initial,
        final_metrics: SizeMetrics::of(&reduced),
        predicate_calls: calls,
        probe_stats,
        wall_secs: start.elapsed().as_secs_f64(),
        modeled_secs: calls as f64 * cost,
        trace,
        model_stats,
        reduced,
        errors_preserved,
        still_valid,
    })
}

/// The report's strategy label: the strategy name, suffixed for every
/// non-default option the strategy actually honors, so rows from
/// different configurations stay distinguishable in comparisons.
fn strategy_label(strategy: Strategy, options: &RunOptions) -> String {
    let mut name = strategy.name();
    let honors_engine = matches!(
        strategy,
        Strategy::Logical(_) | Strategy::LogicalNaturalOrder | Strategy::LogicalMinimized
    ) && options.propagation == PropagationMode::Incremental;
    if honors_engine && options.engine == EngineChoice::Cdcl {
        name.push_str("+cdcl");
    }
    if matches!(strategy, Strategy::Logical(_)) {
        match options.order {
            OrderChoice::Baseline => {}
            OrderChoice::Learned => name.push_str("+order-learned"),
            OrderChoice::Portfolio => name.push_str("+order-portfolio"),
        }
    }
    name
}

/// Reduces once *per distinct baseline error* — the paper's observation
/// that "some cases have many distinct bugs; each bug requires GBR to do
/// an individual search". Each search preserves exactly one error message
/// and produces its own (usually much smaller) witness.
///
/// All searches run against the same instance and differ only in which
/// error they look for, so the expensive part of every probe — building
/// the candidate input and collecting its error set — is shared through
/// one cache keyed by keep-set. The first search pays for its probes; the
/// later searches re-probe many of the same subsets (every search starts
/// from the same `D₀`) and get them for free.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn run_per_error<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost_per_call_secs: f64,
) -> Result<PerErrorReport, PipelineError> {
    run_per_error_with(input, oracle, cost_per_call_secs, &RunOptions::default())
}

/// Like [`run_per_error`], with explicit performance [`RunOptions`].
///
/// With `probe_threads > 1` the individual searches — which are
/// embarrassingly parallel — run concurrently on scoped worker threads,
/// sharing one concurrent probe cache. Output is deterministic: rows,
/// traces, call counts, and cache totals are identical to the sequential
/// sweep (the cache computes each distinct subset exactly once under any
/// interleaving), and rows stay in baseline error order.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn run_per_error_with<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost_per_call_secs: f64,
    options: &RunOptions,
) -> Result<PerErrorReport, PipelineError> {
    per_error::run_sweep(input, oracle, cost_per_call_secs, options)
}

/// Convenience: run a strategy and panic-free assert the soundness bits
/// every run must satisfy (used by tests, the binaries, and the fuzzing
/// harness): error preserved, still verifying, not grown, and — because a
/// result is ultimately a *file* — the reduced input must survive a
/// round trip through the format's own serializer (serialize → parse →
/// equal → verify), frontend-agnostically via the [`Input`] trait.
pub fn check_report<I: Input>(report: &ReductionReport<I>) -> Result<(), String> {
    if !report.errors_preserved {
        return Err(format!(
            "{}: reduced input lost the error message",
            report.strategy
        ));
    }
    if !report.still_valid {
        return Err(format!(
            "{}: reduced input does not verify",
            report.strategy
        ));
    }
    if report.final_metrics.bytes > report.initial.bytes {
        return Err(format!("{}: reduction grew the input", report.strategy));
    }
    let bytes = report.reduced.to_bytes();
    let back = I::from_bytes(&bytes)
        .map_err(|e| format!("{}: round-trip re-parse failed: {e}", report.strategy))?;
    if back != report.reduced {
        return Err(format!(
            "{}: round trip changed the reduced input",
            report.strategy
        ));
    }
    let errors = back.validate();
    if !errors.is_empty() {
        return Err(format!(
            "{}: round-tripped input does not verify: {}",
            report.strategy,
            errors.join("; ")
        ));
    }
    Ok(())
}
