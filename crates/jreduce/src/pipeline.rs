//! End-to-end reduction drivers: the strategy registry plus the one
//! dispatcher every entry point funnels through.
//!
//! The paper evaluates reduction *strategies* against each other; this
//! module used to mirror that set as a closed enum, which made every
//! addition a six-crate edit. Strategies are now open values behind
//! `lbr-core`'s [`ReductionStrategy`] trait, registered by name in a
//! [`StrategyRegistry`] (see [`strategy_registry`]): the paper's tool
//! (`logical/greedy` and its MSA variants), the J-Reduce baseline
//! (`jreduce`), the lossy encodings (`lossy-1`, `lossy-2`), validity-
//! filtered ddmin (`ddmin-items`), hierarchical delta debugging (`hdd`),
//! transformation passes (`transform`), and the trace-guided GBR mode
//! (`logical/trace-guided`).
//!
//! Every driver is generic over the input format: an [`Input`] frontend
//! supplies the logical and coarse models, and an [`InputOracle`]
//! supplies the failure predicate. The stages live in submodules —
//! [`logical`] (GBR with service hooks), [`baselines`] (J-Reduce, lossy,
//! ddmin), [`guided`] (HDD, transform, trace-guided), [`per_error`] (the
//! per-error sweep) — all built on the [`probe`] module's candidate
//! probe and the `lbr-core` oracle middleware stack. This module owns
//! the dispatch and the report; the shared run vocabulary
//! ([`RunOptions`], [`ServiceHooks`], [`PipelineError`]) lives in
//! `lbr-core` and is re-exported here. The ergonomic front door is
//! [`ReductionSession`](crate::ReductionSession).

mod baselines;
mod guided;
mod logical;
mod per_error;
mod probe;
mod strategies;
#[cfg(test)]
mod tests;

pub use lbr_core::{
    OrderChoice, PipelineError, ReductionStrategy, RunOptions, ServiceHooks, StrategyCaps,
    StrategyOutput, StrategyRegistry,
};
pub use per_error::PerErrorReport;
pub use probe::CandidateProbe;
pub use strategies::{known_strategy, strategy_caps, strategy_catalog, strategy_registry};

use lbr_classfile::Program;
use lbr_core::{Input, InputOracle, ModelStats, ProbeStats, ReductionTrace};
use lbr_logic::MsaStrategy;
use std::time::Instant;

/// Size metrics of an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeMetrics {
    /// Number of top-level units (classes including interfaces for the
    /// classfile format; functions for stackvm).
    pub classes: usize,
    /// Serialized size in bytes.
    pub bytes: usize,
}

impl SizeMetrics {
    /// Measures an input.
    pub fn of<I: Input>(input: &I) -> Self {
        SizeMetrics {
            classes: input.unit_count(),
            bytes: input.byte_size(),
        }
    }
}

/// The outcome of one reduction run.
#[derive(Debug, Clone)]
pub struct ReductionReport<I = Program> {
    /// Strategy label (the registry name, suffixed for non-default
    /// options the strategy honors — see
    /// [`ReductionStrategy::label`]).
    pub strategy: String,
    /// Input sizes.
    pub initial: SizeMetrics,
    /// Output sizes.
    pub final_metrics: SizeMetrics,
    /// Number of black-box predicate invocations.
    pub predicate_calls: u64,
    /// The unified probe accounting: `useful_calls` always equals
    /// [`predicate_calls`](Self::predicate_calls); `memo_hits`/`memo_misses`
    /// are the per-run memo totals (see [`cache_hits`](Self::cache_hits));
    /// `speculative_calls` and `critical_path_calls` are zero / equal to
    /// the fresh-tool-run count for sequential runs and reflect wasted vs
    /// blocking probes when `probe_threads > 1`.
    pub probe_stats: ProbeStats,
    /// Wall-clock seconds of the whole run.
    pub wall_secs: f64,
    /// Modeled tool time (`calls × cost_per_call`).
    pub modeled_secs: f64,
    /// The reduction-over-time trace (sizes in bytes).
    pub trace: ReductionTrace,
    /// Model statistics, when a logical model was built.
    pub model_stats: Option<ModelStats>,
    /// The reduced input.
    pub reduced: I,
    /// Whether the reduced input still produces the full error message.
    pub errors_preserved: bool,
    /// Whether the reduced input still verifies.
    pub still_valid: bool,
}

impl<I> ReductionReport<I> {
    /// Final size relative to the input, in bytes (the paper's headline
    /// 4.6% vs 24.3%).
    pub fn relative_bytes(&self) -> f64 {
        self.final_metrics.bytes as f64 / self.initial.bytes.max(1) as f64
    }

    /// Final size relative to the input, in top-level units.
    pub fn relative_classes(&self) -> f64 {
        self.final_metrics.classes as f64 / self.initial.classes.max(1) as f64
    }

    /// Probes answered from the oracle's memo without re-running the tool
    /// (0 when memoization is off or the strategy bypasses the oracle).
    pub fn cache_hits(&self) -> u64 {
        self.probe_stats.memo_hits
    }

    /// Probes that actually ran the tool while memoization was on.
    pub fn cache_misses(&self) -> u64 {
        self.probe_stats.memo_misses
    }

    /// Re-types the reduced payload — e.g. serializing it with
    /// [`Input::to_bytes`] so callers can handle reports from different
    /// input formats uniformly.
    pub fn map_reduced<J>(self, f: impl FnOnce(I) -> J) -> ReductionReport<J> {
        ReductionReport {
            strategy: self.strategy,
            initial: self.initial,
            final_metrics: self.final_metrics,
            predicate_calls: self.predicate_calls,
            probe_stats: self.probe_stats,
            wall_secs: self.wall_secs,
            modeled_secs: self.modeled_secs,
            trace: self.trace,
            model_stats: self.model_stats,
            reduced: f(self.reduced),
            errors_preserved: self.errors_preserved,
            still_valid: self.still_valid,
        }
    }
}

/// Runs one strategy — by registry name or alias — on one benchmark.
///
/// `cost_per_call_secs` models the cost of one decompile+compile tool
/// invocation (the paper measured ≈33 s); it drives the modeled-time axis
/// of the Figure 8 reproductions.
///
/// # Errors
///
/// See [`PipelineError`]; an unregistered name surfaces as
/// [`PipelineError::UnknownStrategy`].
pub fn run_reduction<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    strategy: &str,
    cost_per_call_secs: f64,
) -> Result<ReductionReport<I>, PipelineError> {
    run_reduction_with(
        input,
        oracle,
        strategy,
        cost_per_call_secs,
        &RunOptions::default(),
    )
}

/// Like [`run_reduction`], with explicit performance [`RunOptions`]
/// (propagation mode and oracle memoization). Results are identical across
/// all option settings; only the wall-clock time differs.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn run_reduction_with<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    strategy: &str,
    cost_per_call_secs: f64,
    options: &RunOptions,
) -> Result<ReductionReport<I>, PipelineError> {
    dispatch(
        input,
        oracle,
        strategy,
        cost_per_call_secs,
        options,
        ServiceHooks::default(),
    )
}

/// The logical strategy with [`ServiceHooks`]: the entry point the
/// reduction daemon drives. Equivalent to [`run_reduction_with`] when the
/// hooks are default; see [`ServiceHooks`] for the exact determinism and
/// resume semantics.
///
/// # Errors
///
/// See [`PipelineError`]; a fired cancellation hook surfaces as
/// [`PipelineError::Gbr`]([`lbr_core::GbrError::Cancelled`]).
pub fn run_logical_resumable<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    msa: MsaStrategy,
    cost_per_call_secs: f64,
    options: &RunOptions,
    hooks: ServiceHooks<'_>,
) -> Result<ReductionReport<I>, PipelineError> {
    dispatch(
        input,
        oracle,
        &format!("logical/{}", msa.name()),
        cost_per_call_secs,
        options,
        hooks,
    )
}

/// The one dispatcher every entry point funnels through: look the
/// strategy up in the registry, check the input actually fails, run the
/// strategy, assemble the report. Hooks a strategy's
/// [`caps`](ReductionStrategy::caps) do not claim are ignored by that
/// strategy.
pub(crate) fn dispatch<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    strategy: &str,
    cost_per_call_secs: f64,
    options: &RunOptions,
    hooks: ServiceHooks<'_>,
) -> Result<ReductionReport<I>, PipelineError> {
    let registry = strategy_registry::<I>();
    let strat = registry
        .get(strategy)
        .ok_or_else(|| PipelineError::UnknownStrategy(strategy.to_owned()))?;
    if !oracle.is_failing() {
        return Err(PipelineError::NotFailing);
    }
    let start = Instant::now();
    let initial = SizeMetrics::of(input);
    let cost = cost_per_call_secs;
    let oracle_dyn: &dyn InputOracle<I> = &oracle;
    let StrategyOutput {
        reduced,
        calls,
        trace,
        model_stats,
        probe_stats,
    } = strat.run(input, oracle_dyn, cost, options, hooks)?;
    let errors_preserved = oracle.preserves_failure(&reduced);
    let still_valid = reduced.validate().is_empty();
    Ok(ReductionReport {
        strategy: strat.label(options),
        initial,
        final_metrics: SizeMetrics::of(&reduced),
        predicate_calls: calls,
        probe_stats,
        wall_secs: start.elapsed().as_secs_f64(),
        modeled_secs: calls as f64 * cost,
        trace,
        model_stats,
        reduced,
        errors_preserved,
        still_valid,
    })
}

/// Reduces once *per distinct baseline error* — the paper's observation
/// that "some cases have many distinct bugs; each bug requires GBR to do
/// an individual search". Each search preserves exactly one error message
/// and produces its own (usually much smaller) witness.
///
/// All searches run against the same instance and differ only in which
/// error they look for, so the expensive part of every probe — building
/// the candidate input and collecting its error set — is shared through
/// one cache keyed by keep-set. The first search pays for its probes; the
/// later searches re-probe many of the same subsets (every search starts
/// from the same `D₀`) and get them for free.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn run_per_error<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost_per_call_secs: f64,
) -> Result<PerErrorReport, PipelineError> {
    run_per_error_with(input, oracle, cost_per_call_secs, &RunOptions::default())
}

/// Like [`run_per_error`], with explicit performance [`RunOptions`].
///
/// With `probe_threads > 1` the individual searches — which are
/// embarrassingly parallel — run concurrently on scoped worker threads,
/// sharing one concurrent probe cache. Output is deterministic: rows,
/// traces, call counts, and cache totals are identical to the sequential
/// sweep (the cache computes each distinct subset exactly once under any
/// interleaving), and rows stay in baseline error order.
///
/// # Errors
///
/// See [`PipelineError`].
pub fn run_per_error_with<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost_per_call_secs: f64,
    options: &RunOptions,
) -> Result<PerErrorReport, PipelineError> {
    per_error::run_sweep(input, oracle, cost_per_call_secs, options)
}

/// Convenience: run a strategy and panic-free assert the soundness bits
/// every run must satisfy (used by tests, the binaries, and the fuzzing
/// harness): error preserved, still verifying, not grown, and — because a
/// result is ultimately a *file* — the reduced input must survive a
/// round trip through the format's own serializer (serialize → parse →
/// equal → verify), frontend-agnostically via the [`Input`] trait.
pub fn check_report<I: Input>(report: &ReductionReport<I>) -> Result<(), String> {
    if !report.errors_preserved {
        return Err(format!(
            "{}: reduced input lost the error message",
            report.strategy
        ));
    }
    if !report.still_valid {
        return Err(format!(
            "{}: reduced input does not verify",
            report.strategy
        ));
    }
    if report.final_metrics.bytes > report.initial.bytes {
        return Err(format!("{}: reduction grew the input", report.strategy));
    }
    let bytes = report.reduced.to_bytes();
    let back = I::from_bytes(&bytes)
        .map_err(|e| format!("{}: round-trip re-parse failed: {e}", report.strategy))?;
    if back != report.reduced {
        return Err(format!(
            "{}: round trip changed the reduced input",
            report.strategy
        ));
    }
    let errors = back.validate();
    if !errors.is_empty() {
        return Err(format!(
            "{}: round-tripped input does not verify: {}",
            report.strategy,
            errors.join("; ")
        ));
    }
    Ok(())
}
