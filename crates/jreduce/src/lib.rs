//! The format-agnostic reduction pipeline of *Logical Bytecode
//! Reduction*.
//!
//! This crate ties the substrates together into the paper's tool,
//! generically over any [`lbr_core::Input`] frontend (the classfile
//! format in [`lbr_classfile`], the stack-machine bytecode in
//! `lbr_stackvm`, ...):
//!
//! * [`run_reduction`] — drivers for the evaluated strategies, looked up
//!   by name in the open [`strategy_registry`], all generic over the
//!   input format,
//! * [`ReductionSession`] — the builder the daemon, cluster, bins, and
//!   fuzzer configure runs through.
//!
//! The classfile frontend's model pieces ([`Item`] / [`ItemRegistry`],
//! [`build_model`], [`reduce_program`], [`ClassGraph`]) now live in
//! [`lbr_classfile`] behind the [`lbr_core::Input`] trait; they are
//! re-exported here for compatibility.
//!
//! # Example
//!
//! ```no_run
//! use lbr_jreduce::run_reduction;
//! use lbr_decompiler::{BugSet, DecompilerOracle};
//! # let program = lbr_classfile::Program::new();
//! let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
//! let report = run_reduction(
//!     &program,
//!     &oracle,
//!     "logical/greedy",
//!     33.0, // modeled seconds per tool invocation
//! )?;
//! println!("reduced to {:.1}% of the bytes", 100.0 * report.relative_bytes());
//! # Ok::<(), lbr_jreduce::PipelineError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod pipeline;
mod session;

pub use lbr_classfile::{
    build_model, reduce_program, supertype_paths, ClassGraph, Item, ItemRegistry, LogicalModel,
    ModelError,
};
pub use lbr_core::ModelStats;
pub use pipeline::{
    check_report, known_strategy, run_logical_resumable, run_per_error, run_per_error_with,
    run_reduction, run_reduction_with, strategy_caps, strategy_catalog, strategy_registry,
    CandidateProbe, OrderChoice, PerErrorReport, PipelineError, ReductionReport, ReductionStrategy,
    RunOptions, ServiceHooks, SizeMetrics, StrategyCaps, StrategyOutput, StrategyRegistry,
};
pub use session::ReductionSession;
