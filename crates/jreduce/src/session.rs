//! [`ReductionSession`]: the builder-style front door to the pipeline.
//!
//! Every caller of the reduction pipeline — the CLI binaries, the daemon,
//! the fuzzing harness, tests — wants the same thing: a program, an
//! oracle, a strategy, and a handful of knobs (memoization, probe
//! parallelism, emulated latency, an external cache, cancellation,
//! checkpoint/resume). Before the session API each of them re-plumbed
//! those knobs by hand through `RunOptions` + `ServiceHooks` + the right
//! one of three entry points. A session names the configuration once and
//! picks the entry point for you:
//!
//! ```no_run
//! # use lbr_jreduce::ReductionSession;
//! # let (program, oracle): (lbr_classfile::Program, lbr_decompiler::DecompilerOracle) =
//! #     unimplemented!();
//! let report = ReductionSession::new(&program, &oracle)
//!     .strategy("logical/greedy")
//!     .cost_per_call(33.0)
//!     .probe_threads(4)
//!     .run()?;
//! # Ok::<(), lbr_jreduce::PipelineError>(())
//! ```
//!
//! Sessions are configuration + borrowed inputs only; all determinism
//! guarantees live with the underlying entry points (see
//! [`RunOptions`] and [`ServiceHooks`]).

use crate::pipeline::{
    self, OrderChoice, PerErrorReport, PipelineError, ReductionReport, RunOptions, ServiceHooks,
};
use lbr_core::{
    EngineChoice, GbrCheckpoint, Input, InputOracle, ProbeCache, ProbeDistributor, PropagationMode,
};

/// A configured reduction run waiting to happen, generic over the input
/// format (classfile programs, stackvm modules, any [`Input`]). Build
/// one with [`ReductionSession::new`], chain the knobs you care about,
/// then call [`run`](Self::run) (one report for the chosen strategy) or
/// [`run_per_error`](Self::run_per_error) (one row per distinct
/// baseline error).
///
/// Defaults: the `logical/greedy` strategy (the paper's reducer), zero
/// modeled cost per call, [`RunOptions::default`] (memoized, sequential,
/// no latency emulation), and no service hooks.
pub struct ReductionSession<
    's,
    I = lbr_classfile::Program,
    O: ?Sized = lbr_decompiler::DecompilerOracle,
> {
    input: &'s I,
    oracle: &'s O,
    strategy: String,
    cost_per_call_secs: f64,
    options: RunOptions,
    hooks: ServiceHooks<'s>,
}

impl<'s, I: Input, O: InputOracle<I> + ?Sized> ReductionSession<'s, I, O> {
    /// A session over one input and oracle, with all knobs at their
    /// defaults.
    pub fn new(input: &'s I, oracle: &'s O) -> Self {
        ReductionSession {
            input,
            oracle,
            strategy: "logical/greedy".to_owned(),
            cost_per_call_secs: 0.0,
            options: RunOptions::default(),
            hooks: ServiceHooks::default(),
        }
    }

    /// Which strategy [`run`](Self::run) executes — a registry name or
    /// alias (see [`crate::strategy_registry`]); unknown names surface as
    /// [`PipelineError::UnknownStrategy`] from [`run`](Self::run).
    pub fn strategy(mut self, strategy: impl Into<String>) -> Self {
        self.strategy = strategy.into();
        self
    }

    /// Modeled seconds per tool invocation (the paper measured ≈33 s);
    /// drives the report's `modeled_secs` and trace timing.
    pub fn cost_per_call(mut self, secs: f64) -> Self {
        self.cost_per_call_secs = secs;
        self
    }

    /// Replaces the whole option block at once (for callers that already
    /// hold a [`RunOptions`], like the CLI flag parsers).
    pub fn options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Switches to [`RunOptions::legacy`]: scan propagation, no memo.
    pub fn legacy(mut self) -> Self {
        self.options = RunOptions::legacy();
        self
    }

    /// Whether the oracle memoizes probe outcomes per run (default on).
    pub fn memoize(mut self, on: bool) -> Self {
        self.options.memoize = on;
        self
    }

    /// Intra-run probe parallelism (default 1; see
    /// [`RunOptions::probe_threads`]).
    pub fn probe_threads(mut self, threads: usize) -> Self {
        self.options.probe_threads = threads.max(1);
        self
    }

    /// Emulated per-probe tool latency in microseconds (default 0; see
    /// [`RunOptions::probe_latency_micros`]).
    pub fn probe_latency_micros(mut self, micros: u64) -> Self {
        self.options.probe_latency_micros = micros;
        self
    }

    /// How GBR propagates the dependency model.
    pub fn propagation(mut self, mode: PropagationMode) -> Self {
        self.options.propagation = mode;
        self
    }

    /// Which complete-search solver backs the MSA computations of the
    /// GBR-based logical strategies (default DPLL; see
    /// [`RunOptions::engine`]).
    pub fn engine(mut self, engine: EngineChoice) -> Self {
        self.options.engine = engine;
        self
    }

    /// Which GBR variable order a closure-size logical run uses (default
    /// baseline closure-size; see [`OrderChoice`]).
    pub fn order(mut self, order: OrderChoice) -> Self {
        self.options.order = order;
        self
    }

    /// Attaches a cross-run probe cache (hits skip the tool invocation but
    /// change nothing observable; callers must namespace keys per
    /// program + oracle). Applies to the GBR-based logical strategies.
    pub fn cache(mut self, cache: &'s dyn ProbeCache) -> Self {
        self.hooks.cache = Some(cache);
        self
    }

    /// Polled between probes; returning `true` aborts the run with
    /// [`PipelineError::Gbr`]([`lbr_core::GbrError::Cancelled`]).
    pub fn cancel(mut self, cancel: &'s (dyn Fn() -> bool + Sync)) -> Self {
        self.hooks.cancel = Some(cancel);
        self
    }

    /// Receives a resumable snapshot after every GBR iteration.
    pub fn checkpoint(mut self, hook: &'s mut dyn FnMut(&GbrCheckpoint)) -> Self {
        self.hooks.checkpoint = Some(hook);
        self
    }

    /// Continues a previous run from its last checkpoint instead of
    /// starting fresh.
    pub fn resume(mut self, checkpoint: GbrCheckpoint) -> Self {
        self.hooks.resume = Some(checkpoint);
        self
    }

    /// Distributes the run's speculative probe frontier to external
    /// evaluators — the cluster backend. GBR demands verdicts from the
    /// distributor's frontier in the exact sequential probe order, so the
    /// result is bit-identical to a local run at any worker count (see
    /// [`ServiceHooks::distributor`]).
    pub fn distributor(mut self, distributor: &'s dyn ProbeDistributor) -> Self {
        self.hooks.distributor = Some(distributor);
        self
    }

    /// Runs the configured strategy once and reports.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run(self) -> Result<ReductionReport<I>, PipelineError> {
        pipeline::dispatch(
            self.input,
            self.oracle,
            &self.strategy,
            self.cost_per_call_secs,
            &self.options,
            self.hooks,
        )
    }

    /// Runs one logical search per distinct baseline error (the
    /// per-error sweep), sharing one probe cache across the searches.
    /// Uses the session's options; the strategy and service hooks do not
    /// apply.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run_per_error(self) -> Result<PerErrorReport, PipelineError> {
        pipeline::run_per_error_with(
            self.input,
            self.oracle,
            self.cost_per_call_secs,
            &self.options,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_classfile::{ClassFile, Code, Insn, MethodDescriptor, MethodInfo, MethodRef, Program};
    use lbr_decompiler::{BugKind, BugSet, DecompilerOracle};

    fn tiny() -> Program {
        let mut i = ClassFile::new_interface("I");
        i.methods
            .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
        let mut a = ClassFile::new_class("A");
        a.interfaces.push("I".into());
        a.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        a.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        a.methods.push(MethodInfo::new(
            "trigger",
            MethodDescriptor::void(),
            Code::new(
                2,
                1,
                vec![
                    Insn::ALoad(0),
                    Insn::CheckCast("I".into()),
                    Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())),
                    Insn::Return,
                ],
            ),
        ));
        [i, a].into_iter().collect()
    }

    #[test]
    fn session_defaults_match_run_reduction() {
        let p = tiny();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        let direct = crate::run_reduction(&p, &oracle, "logical/greedy", 33.0).expect("direct");
        let session = ReductionSession::new(&p, &oracle)
            .cost_per_call(33.0)
            .run()
            .expect("session");
        assert_eq!(session.final_metrics, direct.final_metrics);
        assert_eq!(session.predicate_calls, direct.predicate_calls);
        assert_eq!(session.trace.digest(), direct.trace.digest());
        assert_eq!(
            lbr_classfile::write_program(&session.reduced),
            lbr_classfile::write_program(&direct.reduced)
        );
    }

    #[test]
    fn session_cdcl_engine_is_bit_identical_and_labelled() {
        let p = tiny();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        let dpll = ReductionSession::new(&p, &oracle).run().expect("dpll");
        let cdcl = ReductionSession::new(&p, &oracle)
            .engine(EngineChoice::Cdcl)
            .run()
            .expect("cdcl");
        assert_eq!(cdcl.strategy, format!("{}+cdcl", dpll.strategy));
        assert_eq!(cdcl.final_metrics, dpll.final_metrics);
        assert_eq!(cdcl.predicate_calls, dpll.predicate_calls);
        assert_eq!(cdcl.trace.digest(), dpll.trace.digest());
        assert_eq!(
            lbr_classfile::write_program(&cdcl.reduced),
            lbr_classfile::write_program(&dpll.reduced)
        );
    }

    #[test]
    fn session_order_choices_are_sound_and_deterministic() {
        let p = tiny();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        for (order, suffix) in [
            (OrderChoice::Learned, "+order-learned"),
            (OrderChoice::Portfolio, "+order-portfolio"),
        ] {
            let run = || {
                ReductionSession::new(&p, &oracle)
                    .order(order)
                    .run()
                    .expect("order run")
            };
            let a = run();
            // Not `check_report`: its no-growth clause is inapplicable
            // here — dropping a tiny method body swaps in a trivial stub
            // that serializes slightly larger, for every order choice
            // (the baseline included).
            assert!(a.errors_preserved, "{}: lost the error", a.strategy);
            assert!(a.still_valid, "{}: does not verify", a.strategy);
            lbr_classfile::round_trip_verify(&a.reduced).expect("round trip");
            assert!(a.strategy.ends_with(suffix), "got {}", a.strategy);
            let b = run();
            assert_eq!(a.final_metrics, b.final_metrics);
            assert_eq!(a.predicate_calls, b.predicate_calls);
            assert_eq!(a.trace.digest(), b.trace.digest());
            assert_eq!(
                lbr_classfile::write_program(&a.reduced),
                lbr_classfile::write_program(&b.reduced)
            );
        }
    }

    #[test]
    fn session_knobs_reach_the_options() {
        let p = tiny();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        let legacy = ReductionSession::new(&p, &oracle)
            .legacy()
            .run()
            .expect("legacy session");
        assert_eq!(legacy.cache_hits(), 0, "legacy disables the memo");
        let threaded = ReductionSession::new(&p, &oracle)
            .probe_threads(2)
            .run()
            .expect("threaded session");
        assert_eq!(threaded.final_metrics, legacy.final_metrics);
        assert_eq!(threaded.predicate_calls, legacy.predicate_calls);
    }
}
