//! The strategy registrations: every evaluated reducer as a
//! [`ReductionStrategy`] value, assembled into the
//! [`StrategyRegistry`] the pipeline dispatch, the daemon's job specs,
//! the cluster, the fuzzer, and the eval/bench tables all look names up
//! in. One registration here serves all of them — strategy-name strings
//! have exactly one source of truth: each strategy's
//! [`name`](ReductionStrategy::name).
//!
//! Historical aliases (the pre-registry enum spellings and wire strings)
//! stay resolvable so existing job specs, CLI flags, and baselines keep
//! working: `logical` → `logical/greedy`, `logical-min` →
//! `logical/minimized`, `lossy1`/`lossy2` → `lossy-1`/`lossy-2`,
//! `ddmin` → `ddmin-items`, `trace-guided` → `logical/trace-guided`.

use crate::pipeline::probe::OrderKind;
use crate::pipeline::{baselines, guided, logical};
use crate::pipeline::{PipelineError, RunOptions, ServiceHooks};
use lbr_core::{
    CoarseModel, DepGraph, Input, InputModel, InputOracle, LossyPick, ModelStats,
    ReductionStrategy, StrategyCaps, StrategyOutput, StrategyRegistry,
};
use lbr_logic::{Cnf, MsaStrategy, VarSet};
use std::sync::Arc;

/// The paper's reducer: logical model + GBR with the given MSA strategy
/// and the closure-size variable order.
pub(crate) struct LogicalStrategy {
    pub(crate) msa: MsaStrategy,
}

impl<I: Input> ReductionStrategy<I> for LogicalStrategy {
    fn name(&self) -> &str {
        match self.msa {
            MsaStrategy::GreedyClosure => "logical/greedy",
            MsaStrategy::GreedyMinimize => "logical/greedy+min",
            MsaStrategy::DpllMinimize => "logical/dpll+min",
        }
    }

    fn caps(&self) -> StrategyCaps {
        StrategyCaps {
            resumable: true,
            speculative: true,
            per_error: true,
            honors_engine: true,
            honors_order: true,
            uses_model: true,
        }
    }

    fn run(
        &self,
        input: &I,
        oracle: &dyn InputOracle<I>,
        cost: f64,
        options: &RunOptions,
        hooks: ServiceHooks<'_>,
    ) -> Result<StrategyOutput<I>, PipelineError> {
        logical::run_hooked(
            input,
            oracle,
            self.msa,
            OrderKind::ClosureSize,
            cost,
            options,
            hooks,
        )
    }
}

/// The order ablation: GBR with the *natural* (declaration) variable
/// order instead of the closure-size heuristic Theorem 4.5 wants.
pub(crate) struct NaturalOrderStrategy;

impl<I: Input> ReductionStrategy<I> for NaturalOrderStrategy {
    fn name(&self) -> &str {
        "logical/natural-order"
    }

    fn caps(&self) -> StrategyCaps {
        StrategyCaps {
            resumable: true,
            speculative: true,
            honors_engine: true,
            uses_model: true,
            ..StrategyCaps::default()
        }
    }

    fn run(
        &self,
        input: &I,
        oracle: &dyn InputOracle<I>,
        cost: f64,
        options: &RunOptions,
        hooks: ServiceHooks<'_>,
    ) -> Result<StrategyOutput<I>, PipelineError> {
        logical::run_hooked(
            input,
            oracle,
            MsaStrategy::GreedyClosure,
            OrderKind::Natural,
            cost,
            options,
            hooks,
        )
    }
}

/// GBR followed by the local-minimization postpass
/// ([`lbr_core::minimize_solution`]): extra tool runs for a possibly
/// smaller output.
pub(crate) struct MinimizedStrategy;

impl<I: Input> ReductionStrategy<I> for MinimizedStrategy {
    fn name(&self) -> &str {
        "logical/minimized"
    }

    fn caps(&self) -> StrategyCaps {
        StrategyCaps {
            honors_engine: true,
            uses_model: true,
            ..StrategyCaps::default()
        }
    }

    fn run(
        &self,
        input: &I,
        oracle: &dyn InputOracle<I>,
        cost: f64,
        options: &RunOptions,
        _hooks: ServiceHooks<'_>,
    ) -> Result<StrategyOutput<I>, PipelineError> {
        logical::run_minimized(input, oracle, cost, options)
    }
}

/// The J-Reduce baseline: coarse unit graph + Binary Reduction.
pub(crate) struct JReduceStrategy;

impl<I: Input> ReductionStrategy<I> for JReduceStrategy {
    fn name(&self) -> &str {
        "jreduce"
    }

    fn caps(&self) -> StrategyCaps {
        StrategyCaps::default()
    }

    fn run(
        &self,
        input: &I,
        oracle: &dyn InputOracle<I>,
        cost: f64,
        options: &RunOptions,
        _hooks: ServiceHooks<'_>,
    ) -> Result<StrategyOutput<I>, PipelineError> {
        baselines::run_jreduce(input, oracle, cost, options)
    }
}

/// A lossy encoding of the logical model + Binary Reduction.
pub(crate) struct LossyStrategy(pub(crate) LossyPick);

impl<I: Input> ReductionStrategy<I> for LossyStrategy {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn caps(&self) -> StrategyCaps {
        StrategyCaps {
            uses_model: true,
            ..StrategyCaps::default()
        }
    }

    fn run(
        &self,
        input: &I,
        oracle: &dyn InputOracle<I>,
        cost: f64,
        options: &RunOptions,
        _hooks: ServiceHooks<'_>,
    ) -> Result<StrategyOutput<I>, PipelineError> {
        baselines::run_lossy(input, oracle, self.0, cost, options)
    }
}

/// ddmin over items with a validity filter.
pub(crate) struct DdminStrategy;

impl<I: Input> ReductionStrategy<I> for DdminStrategy {
    fn name(&self) -> &str {
        "ddmin-items"
    }

    fn caps(&self) -> StrategyCaps {
        StrategyCaps {
            uses_model: true,
            ..StrategyCaps::default()
        }
    }

    fn run(
        &self,
        input: &I,
        oracle: &dyn InputOracle<I>,
        cost: f64,
        options: &RunOptions,
        _hooks: ServiceHooks<'_>,
    ) -> Result<StrategyOutput<I>, PipelineError> {
        baselines::run_ddmin(input, oracle, cost, options)
    }
}

/// Hierarchical delta debugging over the item containment tree.
pub(crate) struct HddStrategy;

impl<I: Input> ReductionStrategy<I> for HddStrategy {
    fn name(&self) -> &str {
        "hdd"
    }

    fn caps(&self) -> StrategyCaps {
        StrategyCaps {
            uses_model: true,
            ..StrategyCaps::default()
        }
    }

    fn run(
        &self,
        input: &I,
        oracle: &dyn InputOracle<I>,
        cost: f64,
        options: &RunOptions,
        _hooks: ServiceHooks<'_>,
    ) -> Result<StrategyOutput<I>, PipelineError> {
        guided::run_hdd(input, oracle, cost, options)
    }
}

/// Transformation passes (drop whole containment levels, deepest first)
/// before the logical GBR pass.
pub(crate) struct TransformStrategy;

impl<I: Input> ReductionStrategy<I> for TransformStrategy {
    fn name(&self) -> &str {
        "transform"
    }

    fn caps(&self) -> StrategyCaps {
        StrategyCaps {
            honors_engine: true,
            uses_model: true,
            ..StrategyCaps::default()
        }
    }

    fn run(
        &self,
        input: &I,
        oracle: &dyn InputOracle<I>,
        cost: f64,
        options: &RunOptions,
        _hooks: ServiceHooks<'_>,
    ) -> Result<StrategyOutput<I>, PipelineError> {
        guided::run_transform(input, oracle, cost, options)
    }
}

/// The trace-guided GBR mode: a coverage sweep of deletion probes seeds
/// GBR's search space with the covered set, orders its progression by
/// trace frequency, and guides each iteration's boundary search with the
/// previously recorded boundary gap. Runs the scan-based MSA only, so it
/// does not honor the engine choice.
pub(crate) struct TraceGuidedStrategy;

impl<I: Input> ReductionStrategy<I> for TraceGuidedStrategy {
    fn name(&self) -> &str {
        "logical/trace-guided"
    }

    fn caps(&self) -> StrategyCaps {
        StrategyCaps {
            uses_model: true,
            ..StrategyCaps::default()
        }
    }

    fn run(
        &self,
        input: &I,
        oracle: &dyn InputOracle<I>,
        cost: f64,
        options: &RunOptions,
        hooks: ServiceHooks<'_>,
    ) -> Result<StrategyOutput<I>, PipelineError> {
        guided::run_trace_guided(input, oracle, cost, options, hooks)
    }
}

/// The full registry: every built-in strategy under its canonical name,
/// plus the historical aliases. Built fresh per dispatch — registration
/// is a handful of `Arc` allocations.
pub fn strategy_registry<I: Input>() -> StrategyRegistry<I> {
    let mut registry = StrategyRegistry::new();
    registry.register(Arc::new(LogicalStrategy {
        msa: MsaStrategy::GreedyClosure,
    }));
    registry.register(Arc::new(LogicalStrategy {
        msa: MsaStrategy::GreedyMinimize,
    }));
    registry.register(Arc::new(LogicalStrategy {
        msa: MsaStrategy::DpllMinimize,
    }));
    registry.register(Arc::new(NaturalOrderStrategy));
    registry.register(Arc::new(MinimizedStrategy));
    registry.register(Arc::new(JReduceStrategy));
    registry.register(Arc::new(LossyStrategy(LossyPick::FirstFirst)));
    registry.register(Arc::new(LossyStrategy(LossyPick::LastLast)));
    registry.register(Arc::new(DdminStrategy));
    registry.register(Arc::new(HddStrategy));
    registry.register(Arc::new(TransformStrategy));
    registry.register(Arc::new(TraceGuidedStrategy));
    registry.alias("logical", "logical/greedy");
    registry.alias("logical-min", "logical/minimized");
    registry.alias("lossy1", "lossy-1");
    registry.alias("lossy2", "lossy-2");
    registry.alias("ddmin", "ddmin-items");
    registry.alias("trace-guided", "logical/trace-guided");
    registry
}

/// A zero-variable stand-in input: the registry's *contents* (names,
/// aliases, caps) are identical for every format, so name validation and
/// catalog listings instantiate the registry with this instead of
/// committing to a concrete frontend.
#[derive(Debug, Clone, PartialEq)]
struct NullInput;

impl Input for NullInput {
    const FORMAT: &'static str = "null";

    fn model(&self) -> Result<InputModel<'_, Self>, String> {
        Ok(InputModel {
            cnf: Cnf::new(0),
            stats: ModelStats {
                items: 0,
                clauses: 0,
                graph_fraction: 1.0,
            },
            levels: Vec::new(),
            materialize: Box::new(|_: &VarSet| NullInput),
        })
    }

    fn coarse_model(&self) -> CoarseModel<'_, Self> {
        CoarseModel {
            graph: DepGraph::new(0),
            materialize: Box::new(|_: &VarSet| NullInput),
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        Vec::new()
    }

    fn from_bytes(_bytes: &[u8]) -> Result<Self, String> {
        Ok(NullInput)
    }

    fn byte_size(&self) -> usize {
        0
    }

    fn unit_count(&self) -> usize {
        0
    }

    fn validate(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Whether `name` resolves in the built-in registry (canonically or via
/// an alias) — the validation the daemon's job parser and the cluster's
/// job submission use.
pub fn known_strategy(name: &str) -> bool {
    strategy_registry::<NullInput>().contains(name)
}

/// The capability flags of the strategy `name` resolves to (canonically
/// or via an alias), or `None` for unknown names — how the daemon and
/// the cluster dispatch decide whether a job gets the checkpointed,
/// distributable service path.
pub fn strategy_caps(name: &str) -> Option<StrategyCaps> {
    strategy_registry::<NullInput>().get(name).map(|s| s.caps())
}

/// Every built-in strategy's canonical name and capability flags, in
/// registration order — what `reduce --list-strategies` prints and the
/// daemon's `stats` command reports.
pub fn strategy_catalog() -> Vec<(String, StrategyCaps)> {
    strategy_registry::<NullInput>()
        .iter()
        .map(|s| (s.name().to_owned(), s.caps()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_zoo_with_aliases() {
        let registry = strategy_registry::<NullInput>();
        assert_eq!(
            registry.names(),
            [
                "logical/greedy",
                "logical/greedy+min",
                "logical/dpll+min",
                "logical/natural-order",
                "logical/minimized",
                "jreduce",
                "lossy-1",
                "lossy-2",
                "ddmin-items",
                "hdd",
                "transform",
                "logical/trace-guided",
            ]
        );
        for (alias, canonical) in [
            ("logical", "logical/greedy"),
            ("logical-min", "logical/minimized"),
            ("lossy1", "lossy-1"),
            ("lossy2", "lossy-2"),
            ("ddmin", "ddmin-items"),
            ("trace-guided", "logical/trace-guided"),
        ] {
            assert!(known_strategy(alias), "alias {alias} must resolve");
            assert_eq!(registry.get(alias).unwrap().name(), canonical);
        }
        assert!(!known_strategy("no-such-strategy"));
    }

    #[test]
    fn catalog_flags_the_service_capable_strategies() {
        let catalog = strategy_catalog();
        let caps_of = |name: &str| {
            catalog
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert!(caps_of("logical/greedy").resumable);
        assert!(caps_of("logical/greedy").per_error);
        assert!(caps_of("logical/natural-order").speculative);
        assert!(!caps_of("logical/natural-order").honors_order);
        assert!(!caps_of("jreduce").uses_model);
        assert!(caps_of("hdd").uses_model);
        assert!(!caps_of("hdd").resumable);
        assert!(caps_of("logical/trace-guided").uses_model);
        assert!(!caps_of("logical/trace-guided").honors_engine);
        assert!(caps_of("transform").honors_engine);
    }
}
