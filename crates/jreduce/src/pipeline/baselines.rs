//! The evaluated baselines: J-Reduce-style coarse-graph Binary
//! Reduction, the lossy graph encodings, and validity-filtered ddmin —
//! all generic over the input format via [`Input`]'s models.

use crate::pipeline::probe::{wrap_oracle, CandidateProbe};
use crate::pipeline::{PipelineError, RunOptions};
use lbr_core::{
    binary_reduction, closure_size_order, ddmin, lossy_graph, ConcurrentPredicate, DepGraph, Input,
    InputOracle, LatencyLayer, LossyPick, OracleStack, ProbeStats, ReductionTrace, StrategyOutput,
    TestOutcome,
};
use lbr_logic::VarSet;
use std::cell::Cell;
use std::time::Instant;

/// The J-Reduce baseline: coarse unit graph + Binary Reduction over
/// closures.
pub(crate) fn run_jreduce<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost: f64,
    options: &RunOptions,
) -> Result<StrategyOutput<I>, PipelineError> {
    let coarse = input.coarse_model();
    let base = CandidateProbe {
        materialize: &*coarse.materialize,
        oracle,
    };
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let stack = OracleStack::new(&base).with(&latency);
    let last_bytes = Cell::new(0u64);
    let mut predicate = |keep: &VarSet| {
        let probe = stack.probe(keep);
        last_bytes.set(probe.size);
        probe.outcome
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let outcome = binary_reduction(&coarse.graph, &mut wrapped)?;
    let calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    let trace = wrapped.into_trace();
    let reduced = (coarse.materialize)(&outcome.solution);
    Ok(StrategyOutput {
        reduced,
        calls,
        trace,
        model_stats: None,
        probe_stats: ProbeStats::sequential(calls, cache_hits, cache_misses),
    })
}

/// A lossy encoding of the logical model + Binary Reduction.
pub(crate) fn run_lossy<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    pick: LossyPick,
    cost: f64,
    options: &RunOptions,
) -> Result<StrategyOutput<I>, PipelineError> {
    let model = input.model().map_err(PipelineError::Model)?;
    let stats = model.stats;
    let order = closure_size_order(&model.cnf);
    let lg = lossy_graph(&model.cnf, &order, pick).ok_or(PipelineError::LossyContradiction)?;
    if !lg.forbidden.is_empty() {
        // Our models generate no purely negative clauses, so a non-empty
        // forbidden set indicates a contradictory encoding.
        return Err(PipelineError::LossyContradiction);
    }
    let graph: DepGraph = lg.graph;
    let base = CandidateProbe {
        materialize: &*model.materialize,
        oracle,
    };
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let stack = OracleStack::new(&base).with(&latency);
    let last_bytes = Cell::new(0u64);
    let mut predicate = |keep: &VarSet| {
        let probe = stack.probe(keep);
        last_bytes.set(probe.size);
        probe.outcome
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let outcome = binary_reduction(&graph, &mut wrapped)?;
    let calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    let trace = wrapped.into_trace();
    let reduced = (model.materialize)(&outcome.solution);
    Ok(StrategyOutput {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        probe_stats: ProbeStats::sequential(calls, cache_hits, cache_misses),
    })
}

/// ddmin over items with a validity filter: invalid candidates answer
/// "don't know" without running (or counting) a tool invocation.
pub(crate) fn run_ddmin<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost: f64,
    options: &RunOptions,
) -> Result<StrategyOutput<I>, PipelineError> {
    let model = input.model().map_err(PipelineError::Model)?;
    let stats = model.stats;
    let n = model.cnf.num_vars();
    let atoms: Vec<VarSet> = (0..n as u32)
        .map(|i| VarSet::from_iter_with_universe(n, [lbr_logic::Var::new(i)]))
        .collect();
    let cnf = &model.cnf;
    let base = CandidateProbe {
        materialize: &*model.materialize,
        oracle,
    };
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let stack = OracleStack::new(&base).with(&latency);
    let mut trace = ReductionTrace::new();
    let mut calls = 0u64;
    let start = Instant::now();
    let (solution, _stats) = ddmin(&atoms, n, |keep| {
        if !cnf.eval(keep) {
            return TestOutcome::Unresolved; // invalid — "don't know"
        }
        calls += 1;
        let probe = stack.probe(keep);
        trace.record(
            calls,
            start.elapsed().as_secs_f64(),
            calls as f64 * cost,
            probe.size,
            probe.outcome,
        );
        if probe.outcome {
            TestOutcome::Fail
        } else {
            TestOutcome::Pass
        }
    });
    let reduced = (model.materialize)(&solution);
    Ok(StrategyOutput {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        probe_stats: ProbeStats::sequential(calls, 0, 0),
    })
}
