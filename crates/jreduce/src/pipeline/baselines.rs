//! The evaluated baselines: J-Reduce's class-graph Binary Reduction, the
//! lossy graph encodings, and validity-filtered ddmin.

use crate::classgraph::ClassGraph;
use crate::model::build_model;
use crate::pipeline::probe::{wrap_oracle, CandidateProbe, RunParts};
use crate::pipeline::{PipelineError, RunOptions};
use crate::reducer::reduce_program;
use lbr_classfile::Program;
use lbr_core::{
    binary_reduction, closure_size_order, ddmin, lossy_graph, ConcurrentPredicate, DepGraph,
    LatencyLayer, LossyPick, OracleStack, ProbeStats, ReductionTrace, TestOutcome,
};
use lbr_decompiler::DecompilerOracle;
use lbr_logic::VarSet;
use std::cell::Cell;
use std::time::Instant;

/// The J-Reduce baseline: class graph + Binary Reduction over closures.
pub(crate) fn run_jreduce(
    program: &Program,
    oracle: &DecompilerOracle,
    cost: f64,
    options: &RunOptions,
) -> Result<RunParts, PipelineError> {
    let cg = ClassGraph::new(program);
    let materialize = |keep: &VarSet| cg.subset_program(program, keep);
    let base = CandidateProbe {
        materialize: &materialize,
        oracle,
    };
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let stack = OracleStack::new(&base).with(&latency);
    let last_bytes = Cell::new(0u64);
    let mut predicate = |keep: &VarSet| {
        let probe = stack.probe(keep);
        last_bytes.set(probe.size);
        probe.outcome
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let outcome = binary_reduction(&cg.graph, &mut wrapped)?;
    let calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    let trace = wrapped.into_trace();
    let reduced = cg.subset_program(program, &outcome.solution);
    Ok(RunParts {
        reduced,
        calls,
        trace,
        model_stats: None,
        probe_stats: ProbeStats::sequential(calls, cache_hits, cache_misses),
    })
}

/// A lossy encoding of the logical model + Binary Reduction.
pub(crate) fn run_lossy(
    program: &Program,
    oracle: &DecompilerOracle,
    pick: LossyPick,
    cost: f64,
    options: &RunOptions,
) -> Result<RunParts, PipelineError> {
    let model = build_model(program)?;
    let stats = model.stats();
    let order = closure_size_order(&model.cnf);
    let lg = lossy_graph(&model.cnf, &order, pick).ok_or(PipelineError::LossyContradiction)?;
    if !lg.forbidden.is_empty() {
        // Our models generate no purely negative clauses, so a non-empty
        // forbidden set indicates a contradictory encoding.
        return Err(PipelineError::LossyContradiction);
    }
    let graph: DepGraph = lg.graph;
    let registry = &model.registry;
    let materialize = |keep: &VarSet| reduce_program(program, registry, keep);
    let base = CandidateProbe {
        materialize: &materialize,
        oracle,
    };
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let stack = OracleStack::new(&base).with(&latency);
    let last_bytes = Cell::new(0u64);
    let mut predicate = |keep: &VarSet| {
        let probe = stack.probe(keep);
        last_bytes.set(probe.size);
        probe.outcome
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let outcome = binary_reduction(&graph, &mut wrapped)?;
    let calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    let trace = wrapped.into_trace();
    let reduced = reduce_program(program, registry, &outcome.solution);
    Ok(RunParts {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        probe_stats: ProbeStats::sequential(calls, cache_hits, cache_misses),
    })
}

/// ddmin over items with a validity filter: invalid candidates answer
/// "don't know" without running (or counting) a tool invocation.
pub(crate) fn run_ddmin(
    program: &Program,
    oracle: &DecompilerOracle,
    cost: f64,
    options: &RunOptions,
) -> Result<RunParts, PipelineError> {
    let model = build_model(program)?;
    let stats = model.stats();
    let registry = &model.registry;
    let n = registry.len();
    let atoms: Vec<VarSet> = (0..n as u32)
        .map(|i| VarSet::from_iter_with_universe(n, [lbr_logic::Var::new(i)]))
        .collect();
    let cnf = &model.cnf;
    let materialize = |keep: &VarSet| reduce_program(program, registry, keep);
    let base = CandidateProbe {
        materialize: &materialize,
        oracle,
    };
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let stack = OracleStack::new(&base).with(&latency);
    let mut trace = ReductionTrace::new();
    let mut calls = 0u64;
    let start = Instant::now();
    let (solution, _stats) = ddmin(&atoms, n, |keep| {
        if !cnf.eval(keep) {
            return TestOutcome::Unresolved; // invalid — "don't know"
        }
        calls += 1;
        let probe = stack.probe(keep);
        trace.record(
            calls,
            start.elapsed().as_secs_f64(),
            calls as f64 * cost,
            probe.size,
            probe.outcome,
        );
        if probe.outcome {
            TestOutcome::Fail
        } else {
            TestOutcome::Pass
        }
    });
    let reduced = reduce_program(program, registry, &solution);
    Ok(RunParts {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        probe_stats: ProbeStats::sequential(calls, 0, 0),
    })
}
