//! The probe path shared by every reduction stage: the base predicate
//! (materialize a candidate input, run the tool) plus the standard
//! per-run oracle wrapper.
//!
//! Middleware concerns — the cross-run probe cache and emulated tool
//! latency — are *not* hand-rolled here anymore: stages assemble an
//! [`OracleStack`](lbr_core::OracleStack) of
//! [`CacheLayer`](lbr_core::CacheLayer) /
//! [`LatencyLayer`](lbr_core::LatencyLayer) over [`CandidateProbe`] and
//! hand the stack to whichever driver they use (the sequential
//! [`Oracle`], the speculative scheduler, or ddmin).

use crate::pipeline::RunOptions;
use lbr_core::{ConcurrentPredicate, Input, InputOracle, Oracle, Probe};
use lbr_logic::VarSet;

/// The base of every oracle stack: builds the candidate input for a
/// keep-set, tests it against the tool oracle, and measures its bytes —
/// all from borrowed shared state, pure per probe, so many workers can
/// probe one instance concurrently. Generic over the input format.
///
/// Public so out-of-process probe evaluators (the cluster's worker
/// nodes) can assemble the *exact* predicate the pipeline uses — same
/// materialization, same oracle check, same byte-size metric — which is
/// what keeps remotely computed verdicts bit-identical to local ones.
pub struct CandidateProbe<'a, I, O: ?Sized> {
    /// Keep-set → candidate input (item-level reducer or coarse-graph
    /// subset, depending on the stage).
    pub materialize: &'a (dyn Fn(&VarSet) -> I + Sync),
    /// The tool oracle the candidate is tested against.
    pub oracle: &'a O,
}

impl<I: Input, O: InputOracle<I> + ?Sized> ConcurrentPredicate for CandidateProbe<'_, I, O> {
    fn probe(&self, keep: &VarSet) -> Probe {
        let candidate = (self.materialize)(keep);
        Probe {
            outcome: self.oracle.preserves_failure(&candidate),
            size: candidate.byte_size() as u64,
        }
    }
}

/// Sleeps for the emulated tool-invocation latency (no-op at 0). Probe
/// paths that flow through an [`lbr_core::OracleStack`] use
/// [`lbr_core::LatencyLayer`] instead; this free function serves the
/// per-error sweep, whose probes carry error *sets* rather than [`Probe`]s.
pub(crate) fn emulate_tool_latency(micros: u64) {
    if micros > 0 {
        std::thread::sleep(std::time::Duration::from_micros(micros));
    }
}

/// Builds the standard per-run oracle wrapper (size metric + optional
/// memo) around a keep-set predicate.
pub(crate) fn wrap_oracle<'p>(
    predicate: &'p mut dyn lbr_core::Predicate,
    cost: f64,
    size_of: impl Fn(&VarSet) -> u64 + 'p,
    options: &RunOptions,
) -> Oracle<'p> {
    let wrapped = Oracle::new(predicate, cost).with_size_metric(size_of);
    if options.memoize {
        wrapped.with_memo()
    } else {
        wrapped
    }
}

/// Which variable order GBR uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OrderKind {
    ClosureSize,
    Natural,
}
