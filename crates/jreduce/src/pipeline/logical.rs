//! The paper's reducer: logical model + Generalized Binary Reduction,
//! with optional service hooks (external cache, cancellation,
//! checkpoint/resume) and the minimization postpass variant. Generic
//! over the input format: the frontend's [`Input::model`] supplies the
//! CNF and the solution applier.

use crate::pipeline::probe::{wrap_oracle, CandidateProbe, OrderKind};
use crate::pipeline::{OrderChoice, PipelineError, RunOptions, ServiceHooks};
use lbr_core::{
    activity_order, closure_size_order, generalized_binary_reduction,
    generalized_binary_reduction_controlled, generalized_binary_reduction_portfolio_controlled,
    generalized_binary_reduction_speculative_controlled, generalized_binary_reduction_with_source,
    history_order, probe_activity, CacheLayer, ConcurrentPredicate, GbrConfig, GbrControl, Input,
    InputOracle, Instance, LatencyLayer, OracleStack, ProbeStats, SpeculationConfig,
    StrategyOutput,
};
use lbr_logic::{MsaStrategy, VarSet};
use std::cell::Cell;

/// Conflict-budget for the deterministic activity probe behind
/// [`OrderChoice::Learned`] and the portfolio's activity member: how many
/// deepest-closure variables are stress-assumed. Solver-only work — zero
/// predicate calls.
const ACTIVITY_PROBES: usize = 8;

/// GBR over the logical model. The oracle middleware is assembled here:
/// `[cache?, latency]` over the base candidate probe, beneath the per-run
/// memo/trace bookkeeping of either the sequential [`lbr_core::Oracle`]
/// or the speculative scheduler — so cache hits never sleep and memoized
/// repeats never reach the stack at all.
pub(crate) fn run_hooked<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    msa: MsaStrategy,
    order_kind: OrderKind,
    cost: f64,
    options: &RunOptions,
    mut hooks: ServiceHooks<'_>,
) -> Result<StrategyOutput<I>, PipelineError> {
    let model = input.model().map_err(PipelineError::Model)?;
    let stats = model.stats;
    let order = match order_kind {
        OrderKind::ClosureSize => match options.order {
            OrderChoice::Learned => {
                activity_order(&model.cnf, &probe_activity(&model.cnf, ACTIVITY_PROBES))
            }
            OrderChoice::Baseline | OrderChoice::Portfolio => closure_size_order(&model.cnf),
        },
        OrderKind::Natural => lbr_core::natural_order(&model.cnf),
    };
    let instance = Instance::over_all_vars(model.cnf.clone());
    let config = GbrConfig {
        msa_strategy: msa,
        propagation: options.propagation,
        engine: options.engine,
        ..GbrConfig::default()
    };
    let mut control = GbrControl {
        cancel: hooks.cancel,
        checkpoint: hooks.checkpoint.take(),
        resume: hooks.resume.take(),
    };
    let base = CandidateProbe {
        materialize: &*model.materialize,
        oracle,
    };
    let cache_layer = hooks.cache.map(CacheLayer::new);
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let mut stack = OracleStack::new(&base);
    if let Some(layer) = &cache_layer {
        stack.push(layer);
    }
    stack.push(&latency);
    if options.order == OrderChoice::Portfolio && matches!(order_kind, OrderKind::ClosureSize) {
        // Checkpoint/resume snapshots are per-order state and do not
        // compose with a portfolio race; a resume snapshot instead feeds
        // the cache-history member's weights (variables that earlier
        // progress kept are likely required again), and the checkpoint
        // hook is not called. Cancellation is honored.
        let history = control.resume.take();
        let mut weights = vec![0u64; model.cnf.num_vars()];
        if let Some(ck) = &history {
            for l in &ck.learned {
                for v in l.iter() {
                    weights[v.index()] += 1;
                }
            }
            if let Some(best) = &ck.best {
                for v in best.iter() {
                    weights[v.index()] += 1;
                }
            }
        }
        let orders = [
            order.clone(),
            activity_order(&model.cnf, &probe_activity(&model.cnf, ACTIVITY_PROBES)),
            history_order(&model.cnf, &weights),
        ];
        let spec = SpeculationConfig {
            threads: options.probe_threads.max(1),
            width: 0,
            cost_per_call_secs: cost,
        };
        let mut race_control = GbrControl {
            cancel: control.cancel,
            ..GbrControl::default()
        };
        let race = generalized_binary_reduction_portfolio_controlled(
            &instance,
            &orders,
            &stack,
            &config,
            &spec,
            &mut race_control,
        )?;
        let reduced = (model.materialize)(&race.run.outcome.solution);
        return Ok(StrategyOutput {
            reduced,
            calls: race.run.stats.useful_calls,
            trace: race.run.trace,
            model_stats: Some(stats),
            probe_stats: race.run.stats,
        });
    }
    if let Some(dist) = hooks.distributor {
        // Cluster backend: GBR demands verdicts from the distributor's
        // remote frontier instead of a local scheduler. The driving
        // thread computes unclaimed probes inline against the local
        // stack (through `open_frontier`'s fallback), so the run makes
        // progress at any worker count — including zero.
        let spec = SpeculationConfig {
            threads: 1,
            width: dist.frontier_width().max(options.probe_threads.max(1)),
            cost_per_call_secs: cost,
        };
        let source = dist.open_frontier(&stack);
        let run = generalized_binary_reduction_with_source(
            &instance,
            &order,
            &*source,
            &config,
            &spec,
            &mut control,
        )?;
        let reduced = (model.materialize)(&run.outcome.solution);
        return Ok(StrategyOutput {
            reduced,
            calls: run.stats.useful_calls,
            trace: run.trace,
            model_stats: Some(stats),
            probe_stats: run.stats,
        });
    }
    if options.probe_threads > 1 {
        // Speculative parallel probing: the scheduler's concurrent memo
        // subsumes the oracle memo (distinct demanded subsets run the tool
        // once either way), so the same deterministic hit/miss counts come
        // back in the stats.
        let spec = SpeculationConfig {
            threads: options.probe_threads,
            width: 0,
            cost_per_call_secs: cost,
        };
        let run = generalized_binary_reduction_speculative_controlled(
            &instance,
            &order,
            &stack,
            &config,
            &spec,
            &mut control,
        )?;
        let reduced = (model.materialize)(&run.outcome.solution);
        return Ok(StrategyOutput {
            reduced,
            calls: run.stats.useful_calls,
            trace: run.trace,
            model_stats: Some(stats),
            probe_stats: run.stats,
        });
    }
    let last_bytes = Cell::new(0u64);
    let mut predicate = |keep: &VarSet| {
        let probe = stack.probe(keep);
        last_bytes.set(probe.size);
        probe.outcome
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let outcome = generalized_binary_reduction_controlled(
        &instance,
        &order,
        &mut wrapped,
        &config,
        &mut control,
    )?;
    let calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    let trace = wrapped.into_trace();
    let reduced = (model.materialize)(&outcome.solution);
    Ok(StrategyOutput {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        probe_stats: ProbeStats::sequential(calls, cache_hits, cache_misses),
    })
}

/// GBR followed by the local-minimization postpass: extra tool runs for a
/// possibly smaller output.
pub(crate) fn run_minimized<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost: f64,
    options: &RunOptions,
) -> Result<StrategyOutput<I>, PipelineError> {
    let model = input.model().map_err(PipelineError::Model)?;
    let stats = model.stats;
    let order = closure_size_order(&model.cnf);
    let instance = Instance::over_all_vars(model.cnf.clone());
    let base = CandidateProbe {
        materialize: &*model.materialize,
        oracle,
    };
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let stack = OracleStack::new(&base).with(&latency);
    let last_bytes = Cell::new(0u64);
    let mut predicate = |keep: &VarSet| {
        let probe = stack.probe(keep);
        last_bytes.set(probe.size);
        probe.outcome
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let config = GbrConfig {
        propagation: options.propagation,
        engine: options.engine,
        ..GbrConfig::default()
    };
    let outcome = generalized_binary_reduction(&instance, &order, &mut wrapped, &config)?;
    let (minimized, _stats) =
        lbr_core::minimize_solution(&instance, &order, &mut wrapped, &outcome.solution);
    let calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    let trace = wrapped.into_trace();
    let reduced = (model.materialize)(&minimized);
    Ok(StrategyOutput {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        probe_stats: ProbeStats::sequential(calls, cache_hits, cache_misses),
    })
}
