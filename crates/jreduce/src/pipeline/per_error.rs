//! The per-error sweep: one GBR search per distinct baseline error, all
//! sharing one run-once probe cache. Generic over the input format.

use crate::pipeline::probe::emulate_tool_latency;
use crate::pipeline::{PipelineError, RunOptions, SizeMetrics};
use lbr_core::{
    closure_size_order, generalized_binary_reduction, GbrConfig, Input, InputOracle, Instance,
    Oracle, ReductionTrace, ShardedMemo,
};
use lbr_logic::VarSet;
use std::cell::Cell;
use std::collections::BTreeSet;

/// The result of a per-error reduction sweep.
#[derive(Debug, Clone)]
pub struct PerErrorReport {
    /// One `(error message, reduced size)` row per distinct baseline
    /// error, in message order.
    pub errors: Vec<(String, SizeMetrics)>,
    /// The traces of all searches, concatenated sequentially (the way the
    /// paper's long-running cases accumulate "951 decompilations …").
    pub combined_trace: ReductionTrace,
    /// Total predicate invocations across all searches.
    pub total_calls: u64,
    /// Probes answered by the shared error cache without re-running the
    /// tool. The searches all start from the same instance, so every
    /// search after the first begins with guaranteed hits.
    pub cache_hits: u64,
    /// Probes that actually decompiled a candidate.
    pub cache_misses: u64,
}

impl PerErrorReport {
    /// Fraction of probes served from the cache (`0.0` when disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The per-error sweep. Each baseline error's GBR search is independent,
/// so workers claim error indices atomically and write results into
/// per-error slots; the report is assembled in baseline order afterwards.
/// One worker (the `probe_threads: 1` default) processes the errors
/// strictly in order; more workers run searches concurrently with
/// identical output — rows, traces, call counts and cache totals — because
/// the shared run-once memo computes each distinct subset exactly once
/// under any interleaving.
pub(crate) fn run_sweep<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost_per_call_secs: f64,
    options: &RunOptions,
) -> Result<PerErrorReport, PipelineError> {
    if !oracle.is_failing() {
        return Err(PipelineError::NotFailing);
    }
    let model = input.model().map_err(PipelineError::Model)?;
    let order = closure_size_order(&model.cnf);
    let instance = Instance::over_all_vars(model.cnf.clone());
    let materialize = &*model.materialize;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let errors: Vec<String> = oracle.baseline().iter().cloned().collect();
    // Shared across all searches: keep-set → (error messages, bytes). The
    // run-once claim discipline makes the hit/miss totals deterministic
    // (misses = distinct subsets probed) at any worker count: later
    // searches hit what earlier ones cached.
    let shared: Option<ShardedMemo<(BTreeSet<String>, u64)>> = options
        .memoize
        .then(|| ShardedMemo::new(4 * options.probe_threads));
    type Slot = Result<((String, SizeMetrics), ReductionTrace, u64), PipelineError>;
    let slots: Vec<Mutex<Option<Slot>>> = errors.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = options.probe_threads.min(errors.len()).max(1);
    let config = GbrConfig {
        propagation: options.propagation,
        ..GbrConfig::default()
    };
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(error) = errors.get(i) else {
                    break;
                };
                let run_probe = |keep: &VarSet| {
                    let candidate = materialize(keep);
                    emulate_tool_latency(options.probe_latency_micros);
                    (oracle.errors(&candidate), candidate.byte_size() as u64)
                };
                // The probe computes error set and size together; the size
                // metric reads the bytes of the probe that just ran instead
                // of probing again.
                let last_bytes = Cell::new(0u64);
                let mut predicate = |keep: &VarSet| {
                    let (errs, bytes) = match &shared {
                        Some(memo) => memo.get_or_compute(keep, || run_probe(keep)),
                        None => run_probe(keep),
                    };
                    last_bytes.set(bytes);
                    errs.contains(error)
                };
                let mut wrapped = Oracle::new(&mut predicate, cost_per_call_secs)
                    .with_size_metric(|_| last_bytes.get());
                let outcome =
                    generalized_binary_reduction(&instance, &order, &mut wrapped, &config);
                let slot: Slot = outcome.map_err(PipelineError::from).map(|out| {
                    let reduced = materialize(&out.solution);
                    (
                        (error.clone(), SizeMetrics::of(&reduced)),
                        wrapped.trace().clone(),
                        wrapped.calls(),
                    )
                });
                *slots[i].lock().expect("per-error slot") = Some(slot);
            });
        }
    });
    let mut rows = Vec::new();
    let mut combined_trace = ReductionTrace::new();
    let mut total_calls = 0u64;
    for slot in slots {
        let (row, trace, calls) = slot
            .into_inner()
            .expect("per-error slot")
            .expect("worker wrote slot")?;
        rows.push(row);
        combined_trace.append_sequential(&trace);
        total_calls += calls;
    }
    Ok(PerErrorReport {
        errors: rows,
        combined_trace,
        total_calls,
        cache_hits: shared.as_ref().map_or(0, |m| m.hits()),
        cache_misses: shared.as_ref().map_or(0, |m| m.misses()),
    })
}
