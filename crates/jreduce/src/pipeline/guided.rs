//! The baseline zoo's new members: hierarchical delta debugging over the
//! item containment tree, ReduKtor-style transformation passes before
//! logical reduction, and the trace-guided GBR mode fed by the
//! [`TraceLayer`]'s coverage recorder.
//!
//! All three run over the same fine logical model as the paper's
//! reducer, differing only in *which candidates* they probe:
//!
//! * **HDD** sweeps the containment tree level by level
//!   ([`InputModel::levels`]), running validity-filtered ddmin over each
//!   level's items with deeper items pruned to their dependencies,
//! * **transform** first tries bulk simplifying rewrites (drop a whole
//!   containment level at once, deepest first — the "replace bodies with
//!   stubs" pass of the ReduKtor lineage), then hands the shrunken
//!   search space to GBR as a synthetic resume checkpoint,
//! * **trace-guided** runs a cheap coverage sweep of deletion probes
//!   *under a trace recorder*, then seeds GBR's search space with the
//!   covered set (the intersection of the failure-preserving probes'
//!   keep-sets) and orders its progression by per-item trace frequency
//!   ([`history_order`]).

use crate::pipeline::probe::{wrap_oracle, CandidateProbe};
use crate::pipeline::{PipelineError, RunOptions, ServiceHooks};
use lbr_core::{
    build_progression, closure_size_order, ddmin, generalized_binary_reduction_controlled,
    history_order, ConcurrentPredicate, DepGraph, GbrCheckpoint, GbrConfig, GbrControl, GbrError,
    Input, InputOracle, Instance, LatencyLayer, OracleStack, Predicate, ProbeStats, ReductionTrace,
    StrategyOutput, TestOutcome, TraceLayer,
};
use lbr_logic::{ClauseShape, Cnf, MsaStrategy, Var, VarSet};
use std::cell::Cell;
use std::time::Instant;

/// Per-variable dependency closures over the edge-shaped clauses of the
/// model (the same edges [`closure_size_order`] ranks by). Used to prune
/// hierarchical candidates: removing an item also removes everything
/// whose edge-dependencies it breaks.
fn edge_closures(cnf: &Cnf) -> Vec<VarSet> {
    let n = cnf.num_vars();
    let mut graph = DepGraph::new(n);
    for c in cnf.clauses() {
        if let ClauseShape::Edge { from, to } = c.shape() {
            graph.add_edge(from, to);
        }
    }
    (0..n)
        .map(|i| graph.closure_of([Var::new(i as u32)]))
        .collect()
}

/// The largest subset of `candidate` whose edge-dependencies are all
/// inside `candidate`. One pass suffices: closures are transitive, so a
/// variable whose full closure fits survives together with that closure.
fn prune_to_deps(candidate: &VarSet, closures: &[VarSet]) -> VarSet {
    let mut pruned = VarSet::empty(closures.len());
    for v in candidate.iter() {
        if closures[v.index()].is_subset(candidate) {
            pruned.insert(v);
        }
    }
    pruned
}

/// The per-variable containment levels, padded defensively to the model's
/// variable count (a frontend reporting no hierarchy gets one flat level).
fn model_levels(levels: &[u8], n: usize) -> Vec<u8> {
    if levels.len() == n {
        levels.to_vec()
    } else {
        vec![0; n]
    }
}

/// Hierarchical delta debugging over the item containment tree: ddmin at
/// each containment level, coarsest first, with candidates pruned to
/// their edge-dependencies and validity-filtered against the full model
/// (invalid candidates answer "don't know" without a tool run, exactly
/// like the flat ddmin baseline).
pub(crate) fn run_hdd<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost: f64,
    options: &RunOptions,
) -> Result<StrategyOutput<I>, PipelineError> {
    let model = input.model().map_err(PipelineError::Model)?;
    let stats = model.stats;
    let cnf = &model.cnf;
    let n = cnf.num_vars();
    let levels = model_levels(&model.levels, n);
    let closures = edge_closures(cnf);
    let base = CandidateProbe {
        materialize: &*model.materialize,
        oracle,
    };
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let stack = OracleStack::new(&base).with(&latency);
    let mut trace = ReductionTrace::new();
    let mut calls = 0u64;
    let start = Instant::now();
    let mut keep = VarSet::full(n);
    let max_level = levels.iter().copied().max().unwrap_or(0);
    for level in 0..=max_level {
        let level_vars: Vec<Var> = keep.iter().filter(|v| levels[v.index()] == level).collect();
        if level_vars.is_empty() {
            continue;
        }
        let atoms: Vec<VarSet> = level_vars
            .iter()
            .map(|&v| VarSet::from_iter_with_universe(n, [v]))
            .collect();
        let mut fixed = keep.clone();
        for &v in &level_vars {
            fixed.remove(v);
        }
        let (solution, _stats) = ddmin(&atoms, n, |selected| {
            let candidate = prune_to_deps(&fixed.union(selected), &closures);
            if !cnf.eval(&candidate) {
                return TestOutcome::Unresolved; // invalid — "don't know"
            }
            calls += 1;
            let probe = stack.probe(&candidate);
            trace.record(
                calls,
                start.elapsed().as_secs_f64(),
                calls as f64 * cost,
                probe.size,
                probe.outcome,
            );
            if probe.outcome {
                TestOutcome::Fail
            } else {
                TestOutcome::Pass
            }
        });
        keep = prune_to_deps(&fixed.union(&solution), &closures);
    }
    let reduced = (model.materialize)(&keep);
    Ok(StrategyOutput {
        reduced,
        calls,
        trace,
        model_stats: Some(stats),
        probe_stats: ProbeStats::sequential(calls, 0, 0),
    })
}

/// Transformation passes before logical reduction: try dropping each
/// whole containment level (deepest first — "stub every body" before
/// "drop every member"), keep the rewrites that preserve the failure,
/// then run GBR with the transformed input as a synthetic resume
/// checkpoint so the search starts from the already-shrunken space.
pub(crate) fn run_transform<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost: f64,
    options: &RunOptions,
) -> Result<StrategyOutput<I>, PipelineError> {
    let model = input.model().map_err(PipelineError::Model)?;
    let stats = model.stats;
    let cnf = &model.cnf;
    let n = cnf.num_vars();
    let levels = model_levels(&model.levels, n);
    let closures = edge_closures(cnf);
    let base = CandidateProbe {
        materialize: &*model.materialize,
        oracle,
    };
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let stack = OracleStack::new(&base).with(&latency);
    let mut trace = ReductionTrace::new();
    let mut calls = 0u64;
    let start = Instant::now();
    let mut keep = VarSet::full(n);
    let max_level = levels.iter().copied().max().unwrap_or(0);
    for level in (1..=max_level).rev() {
        let mut candidate = keep.clone();
        for v in keep.iter() {
            if levels[v.index()] == level {
                candidate.remove(v);
            }
        }
        let candidate = prune_to_deps(&candidate, &closures);
        if candidate == keep || !cnf.eval(&candidate) {
            continue;
        }
        calls += 1;
        let probe = stack.probe(&candidate);
        trace.record(
            calls,
            start.elapsed().as_secs_f64(),
            calls as f64 * cost,
            probe.size,
            probe.outcome,
        );
        if probe.outcome {
            keep = candidate;
        }
    }
    // The logical pass: GBR over the full model, resumed from the
    // transformed keep-set (a valid failing input by construction — every
    // adopted rewrite was probed).
    let order = closure_size_order(cnf);
    let instance = Instance::over_all_vars(model.cnf.clone());
    let config = GbrConfig {
        propagation: options.propagation,
        engine: options.engine,
        ..GbrConfig::default()
    };
    let mut control = GbrControl::default();
    if keep.len() < n {
        control.resume = Some(GbrCheckpoint {
            iterations: 0,
            learned: Vec::new(),
            search_space: keep.clone(),
            best: Some(keep),
        });
    }
    let last_bytes = Cell::new(0u64);
    let mut predicate = |k: &VarSet| {
        let probe = stack.probe(k);
        last_bytes.set(probe.size);
        probe.outcome
    };
    let mut wrapped = wrap_oracle(&mut predicate, cost, |_| last_bytes.get(), options);
    let outcome = generalized_binary_reduction_controlled(
        &instance,
        &order,
        &mut wrapped,
        &config,
        &mut control,
    )?;
    let gbr_calls = wrapped.calls();
    let (cache_hits, cache_misses) = (wrapped.cache_hits(), wrapped.cache_misses());
    trace.append_sequential(&wrapped.into_trace());
    let total = calls + gbr_calls;
    let reduced = (model.materialize)(&outcome.solution);
    Ok(StrategyOutput {
        reduced,
        calls: total,
        trace,
        model_stats: Some(stats),
        probe_stats: ProbeStats::sequential(total, cache_hits, cache_misses),
    })
}

/// The trace-guided GBR mode. Phase A runs Binary Reduction over the
/// lossy-1 graph encoding — cheap, and sound for our models — with a
/// [`TraceLayer`] recording per-probe coverage (optionally backed by the
/// service cache as a cross-run trace store). Phase B runs GBR with its
/// search space seeded from the covered set and its progression ordered
/// by trace frequency: items that most failing probes kept are probably
/// required, so they surface in early progression entries and the binary
/// search localizes the rest in fewer probes.
pub(crate) fn run_trace_guided<I: Input, O: InputOracle<I> + ?Sized>(
    input: &I,
    oracle: &O,
    cost: f64,
    options: &RunOptions,
    hooks: ServiceHooks<'_>,
) -> Result<StrategyOutput<I>, PipelineError> {
    let model = input.model().map_err(PipelineError::Model)?;
    let stats = model.stats;
    let cnf = &model.cnf;
    let n = cnf.num_vars();
    let base = CandidateProbe {
        materialize: &*model.materialize,
        oracle,
    };
    let trace_layer = match hooks.cache {
        Some(store) => TraceLayer::with_store(n, store),
        None => TraceLayer::new(n),
    };
    let latency = LatencyLayer::new(options.probe_latency_micros);
    let mut stack = OracleStack::new(&base);
    stack.push(&trace_layer);
    stack.push(&latency);
    // Phase A: a coverage sweep of deletion probes. Slice the remaining
    // items into contiguous index runs (frontends number items unit by
    // unit, so a slice is roughly a run of whole classes or functions),
    // probe the dep-pruned complement of each slice, and intersect the
    // failing complements: the items every failure-preserving probe kept
    // are the covered set — coverage-based debloating's prior, recast
    // over keep-sets — and become Phase B's search space. A handful of
    // probes localizes the failure to a fraction of the items, so GBR's
    // progressions and binary searches run over a far shorter list than
    // a cold start's.
    let closures = edge_closures(cnf);
    let mut trace = ReductionTrace::new();
    let start = Instant::now();
    let mut calls_a = 0u64;
    let cancelled = || hooks.cancel.is_some_and(|c| c());
    {
        const SLICES: usize = 6;
        const ROUNDS: usize = 2;
        let mut survivor = VarSet::full(n);
        'sweep: for _round in 0..ROUNDS {
            let vars: Vec<Var> = survivor.iter().collect();
            if vars.len() < 2 * SLICES {
                break;
            }
            let mut intersection = survivor.clone();
            let mut smallest_failing: Option<VarSet> = None;
            for slice in vars.chunks(vars.len().div_ceil(SLICES)) {
                if cancelled() {
                    break 'sweep;
                }
                let mut candidate = survivor.clone();
                for &v in slice {
                    candidate.remove(v);
                }
                let candidate = prune_to_deps(&candidate, &closures);
                if candidate == survivor || candidate.is_empty() || !cnf.eval(&candidate) {
                    continue;
                }
                calls_a += 1;
                let probe = stack.probe(&candidate);
                trace.record(
                    calls_a,
                    start.elapsed().as_secs_f64(),
                    calls_a as f64 * cost,
                    probe.size,
                    probe.outcome,
                );
                if probe.outcome {
                    intersection.intersect_with(&candidate);
                    if smallest_failing
                        .as_ref()
                        .is_none_or(|s| candidate.len() < s.len())
                    {
                        smallest_failing = Some(candidate);
                    }
                }
            }
            let Some(smallest) = smallest_failing else {
                break; // every complement passed — no localization signal
            };
            let candidate = prune_to_deps(&intersection, &closures);
            if candidate == survivor || !cnf.eval(&candidate) {
                break;
            }
            if candidate == smallest {
                survivor = candidate; // already probed failing this round
                continue;
            }
            // Distinct failing complements may each hold a different
            // instance of the error, so verify the intersection still
            // fails before recursing into it.
            if cancelled() {
                break;
            }
            calls_a += 1;
            let probe = stack.probe(&candidate);
            trace.record(
                calls_a,
                start.elapsed().as_secs_f64(),
                calls_a as f64 * cost,
                probe.size,
                probe.outcome,
            );
            if !probe.outcome {
                break;
            }
            survivor = candidate;
        }
    }
    // Phase B: GBR with a trace-guided boundary search. The sweep's
    // covered set seeds the search space, its frequencies order the
    // progression, and — the trace's second dividend — each iteration's
    // binary search is replaced by a backward gallop from the end of the
    // progression, started at the boundary gap the previous iteration's
    // probes recorded. Leaves-first orders put the failure boundary at
    // the top of the dependency tree, so the minimal failing prefix sits
    // a handful of entries from the end and the gallop brackets it in
    // ~2·log2(gap) probes instead of log2(len).
    let coverage = trace_layer.snapshot();
    let seed = match coverage.covered() {
        Some(covered) if cnf.eval(covered) => covered.clone(),
        _ => VarSet::full(n),
    };
    let order_b = history_order(cnf, coverage.frequencies());
    let last_bytes_b = Cell::new(0u64);
    let mut predicate_b = |k: &VarSet| {
        let probe = stack.probe(k);
        last_bytes_b.set(probe.size);
        probe.outcome
    };
    let mut wrapped_b = wrap_oracle(&mut predicate_b, cost, |_| last_bytes_b.get(), options);
    let mut learned: Vec<VarSet> = Vec::new();
    let mut search_space = seed;
    let mut prev_gap = 1usize;
    let max_iterations = 4 * n + 16;
    let mut iteration = 0usize;
    let solution = loop {
        if iteration == max_iterations {
            return Err(GbrError::IterationLimit.into());
        }
        if cancelled() {
            return Err(GbrError::Cancelled.into());
        }
        iteration += 1;
        let progression = build_progression(
            cnf,
            &order_b,
            MsaStrategy::GreedyClosure,
            &learned,
            &search_space,
        )?;
        let mut prefix_unions: Vec<VarSet> = Vec::with_capacity(progression.len());
        let mut acc = VarSet::empty(n);
        for d in &progression {
            acc.union_with(d);
            prefix_unions.push(acc.clone());
        }
        // D₀: the minimal valid candidate. Failing means done.
        if wrapped_b.test(&prefix_unions[0]) {
            break prefix_unions[0].clone();
        }
        if progression.len() == 1 {
            return Err(GbrError::PredicateNotMonotone.into());
        }
        let last = progression.len() - 1;
        let mut lo = 0usize; // D₀ just passed
        let mut hi = last; // fails by INV-PRO (it is the search space)
        let mut hi_verified = false;
        // Backward gallop: probe last-gap, last-2·gap, ... until a prefix
        // passes (or the range is exhausted), then bisect the bracket.
        let mut offset = prev_gap.max(1);
        while offset < last {
            if cancelled() {
                return Err(GbrError::Cancelled.into());
            }
            let idx = last - offset;
            if wrapped_b.test(&prefix_unions[idx]) {
                hi = idx;
                hi_verified = true;
                offset = offset.saturating_mul(2);
            } else {
                lo = idx;
                break;
            }
        }
        while hi - lo > 1 {
            if cancelled() {
                return Err(GbrError::Cancelled.into());
            }
            let mid = lo + (hi - lo) / 2;
            if wrapped_b.test(&prefix_unions[mid]) {
                hi = mid;
                hi_verified = true;
            } else {
                lo = mid;
            }
        }
        if !hi_verified && !wrapped_b.test(&prefix_unions[hi]) {
            return Err(GbrError::PredicateNotMonotone.into());
        }
        let r = hi;
        prev_gap = (last - r).max(1);
        learned.push(progression[r].clone());
        search_space = prefix_unions[r].clone();
    };
    let calls_b = wrapped_b.calls();
    let (hits_b, misses_b) = (wrapped_b.cache_hits(), wrapped_b.cache_misses());
    trace.append_sequential(&wrapped_b.into_trace());
    let total = calls_a + calls_b;
    let reduced = (model.materialize)(&solution);
    Ok(StrategyOutput {
        reduced,
        calls: total,
        trace,
        model_stats: Some(stats),
        probe_stats: ProbeStats::sequential(total, hits_b, calls_a + misses_b),
    })
}
