use super::*;
use lbr_classfile::{ClassFile, Code, Insn, MethodDescriptor, MethodInfo, MethodRef, Type};
use lbr_core::{GbrError, MemoryCache};
use lbr_decompiler::{BugKind, BugSet, DecompilerOracle};

fn ctor() -> MethodInfo {
    MethodInfo::new(
        "<init>",
        MethodDescriptor::void(),
        Code::new(1, 1, vec![Insn::Return]),
    )
}

/// A benchmark with one cast-to-interface bug plus unrelated classes
/// that a good reducer should drop.
fn benchmark() -> Program {
    let mut i = ClassFile::new_interface("I");
    i.methods
        .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
    let mut a = ClassFile::new_class("A");
    a.interfaces.push("I".into());
    a.methods.push(ctor());
    // A realistic body: stubbing it out should save real bytes.
    let mut chunky = vec![];
    for k in 0..20 {
        chunky.push(Insn::IConst(k));
        chunky.push(Insn::Pop);
    }
    chunky.push(Insn::Return);
    a.methods.push(MethodInfo::new(
        "m",
        MethodDescriptor::void(),
        Code::new(1, 1, chunky),
    ));
    a.methods.push(MethodInfo::new(
        "trigger",
        MethodDescriptor::void(),
        Code::new(
            2,
            1,
            vec![
                Insn::ALoad(0),
                Insn::CheckCast("I".into()),
                Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())),
                Insn::Return,
            ],
        ),
    ));
    // Unrelated ballast classes.
    let mut ballast = Vec::new();
    for k in 0..6 {
        let mut c = ClassFile::new_class(format!("Ballast{k}"));
        c.methods.push(ctor());
        c.methods.push(MethodInfo::new(
            "use",
            MethodDescriptor::new(vec![Type::reference("A")], None),
            Code::new(1, 2, vec![Insn::Return]),
        ));
        ballast.push(c);
    }
    let mut p: Program = [i, a].into_iter().collect();
    for b in ballast {
        p.insert(b);
    }
    p
}

#[test]
fn logical_beats_jreduce_on_the_benchmark() {
    let p = benchmark();
    assert!(lbr_classfile::verify_program(&p).is_empty());
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    assert!(oracle.is_failing());
    let logical = run_reduction(&p, &oracle, "logical/greedy", 0.0).expect("logical runs");
    check_report(&logical).expect("logical sound");
    let jreduce = run_reduction(&p, &oracle, "jreduce", 0.0).expect("jreduce runs");
    check_report(&jreduce).expect("jreduce sound");
    assert!(
        logical.final_metrics.bytes <= jreduce.final_metrics.bytes,
        "logical ({}) must be at least as small as jreduce ({})",
        logical.final_metrics.bytes,
        jreduce.final_metrics.bytes
    );
    // The ballast must be gone in both.
    assert!(logical.reduced.get("Ballast0").is_none());
    assert!(jreduce.reduced.get("Ballast0").is_none());
    // Logical keeps A but can strip its unused parts.
    assert!(logical.reduced.get("A").is_some());
}

#[test]
fn lossy_variants_run_and_are_sound() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    for name in ["lossy-1", "lossy-2"] {
        let report = run_reduction(&p, &oracle, name, 0.0).expect("lossy runs");
        check_report(&report).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn ddmin_runs_and_is_sound() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    let report = run_reduction(&p, &oracle, "ddmin-items", 0.0).expect("ddmin runs");
    check_report(&report).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn not_failing_is_an_error() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::none());
    let err = run_reduction(&p, &oracle, "jreduce", 0.0).unwrap_err();
    assert!(matches!(err, PipelineError::NotFailing));
}

#[test]
fn performance_options_do_not_change_results() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    for strategy in ["logical/greedy", "logical/minimized", "jreduce", "lossy-1"] {
        let fast = run_reduction_with(&p, &oracle, strategy, 33.0, &RunOptions::default())
            .expect("default options");
        let slow = run_reduction_with(&p, &oracle, strategy, 33.0, &RunOptions::legacy())
            .expect("legacy options");
        assert_eq!(fast.final_metrics, slow.final_metrics, "{strategy}");
        assert_eq!(fast.predicate_calls, slow.predicate_calls, "{strategy}");
        assert_eq!(
            fast.cache_hits() + fast.cache_misses(),
            fast.predicate_calls,
            "{strategy}: every probe is a hit or a miss"
        );
        assert_eq!(slow.cache_hits(), 0, "{strategy}");
        assert_eq!(slow.cache_misses(), 0, "{strategy}");
    }
}

/// The benchmark extended with an unrelated second bug (a static call
/// that decompiles to a ghost receiver) so the baseline has two
/// distinct error messages.
fn two_bug_benchmark() -> Program {
    let mut p = benchmark();
    let mut util = ClassFile::new_class("Util");
    util.methods.push(ctor());
    let mut helper = MethodInfo::new(
        "helper",
        MethodDescriptor::void(),
        Code::new(1, 1, vec![Insn::Return]),
    );
    helper.flags |= lbr_classfile::Flags::STATIC;
    util.methods.push(helper);
    util.methods.push(MethodInfo::new(
        "go",
        MethodDescriptor::void(),
        Code::new(
            1,
            1,
            vec![
                Insn::InvokeStatic(MethodRef::new("Util", "helper", MethodDescriptor::void())),
                Insn::Return,
            ],
        ),
    ));
    p.insert(util);
    p
}

#[test]
fn per_error_cache_is_shared_across_searches() {
    let p = two_bug_benchmark();
    let oracle = DecompilerOracle::new(
        &p,
        BugSet::of(&[BugKind::CastToObject, BugKind::StaticGhostReceiver]),
    );
    assert!(
        oracle.baseline().len() >= 2,
        "need at least two distinct errors, got {:?}",
        oracle.baseline()
    );
    let cached = run_per_error(&p, &oracle, 0.0).expect("per-error runs");
    assert_eq!(cached.errors.len(), oracle.baseline().len());
    assert!(
        cached.cache_hits > 0,
        "searches share probes (every search starts from the same D0)"
    );
    assert!(cached.cache_hit_rate() > 0.0);
    // The cache is a pure optimization: identical rows and call counts.
    let uncached = run_per_error_with(
        &p,
        &oracle,
        0.0,
        &RunOptions {
            memoize: false,
            ..RunOptions::default()
        },
    )
    .expect("per-error runs uncached");
    assert_eq!(cached.errors, uncached.errors);
    assert_eq!(cached.total_calls, uncached.total_calls);
    assert_eq!(uncached.cache_hits, 0);
    assert_eq!(uncached.cache_misses, 0);
}

#[test]
fn probe_threads_do_not_change_results() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    let sequential =
        run_reduction_with(&p, &oracle, "logical/greedy", 33.0, &RunOptions::default())
            .expect("sequential");
    for threads in [2usize, 4] {
        let parallel = run_reduction_with(
            &p,
            &oracle,
            "logical/greedy",
            33.0,
            &RunOptions {
                probe_threads: threads,
                ..RunOptions::default()
            },
        )
        .expect("parallel");
        assert_eq!(
            parallel.final_metrics, sequential.final_metrics,
            "threads={threads}"
        );
        assert_eq!(
            parallel.predicate_calls, sequential.predicate_calls,
            "threads={threads}"
        );
        assert_eq!(
            parallel.cache_hits(),
            sequential.cache_hits(),
            "threads={threads}"
        );
        assert_eq!(
            parallel.cache_misses(),
            sequential.cache_misses(),
            "threads={threads}"
        );
        assert_eq!(
            parallel.probe_stats.useful_calls, sequential.predicate_calls,
            "threads={threads}"
        );
        assert!((parallel.modeled_secs - sequential.modeled_secs).abs() < 1e-9);
        // The traces agree on everything but wall-clock timing.
        assert_eq!(parallel.trace.len(), sequential.trace.len());
        for (a, b) in parallel
            .trace
            .points()
            .iter()
            .zip(sequential.trace.points())
        {
            assert_eq!((a.call, a.size, a.success), (b.call, b.size, b.success));
            assert!((a.modeled_secs - b.modeled_secs).abs() < 1e-9);
        }
    }
}

#[test]
fn per_error_parallel_matches_sequential() {
    let p = two_bug_benchmark();
    let oracle = DecompilerOracle::new(
        &p,
        BugSet::of(&[BugKind::CastToObject, BugKind::StaticGhostReceiver]),
    );
    let sequential =
        run_per_error_with(&p, &oracle, 33.0, &RunOptions::default()).expect("sequential");
    for threads in [2usize, 4] {
        let parallel = run_per_error_with(
            &p,
            &oracle,
            33.0,
            &RunOptions {
                probe_threads: threads,
                ..RunOptions::default()
            },
        )
        .expect("parallel");
        assert_eq!(parallel.errors, sequential.errors, "threads={threads}");
        assert_eq!(
            parallel.total_calls, sequential.total_calls,
            "threads={threads}"
        );
        assert_eq!(
            parallel.cache_hits, sequential.cache_hits,
            "threads={threads}"
        );
        assert_eq!(
            parallel.cache_misses, sequential.cache_misses,
            "threads={threads}"
        );
    }
}

#[test]
fn resumable_matches_plain_run_and_warm_cache_is_invisible() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    let plain = run_reduction_with(&p, &oracle, "logical/greedy", 33.0, &RunOptions::default())
        .expect("plain");
    let cache = MemoryCache::new();
    for round in 0..2 {
        // Round 0 fills the cache; round 1 is served warm. Both must be
        // bit-identical to the plain run in every observable.
        let hooks = ServiceHooks {
            cache: Some(&cache),
            ..ServiceHooks::default()
        };
        let run = run_logical_resumable(
            &p,
            &oracle,
            MsaStrategy::GreedyClosure,
            33.0,
            &RunOptions::default(),
            hooks,
        )
        .expect("resumable");
        assert_eq!(run.final_metrics, plain.final_metrics, "round={round}");
        assert_eq!(run.predicate_calls, plain.predicate_calls, "round={round}");
        assert_eq!(run.cache_hits(), plain.cache_hits(), "round={round}");
        assert_eq!(run.cache_misses(), plain.cache_misses(), "round={round}");
        assert_eq!(run.trace.digest(), plain.trace.digest(), "round={round}");
        assert_eq!(
            lbr_classfile::write_program(&run.reduced),
            lbr_classfile::write_program(&plain.reduced),
            "round={round}"
        );
    }
    assert!(
        cache.hits() > 0,
        "the warm round must actually hit the external cache"
    );
}

#[test]
fn resumable_checkpoint_resume_matches_uninterrupted() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    let plain = run_reduction_with(&p, &oracle, "logical/greedy", 33.0, &RunOptions::default())
        .expect("plain");
    // Cancel after the first checkpoint, then resume from it — with a
    // shared cache, so the resumed run's replayed probes are warm.
    let cache = MemoryCache::new();
    let taken = std::sync::atomic::AtomicUsize::new(0);
    let mut saved: Option<lbr_core::GbrCheckpoint> = None;
    let mut hook = |ck: &lbr_core::GbrCheckpoint| {
        taken.store(ck.iterations, std::sync::atomic::Ordering::Relaxed);
        saved = Some(ck.clone());
    };
    let cancel = || taken.load(std::sync::atomic::Ordering::Relaxed) >= 1;
    let err = run_logical_resumable(
        &p,
        &oracle,
        MsaStrategy::GreedyClosure,
        33.0,
        &RunOptions::default(),
        ServiceHooks {
            cache: Some(&cache),
            cancel: Some(&cancel),
            checkpoint: Some(&mut hook),
            resume: None,
            distributor: None,
        },
    )
    .expect_err("cancelled");
    assert!(matches!(err, PipelineError::Gbr(GbrError::Cancelled)));
    let ck = saved.expect("checkpoint taken");
    let resumed = run_logical_resumable(
        &p,
        &oracle,
        MsaStrategy::GreedyClosure,
        33.0,
        &RunOptions::default(),
        ServiceHooks {
            cache: Some(&cache),
            resume: Some(ck),
            ..ServiceHooks::default()
        },
    )
    .expect("resumed run completes");
    assert_eq!(resumed.final_metrics, plain.final_metrics);
    assert_eq!(
        lbr_classfile::write_program(&resumed.reduced),
        lbr_classfile::write_program(&plain.reduced)
    );
    assert!(resumed.errors_preserved && resumed.still_valid);
}

#[test]
fn modeled_time_tracks_calls() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    let report = run_reduction(&p, &oracle, "logical/greedy", 33.0).expect("runs");
    assert!(report.predicate_calls > 0);
    assert!((report.modeled_secs - report.predicate_calls as f64 * 33.0).abs() < 1e-9);
    assert!(report.relative_bytes() <= 1.0);
    assert!(report.relative_classes() <= 1.0);
}

#[test]
fn unknown_strategy_is_an_error() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    let err = run_reduction(&p, &oracle, "no-such-strategy", 0.0).unwrap_err();
    assert!(matches!(err, PipelineError::UnknownStrategy(ref n) if n == "no-such-strategy"));
}

#[test]
fn aliases_run_the_canonical_strategy() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    let canonical = run_reduction(&p, &oracle, "logical/greedy", 0.0).expect("canonical");
    let alias = run_reduction(&p, &oracle, "logical", 0.0).expect("alias");
    assert_eq!(
        alias.strategy, "logical/greedy",
        "report shows the canonical label"
    );
    assert_eq!(alias.final_metrics, canonical.final_metrics);
    assert_eq!(alias.predicate_calls, canonical.predicate_calls);
    assert_eq!(alias.trace.digest(), canonical.trace.digest());
}

#[test]
fn hdd_runs_and_is_sound() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    let report = run_reduction(&p, &oracle, "hdd", 0.0).expect("hdd runs");
    check_report(&report).unwrap_or_else(|e| panic!("{e}"));
    // The coarse level already drops the ballast classes.
    assert!(report.reduced.get("Ballast0").is_none());
    // Determinism: repeat runs are bit-identical.
    let again = run_reduction(&p, &oracle, "hdd", 0.0).expect("hdd repeats");
    assert_eq!(again.predicate_calls, report.predicate_calls);
    assert_eq!(again.trace.digest(), report.trace.digest());
    assert_eq!(
        lbr_classfile::write_program(&again.reduced),
        lbr_classfile::write_program(&report.reduced)
    );
}

#[test]
fn transform_runs_and_is_sound() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    let report = run_reduction(&p, &oracle, "transform", 0.0).expect("transform runs");
    check_report(&report).unwrap_or_else(|e| panic!("{e}"));
    let again = run_reduction(&p, &oracle, "transform", 0.0).expect("transform repeats");
    assert_eq!(again.predicate_calls, report.predicate_calls);
    assert_eq!(again.trace.digest(), report.trace.digest());
    assert_eq!(
        lbr_classfile::write_program(&again.reduced),
        lbr_classfile::write_program(&report.reduced)
    );
}

#[test]
fn trace_guided_runs_sound_and_no_worse_than_plain_gbr_here() {
    let p = benchmark();
    let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
    let guided = run_reduction(&p, &oracle, "logical/trace-guided", 0.0).expect("guided runs");
    check_report(&guided).unwrap_or_else(|e| panic!("{e}"));
    let again = run_reduction(&p, &oracle, "logical/trace-guided", 0.0).expect("guided repeats");
    assert_eq!(again.predicate_calls, guided.predicate_calls);
    assert_eq!(again.trace.digest(), guided.trace.digest());
    assert_eq!(
        lbr_classfile::write_program(&again.reduced),
        lbr_classfile::write_program(&guided.reduced)
    );
    let plain = run_reduction(&p, &oracle, "logical/greedy", 0.0).expect("plain runs");
    assert!(
        guided.final_metrics.bytes <= plain.final_metrics.bytes,
        "guided ({}) must end at least as small as plain GBR ({})",
        guided.final_metrics.bytes,
        plain.final_metrics.bytes
    );
}
