//! Equivalence pinning for the `Input`-trait port, and the cross-format
//! differential suite.
//!
//! The tentpole refactor moved the classfile frontend behind the
//! format-agnostic [`Input`] trait. These tests prove the port changed
//! nothing: a reduction driver written against *nothing but the trait*
//! (no classfile types appear in [`reduce_via_trait`]) must reproduce the
//! exact pre-port pins — reduced sizes, predicate-call counts, and
//! probe-trace digests recorded from `main` before the trait existed
//! (the same fixtures `session_matrix.rs` pins).
//!
//! The same driver then runs the stackvm frontend, pinning its own
//! digests and cross-checking that every engine (DPLL reference, legacy
//! scan, CDCL) replays bit-identically on both formats — the
//! cross-format differential guarantee: one generic pipeline, two
//! frontends, zero behavioral divergence.

use lbr_classfile::Program;
use lbr_core::{EngineChoice, Input, InputOracle};
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{check_report, ReductionReport, ReductionSession, RunOptions};
use lbr_stackvm::{Module, StackBugSet, StackOracle};
use lbr_workload::{generate, generate_stack, StackWorkloadConfig, WorkloadConfig};

/// The modeled per-probe cost the pre-port pins were recorded at.
const COST_SECS: f64 = 33.0;

/// Drives one reduction through nothing but the [`Input`] trait. No
/// frontend type is named here: if this compiles and hits the pins, the
/// classfile port onto the trait is bit-identical by construction.
fn reduce_via_trait<I: Input, O: InputOracle<I>>(
    input: &I,
    oracle: &O,
    options: RunOptions,
) -> ReductionReport<I> {
    let report = ReductionSession::new(input, oracle)
        .cost_per_call(COST_SECS)
        .options(options)
        .run()
        .expect("reduction through the Input trait");
    check_report(&report).expect("trait-driven reduction is sound");
    report
}

/// One pinned expectation: what the pipeline reduced this input to
/// before the trait existed (classfile) or when the frontend landed
/// (stackvm).
struct Pin {
    seed: u64,
    initial: (usize, usize),
    fin: (usize, usize),
    calls: u64,
    trace_digest: u64,
}

/// The classfile pins — the exact fixtures of `session_matrix.rs`,
/// recorded on the pre-trait pipeline.
const CLASSFILE_PINS: [Pin; 3] = [
    Pin {
        seed: 7,
        initial: (32, 18780),
        fin: (11, 3764),
        calls: 110,
        trace_digest: 0xba31_9582_a8ac_5eee,
    },
    Pin {
        seed: 8,
        initial: (32, 17674),
        fin: (11, 2701),
        calls: 67,
        trace_digest: 0x93d3_3ecb_b558_8ce6,
    },
    Pin {
        seed: 11,
        initial: (32, 18188),
        fin: (11, 2474),
        calls: 57,
        trace_digest: 0xaa08_213d_a904_c346,
    },
];

/// The stackvm pin (`gen --format stackvm --seed 9 --decompiler a`),
/// matching ci.sh's cross-format differential smoke.
const STACKVM_PIN: Pin = Pin {
    seed: 9,
    initial: (28, 1801),
    fin: (18, 984),
    calls: 71,
    trace_digest: 0xe715_c00b_35ff_8ae0,
};

fn classfile_input(seed: u64) -> Program {
    generate(&WorkloadConfig {
        seed,
        plant: BugSet::decompiler_a().kinds().to_vec(),
        ..WorkloadConfig::default()
    })
}

fn stackvm_input(seed: u64) -> Module {
    generate_stack(&StackWorkloadConfig {
        seed,
        plant: StackBugSet::lowering_a().kinds().to_vec(),
        ..StackWorkloadConfig::default()
    })
}

fn assert_pinned<I: Input>(pin: &Pin, tag: &str, report: &ReductionReport<I>) {
    assert_eq!(
        (report.initial.classes, report.initial.bytes),
        pin.initial,
        "{} seed {} {tag}: initial size",
        I::FORMAT,
        pin.seed
    );
    assert_eq!(
        (report.final_metrics.classes, report.final_metrics.bytes),
        pin.fin,
        "{} seed {} {tag}: final size",
        I::FORMAT,
        pin.seed
    );
    assert_eq!(
        report.predicate_calls,
        pin.calls,
        "{} seed {} {tag}: predicate calls",
        I::FORMAT,
        pin.seed
    );
    assert_eq!(
        report.trace.digest(),
        pin.trace_digest,
        "{} seed {} {tag}: trace digest",
        I::FORMAT,
        pin.seed
    );
}

/// Runs one input through every engine configuration and asserts they
/// all replay the DPLL reference bit-identically (bytes, calls, trace),
/// returning the reference. This is the differential core both formats
/// share.
fn engines_agree<I: Input, O: InputOracle<I>>(input: &I, oracle: &O) -> ReductionReport<I> {
    let reference = reduce_via_trait(input, oracle, RunOptions::default());
    let engines = [
        ("legacy-scan", RunOptions::legacy()),
        (
            "cdcl",
            RunOptions {
                engine: EngineChoice::Cdcl,
                ..RunOptions::default()
            },
        ),
        (
            "probe-threads-2",
            RunOptions {
                probe_threads: 2,
                ..RunOptions::default()
            },
        ),
    ];
    for (tag, options) in engines {
        let report = reduce_via_trait(input, oracle, options);
        assert_eq!(
            report.reduced.to_bytes(),
            reference.reduced.to_bytes(),
            "{} {tag}: reduced bytes diverge from the DPLL reference",
            I::FORMAT
        );
        assert_eq!(
            report.predicate_calls,
            reference.predicate_calls,
            "{} {tag}: predicate calls diverge",
            I::FORMAT
        );
        assert!(
            report.trace.same_probe_sequence(&reference.trace),
            "{} {tag}: probe trace diverges",
            I::FORMAT
        );
    }
    reference
}

/// The port proof: the trait-generic driver reproduces the pre-trait
/// pins on every session-matrix seed, under every engine.
#[test]
fn classfile_through_the_trait_matches_pre_port_pins() {
    for pin in &CLASSFILE_PINS {
        let program = classfile_input(pin.seed);
        let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
        let reference = engines_agree(&program, &oracle);
        assert_pinned(pin, "trait-generic", &reference);
    }
}

/// The second frontend through the identical driver: pinned digests and
/// full engine agreement, so both formats are provably running the same
/// search over their respective logical models.
#[test]
fn stackvm_through_the_trait_matches_its_pins() {
    let module = stackvm_input(STACKVM_PIN.seed);
    let oracle = StackOracle::new(&module, StackBugSet::lowering_a());
    let reference = engines_agree(&module, &oracle);
    assert_pinned(&STACKVM_PIN, "trait-generic", &reference);
}

/// Cross-format differential sweep over unpinned seeds: every engine
/// agrees on every input of both formats, not just the pinned ones.
#[test]
fn engines_agree_on_both_formats_across_seeds() {
    for seed in [3, 5] {
        let program = classfile_input(seed);
        let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
        engines_agree(&program, &oracle);

        let module = stackvm_input(seed);
        let oracle = StackOracle::new(&module, StackBugSet::lowering_a());
        engines_agree(&module, &oracle);
    }
}

/// The serialization side of the equivalence: both frontends round-trip
/// their reduced result exactly (`from_bytes ∘ to_bytes = id`), which is
/// what makes the daemon's file-based comparison in ci.sh meaningful.
#[test]
fn reduced_results_round_trip_on_both_formats() {
    let program = classfile_input(7);
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
    let report = reduce_via_trait(&program, &oracle, RunOptions::default());
    let bytes = report.reduced.to_bytes();
    assert_eq!(Program::from_bytes(&bytes).as_ref(), Ok(&report.reduced));

    let module = stackvm_input(STACKVM_PIN.seed);
    let oracle = StackOracle::new(&module, StackBugSet::lowering_a());
    let report = reduce_via_trait(&module, &oracle, RunOptions::default());
    let bytes = report.reduced.to_bytes();
    assert_eq!(Module::from_bytes(&bytes).as_ref(), Ok(&report.reduced));
}
