//! The layer-ordering matrix: every oracle-middleware configuration a
//! real caller uses (plain memo, legacy, speculative threads, cold and
//! warm external cache, fault-injected cache, latency emulation, memo
//! off) must produce **bit-identical** results — reduced bytes, call
//! counts, memo totals, and the probe-trace digest — on inputs pinned
//! from `main` before the middleware stack existed.
//!
//! The pinned expectations were produced by `gen --seed N --decompiler a`
//! piped through `reduce --json` on the pre-refactor pipeline; if any
//! layer reorders, swallows, or duplicates a probe, one of these numbers
//! moves and the matrix fails.

use lbr_classfile::{write_program, Program};
use lbr_core::{FaultPlan, FaultyCache, MemoryCache};
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{check_report, ReductionReport, ReductionSession, RunOptions};
use lbr_workload::{generate, WorkloadConfig};

const COST_SECS: f64 = 33.0;

/// One pinned fixture: the generator seed and what the pre-refactor
/// pipeline reduced it to.
struct Fixture {
    seed: u64,
    initial: (usize, usize),
    fin: (usize, usize),
    calls: u64,
    trace_digest: u64,
}

const FIXTURES: [Fixture; 3] = [
    Fixture {
        seed: 7,
        initial: (32, 18780),
        fin: (11, 3764),
        calls: 110,
        trace_digest: 0xba31_9582_a8ac_5eee,
    },
    Fixture {
        seed: 8,
        initial: (32, 17674),
        fin: (11, 2701),
        calls: 67,
        trace_digest: 0x93d3_3ecb_b558_8ce6,
    },
    Fixture {
        seed: 11,
        initial: (32, 18188),
        fin: (11, 2474),
        calls: 57,
        trace_digest: 0xaa08_213d_a904_c346,
    },
];

fn program_for(seed: u64) -> Program {
    generate(&WorkloadConfig {
        seed,
        plant: BugSet::decompiler_a().kinds().to_vec(),
        ..WorkloadConfig::default()
    })
}

fn check_against(fixture: &Fixture, tag: &str, report: &ReductionReport) {
    check_report(report).unwrap_or_else(|e| panic!("seed {} {tag}: {e}", fixture.seed));
    assert_eq!(
        (report.initial.classes, report.initial.bytes),
        fixture.initial,
        "seed {} {tag}: initial size",
        fixture.seed
    );
    assert_eq!(
        (report.final_metrics.classes, report.final_metrics.bytes),
        fixture.fin,
        "seed {} {tag}: final size",
        fixture.seed
    );
    assert_eq!(
        report.predicate_calls, fixture.calls,
        "seed {} {tag}: predicate calls",
        fixture.seed
    );
    assert_eq!(
        report.trace.digest(),
        fixture.trace_digest,
        "seed {} {tag}: trace digest",
        fixture.seed
    );
}

#[test]
fn every_layer_ordering_matches_the_pinned_fixtures() {
    for fixture in &FIXTURES {
        let program = program_for(fixture.seed);
        let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
        let session = || ReductionSession::new(&program, &oracle).cost_per_call(COST_SECS);

        // The reference configuration: per-run memo only.
        let reference = session().run().expect("default session");
        check_against(fixture, "default", &reference);
        let reference_bytes = write_program(&reference.reduced);
        assert!(
            reference.cache_hits() + reference.cache_misses() == reference.predicate_calls,
            "memoized run accounts every probe"
        );

        // Caches shared across matrix entries: `external` is probed cold
        // then warm (the warm run answers probes from the cache yet must
        // be observationally identical); `faulty` may only ever degrade
        // hits to misses, never change what the run computes.
        let external = MemoryCache::new();
        let inner = MemoryCache::new();
        let faulty = FaultyCache::new(
            &inner,
            FaultPlan {
                rate: 0.4,
                seed: fixture.seed ^ 0xFA17,
            },
        );
        let stacked_cache = MemoryCache::new();

        let matrix: Vec<(&str, ReductionReport)> = vec![
            // Legacy options: scan propagation, no memo.
            ("legacy", session().legacy().run().expect("legacy")),
            // Memo off, modern propagation.
            (
                "memo-off",
                session().memoize(false).run().expect("memo-off"),
            ),
            // Speculative parallel probing.
            (
                "probe-threads-2",
                session().probe_threads(2).run().expect("threads"),
            ),
            // Latency emulation (layer between cache and base predicate).
            (
                "latency-100us",
                session().probe_latency_micros(100).run().expect("latency"),
            ),
            (
                "cold-cache",
                session().cache(&external).run().expect("cold cache"),
            ),
            (
                "warm-cache",
                session().cache(&external).run().expect("warm cache"),
            ),
            (
                "faulty-cache",
                session().cache(&faulty).run().expect("faulty cache"),
            ),
            // Cache + latency + speculation stacked together.
            (
                "cache+latency+threads",
                session()
                    .cache(&stacked_cache)
                    .probe_latency_micros(100)
                    .probe_threads(2)
                    .run()
                    .expect("stacked"),
            ),
        ];
        assert!(
            external.hits() > 0,
            "seed {}: warm round must hit the external cache",
            fixture.seed
        );

        for (tag, report) in &matrix {
            check_against(fixture, tag, report);
            assert_eq!(
                write_program(&report.reduced),
                reference_bytes,
                "seed {} {tag}: reduced bytes must be bit-identical",
                fixture.seed
            );
        }
    }
}

#[test]
fn memo_accounting_is_deterministic_across_the_matrix() {
    let fixture = &FIXTURES[0];
    let program = program_for(fixture.seed);
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
    let reference = ReductionSession::new(&program, &oracle)
        .cost_per_call(COST_SECS)
        .run()
        .expect("reference");
    // The memo totals are part of the determinism contract: identical at
    // any thread count and with any external cache attached.
    let cache = MemoryCache::new();
    for (tag, options) in [
        (
            "threads-4",
            RunOptions {
                probe_threads: 4,
                ..RunOptions::default()
            },
        ),
        ("default-again", RunOptions::default()),
    ] {
        let run = ReductionSession::new(&program, &oracle)
            .cost_per_call(COST_SECS)
            .options(options)
            .cache(&cache)
            .run()
            .expect(tag);
        assert_eq!(run.cache_hits(), reference.cache_hits(), "{tag}");
        assert_eq!(run.cache_misses(), reference.cache_misses(), "{tag}");
        assert_eq!(
            run.probe_stats.useful_calls, reference.predicate_calls,
            "{tag}"
        );
    }
}
