//! Suite statistics — the numbers behind the paper's "Statistics"
//! paragraph (geometric means over benchmarks).

use crate::suite::Benchmark;
use lbr_classfile::program_byte_size;

/// Geometric-mean statistics of a benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteStats {
    /// Number of benchmark instances.
    pub benchmarks: usize,
    /// Geometric mean of class counts (paper: 184).
    pub classes: f64,
    /// Geometric mean of byte sizes (paper: 285 KB).
    pub bytes: f64,
    /// Geometric mean of distinct compiler errors (paper: 9.2).
    pub errors: f64,
}

/// The geometric mean of non-negative samples (0 for empty input;
/// non-positive samples are clamped to a tiny epsilon to keep the mean
/// defined).
pub fn geometric_mean<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        log_sum += x.max(1e-9).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Computes suite statistics (runs each benchmark's oracle once).
pub fn suite_stats(benchmarks: &[Benchmark]) -> SuiteStats {
    SuiteStats {
        benchmarks: benchmarks.len(),
        classes: geometric_mean(benchmarks.iter().map(|b| b.program.len() as f64)),
        bytes: geometric_mean(
            benchmarks
                .iter()
                .map(|b| program_byte_size(&b.program) as f64),
        ),
        errors: geometric_mean(benchmarks.iter().map(|b| b.oracle().error_count() as f64)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{suite, SuiteConfig};

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean([]), 0.0);
        assert!((geometric_mean([4.0, 9.0]) - 6.0).abs() < 1e-9);
        assert!((geometric_mean([5.0]) - 5.0).abs() < 1e-9);
        // Fractions are not clamped (relative sizes are < 1).
        assert!((geometric_mean([0.25, 0.25]) - 0.25).abs() < 1e-9);
        // Zeros are clamped to a tiny epsilon, not to 1.
        assert!(geometric_mean([0.0, 100.0]) < 1.0);
    }

    #[test]
    fn stats_are_positive() {
        let benchmarks = suite(&SuiteConfig {
            programs: 2,
            ..SuiteConfig::default()
        });
        let stats = suite_stats(&benchmarks);
        assert_eq!(stats.benchmarks, benchmarks.len());
        assert!(stats.classes > 1.0);
        assert!(stats.bytes > 100.0);
        assert!(stats.errors >= 1.0);
    }
}
