//! NJR-like benchmark suites.
//!
//! The paper's benchmarks are 96 NJR programs × 3 decompilers = 227
//! failing instances. A [`suite`] mirrors that shape: it generates `n`
//! programs (with all bug-trigger patterns planted), pairs each with the
//! three simulated decompilers, and keeps the pairs that actually fail.

use crate::gen::{generate, WorkloadConfig};
use lbr_classfile::Program;
use lbr_decompiler::{BugKind, BugSet, DecompilerOracle};

/// One failing (program, decompiler) instance.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// A stable name, e.g. `njr7-a`.
    pub name: String,
    /// The input program.
    pub program: Program,
    /// The decompiler's bugs.
    pub bugs: BugSet,
}

impl Benchmark {
    /// Builds the oracle for this benchmark.
    pub fn oracle(&self) -> DecompilerOracle {
        DecompilerOracle::new(&self.program, self.bugs.clone())
    }
}

/// Configuration for [`suite`].
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Base RNG seed.
    pub seed: u64,
    /// Number of generated programs (each yields up to 3 instances).
    pub programs: usize,
    /// Size scale factor (1.0 ≈ the default [`WorkloadConfig`]).
    pub scale: f64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            seed: 42,
            programs: 8,
            scale: 1.0,
        }
    }
}

/// Generates the benchmark suite: only failing (program, decompiler)
/// instances are returned, like the paper's 227.
pub fn suite(config: &SuiteConfig) -> Vec<Benchmark> {
    let decompilers = [
        ("a", BugSet::decompiler_a()),
        ("b", BugSet::decompiler_b()),
        ("c", BugSet::decompiler_c()),
    ];
    let mut out = Vec::new();
    for k in 0..config.programs {
        let workload = WorkloadConfig {
            seed: config.seed.wrapping_add(k as u64),
            plant: BugKind::ALL.to_vec(),
            ..WorkloadConfig::default()
        }
        .scaled(config.scale);
        let program = generate(&workload);
        for (suffix, bugs) in &decompilers {
            let oracle = DecompilerOracle::new(&program, bugs.clone());
            if oracle.is_failing() {
                out.push(Benchmark {
                    name: format!("njr{k}-{suffix}"),
                    program: program.clone(),
                    bugs: bugs.clone(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_yields_failing_instances() {
        let benchmarks = suite(&SuiteConfig {
            programs: 3,
            ..SuiteConfig::default()
        });
        assert!(
            benchmarks.len() >= 3,
            "expected several failing instances, got {}",
            benchmarks.len()
        );
        for b in &benchmarks {
            assert!(b.oracle().is_failing(), "{} must fail", b.name);
            assert!(
                lbr_classfile::verify_program(&b.program).is_empty(),
                "{} must verify",
                b.name
            );
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let config = SuiteConfig {
            programs: 2,
            ..SuiteConfig::default()
        };
        let a = suite(&config);
        let b = suite(&config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.program, y.program);
        }
    }
}
