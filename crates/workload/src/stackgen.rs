//! Seeded random generation of verifying stackvm modules.
//!
//! The stackvm analog of [`crate::gen`]: every module verifies by
//! construction (bodies are sequences of stack-neutral statement
//! templates ending in an explicit `Return`), generation is fully
//! deterministic per seed, and bug-trigger patterns from
//! [`lbr_stackvm::StackBugSet`]'s catalog are planted into the first
//! few functions so a good reducer can discard the rest.
//!
//! Three topology shapes steer what the reduction has to untangle:
//!
//! - **constraint-dense**: many `call_indirect` sites over shared
//!   signatures plus global writer/reader pairs — Or-constraints and
//!   multi-item couplings dominate.
//! - **wide-flat**: a few roots calling many independent leaves —
//!   almost a pure dependency graph, the baselines' best case.
//! - **deep-chain**: long call chains — worst case for ddmin-style
//!   atom removal, easy for closure orders.

use lbr_prng::SplitMix64;
use lbr_stackvm::{Function, Global, Module, Op, Sig, StackBugKind, StackBugSet, StackOracle, Ty};

/// The call-topology shape of a generated module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackShape {
    /// Dense indirect dispatch + global couplings.
    ConstraintDense,
    /// Few roots, many independent leaves.
    WideFlat,
    /// Long call chains.
    DeepChain,
}

impl StackShape {
    /// Every shape, in declaration order.
    pub const ALL: [StackShape; 3] = [
        StackShape::ConstraintDense,
        StackShape::WideFlat,
        StackShape::DeepChain,
    ];
}

/// Configuration for [`generate_stack`].
#[derive(Debug, Clone, PartialEq)]
pub struct StackWorkloadConfig {
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
    /// Number of functions.
    pub functions: usize,
    /// Number of globals.
    pub globals: usize,
    /// Call topology.
    pub shape: StackShape,
    /// Statements per function body.
    pub stmts_per_function: (usize, usize),
    /// How many instances of each requested bug pattern to plant.
    pub plants_per_bug: usize,
    /// The bug kinds whose trigger patterns should be planted.
    pub plant: Vec<StackBugKind>,
}

impl Default for StackWorkloadConfig {
    fn default() -> Self {
        StackWorkloadConfig {
            seed: 0,
            functions: 24,
            globals: 4,
            shape: StackShape::ConstraintDense,
            stmts_per_function: (2, 5),
            plants_per_bug: 2,
            plant: Vec::new(),
        }
    }
}

impl StackWorkloadConfig {
    /// A randomized small configuration for differential fuzzing,
    /// mirroring [`crate::WorkloadConfig::sampled`]: geometry is drawn
    /// deterministically from `seed` (decorrelated from the content
    /// stream), the plant list is left to the caller.
    pub fn sampled(seed: u64) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x57AC_6E0E_7121_C0DE);
        let shape = StackShape::ALL[rng.gen_range(0u64..=2) as usize];
        let s_lo = rng.gen_range(1usize..=2);
        StackWorkloadConfig {
            seed,
            functions: rng.gen_range(6usize..=14),
            globals: rng.gen_range(1usize..=3),
            shape,
            stmts_per_function: (s_lo, s_lo + rng.gen_range(1usize..=3)),
            plants_per_bug: rng.gen_range(1usize..=2),
            plant: Vec::new(),
        }
    }
}

/// The two signature classes generated functions draw from. Multiple
/// classes partition the `call_indirect` candidate sets, so
/// Or-constraints do not all collapse into one clause.
fn sig_classes() -> [Sig; 2] {
    [Sig::new(vec![], None), Sig::new(vec![Ty::Int], None)]
}

/// Generates a verifying module.
pub fn generate_stack(config: &StackWorkloadConfig) -> Module {
    let mut rng = SplitMix64::seed_from_u64(config.seed);
    let n = config.functions.max(1);
    let sigs = sig_classes();
    let mut module = Module::new();
    for g in 0..config.globals {
        module.globals.push(Global::new(format!("g{g}"), Ty::Int));
    }
    // Plan signatures first so call sites can be emitted in one pass.
    let fn_sigs: Vec<Sig> = (0..n)
        .map(|_| sigs[rng.gen_range(0u64..=1) as usize].clone())
        .collect();
    for i in 0..n {
        let sig = &fn_sigs[i];
        let mut body = Vec::new();
        let (lo, hi) = config.stmts_per_function;
        let stmts = rng.gen_range(lo as u64..=hi.max(lo) as u64) as usize;
        for _ in 0..stmts {
            emit_statement(&mut body, &mut rng, config, i, n, &fn_sigs, &sigs);
        }
        body.push(Op::Return);
        let mut f = Function::new(format!("f{i}"), sig.params.clone(), sig.ret);
        f.max_stack = 16;
        f.body = body;
        module.functions.push(f);
    }
    plant_bugs(&mut module, config, &mut rng);
    module
}

/// Emits one stack-neutral statement into `body`. Call targets follow
/// the configured shape.
#[allow(clippy::too_many_arguments)]
fn emit_statement(
    body: &mut Vec<Op>,
    rng: &mut SplitMix64,
    config: &StackWorkloadConfig,
    me: usize,
    n: usize,
    fn_sigs: &[Sig],
    sigs: &[Sig; 2],
) {
    let callee = match config.shape {
        // Dense: any function may be referenced.
        StackShape::ConstraintDense => rng.gen_range(0u64..n as u64) as usize,
        // Wide-flat: roots (first quarter) call leaves; leaves call no one.
        StackShape::WideFlat => {
            if me < n.div_ceil(4) {
                n.div_ceil(4) + rng.gen_range(0u64..(n - n.div_ceil(4)).max(1) as u64) as usize
            } else {
                me // self-reference degenerates to arithmetic below
            }
        }
        // Deep-chain: call the next function in the chain.
        StackShape::DeepChain => (me + 1).min(n - 1),
    };
    let kind = rng.gen_range(0u64..=9);
    match kind {
        // Arithmetic: push, push, op, drop.
        0..=2 => {
            body.push(Op::PushInt(
                rng.gen_range(0i64..=100_i64.unsigned_abs() as i64),
            ));
            body.push(Op::PushInt(rng.gen_range(0i64..=100)));
            body.push(match rng.gen_range(0u64..=1) {
                0 => Op::Add,
                _ => Op::Sub,
            });
            body.push(Op::Drop);
        }
        // Comparison: push, push, cmp, not, drop.
        3 => {
            body.push(Op::PushInt(rng.gen_range(0i64..=100)));
            body.push(Op::PushInt(rng.gen_range(0i64..=100)));
            body.push(Op::Lt);
            body.push(Op::Not);
            body.push(Op::Drop);
        }
        // Direct call (skipped when it would be a self-call).
        4..=6 if callee != me => {
            for _ in &fn_sigs[callee].params {
                body.push(Op::PushInt(rng.gen_range(0i64..=9)));
            }
            body.push(Op::Call(format!("f{callee}")));
        }
        // Indirect call in the dense shape only.
        7 if config.shape == StackShape::ConstraintDense => {
            let sig = sigs[rng.gen_range(0u64..=1) as usize].clone();
            for _ in &sig.params {
                body.push(Op::PushInt(rng.gen_range(0i64..=9)));
            }
            body.push(Op::PushInt(rng.gen_range(0i64..=9)));
            body.push(Op::CallIndirect(sig));
        }
        // Global read (dense shape couples functions through globals).
        8 if !config.shape_is_flat() && config.globals > 0 => {
            let g = rng.gen_range(0u64..config.globals as u64);
            body.push(Op::GlobalGet(format!("g{g}")));
            body.push(Op::Drop);
        }
        // Fallback: a constant.
        _ => {
            body.push(Op::PushInt(rng.gen_range(0i64..=100)));
            body.push(Op::Drop);
        }
    }
}

impl StackWorkloadConfig {
    fn shape_is_flat(&self) -> bool {
        self.shape == StackShape::WideFlat
    }
}

/// Plants the trigger patterns of the requested bug kinds into the
/// early functions (and early globals), mirroring the classfile
/// generator's bug-cluster discipline: a good reducer keeps only the
/// planted prefix.
fn plant_bugs(module: &mut Module, config: &StackWorkloadConfig, rng: &mut SplitMix64) {
    let n = module.functions.len();
    let mut host = 0usize;
    let mut next_host = |rng: &mut SplitMix64| {
        let h = host % n.clamp(1, 4);
        host += 1 + rng.gen_range(0u64..=1) as usize;
        h
    };
    for kind in &config.plant {
        for plant in 0..config.plants_per_bug {
            match kind {
                StackBugKind::IndirectDispatchMiscompile => {
                    let h = next_host(rng);
                    let sig = Sig::new(vec![], None);
                    let body = &mut module.functions[h].body;
                    let at = body.len() - 1;
                    body.splice(at..at, [Op::PushInt(0), Op::CallIndirect(sig)]);
                }
                StackBugKind::NegativeConstantLowering => {
                    let h = next_host(rng);
                    let body = &mut module.functions[h].body;
                    let at = body.len() - 1;
                    body.splice(at..at, [Op::PushInt(-(plant as i64 + 1)), Op::Drop]);
                }
                StackBugKind::LoopUnrollOverflow => {
                    let h = next_host(rng);
                    let body = &mut module.functions[h].body;
                    let at = body.len() - 1;
                    // `push false; jump_if <self>` — a degenerate loop
                    // whose merge states agree.
                    body.splice(at..at, [Op::PushBool(false), Op::JumpIf(at as u32)]);
                }
                StackBugKind::GlobalAliasConfusion => {
                    if module.globals.is_empty() {
                        module.globals.push(Global::new("galias", Ty::Int));
                    }
                    let gname = module.globals[plant % module.globals.len()].name.clone();
                    let w = next_host(rng);
                    let body = &mut module.functions[w].body;
                    let at = body.len() - 1;
                    body.splice(at..at, [Op::PushInt(1), Op::GlobalSet(gname.clone())]);
                    let r = next_host(rng);
                    let body = &mut module.functions[r].body;
                    let at = body.len() - 1;
                    body.splice(at..at, [Op::GlobalGet(gname), Op::Drop]);
                }
                StackBugKind::CrossCallInliner => {
                    // Callee with a Mul body, plus a caller.
                    let callee = (n / 2 + plant) % n;
                    let body = &mut module.functions[callee].body;
                    let at = body.len() - 1;
                    body.splice(at..at, [Op::PushInt(3), Op::PushInt(5), Op::Mul, Op::Drop]);
                    let callee_name = module.functions[callee].name.clone();
                    let callee_params = module.functions[callee].params.clone();
                    let caller = next_host(rng);
                    if caller != callee {
                        let body = &mut module.functions[caller].body;
                        let at = body.len() - 1;
                        let mut call = Vec::new();
                        for _ in &callee_params {
                            call.push(Op::PushInt(0));
                        }
                        call.push(Op::Call(callee_name));
                        body.splice(at..at, call);
                    }
                }
            }
        }
    }
}

/// One failing (module, lowering pass) instance.
#[derive(Debug, Clone)]
pub struct StackBenchmark {
    /// A stable name, e.g. `svm3`.
    pub name: String,
    /// The input module.
    pub module: Module,
    /// The lowering pass's bugs.
    pub bugs: StackBugSet,
}

impl StackBenchmark {
    /// Builds the oracle for this benchmark.
    pub fn oracle(&self) -> StackOracle {
        StackOracle::new(&self.module, self.bugs.clone())
    }
}

/// Generates a stackvm benchmark suite: `count` modules with all bug
/// patterns planted, paired with the all-bugs lowering pass; only
/// failing instances are returned.
pub fn stack_suite(seed: u64, count: usize) -> Vec<StackBenchmark> {
    let mut out = Vec::new();
    for k in 0..count {
        let config = StackWorkloadConfig {
            seed: seed.wrapping_add(k as u64),
            shape: StackShape::ALL[k % StackShape::ALL.len()],
            plant: StackBugKind::ALL.to_vec(),
            ..StackWorkloadConfig::default()
        };
        let module = generate_stack(&config);
        let bugs = StackBugSet::all();
        if StackOracle::new(&module, bugs.clone()).is_failing() {
            out.push(StackBenchmark {
                name: format!("svm{k}"),
                module,
                bugs,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_stackvm::verify_module;

    #[test]
    fn every_shape_generates_verifying_modules() {
        for (i, shape) in StackShape::ALL.into_iter().enumerate() {
            for seed in 0..20u64 {
                let config = StackWorkloadConfig {
                    seed: seed * 31 + i as u64,
                    shape,
                    plant: StackBugKind::ALL.to_vec(),
                    ..StackWorkloadConfig::default()
                };
                let m = generate_stack(&config);
                let errors = verify_module(&m);
                assert!(
                    errors.is_empty(),
                    "{shape:?} seed {seed}: {}",
                    errors
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = StackWorkloadConfig {
            seed: 99,
            plant: StackBugKind::ALL.to_vec(),
            ..StackWorkloadConfig::default()
        };
        assert_eq!(generate_stack(&config), generate_stack(&config));
    }

    #[test]
    fn sampled_configs_generate_verifying_failing_modules() {
        for seed in 0..30u64 {
            let mut config = StackWorkloadConfig::sampled(seed);
            config.plant = StackBugKind::ALL.to_vec();
            let m = generate_stack(&config);
            assert!(verify_module(&m).is_empty(), "seed {seed} must verify");
            assert!(
                StackOracle::new(&m, StackBugSet::all()).is_failing(),
                "seed {seed} must fail"
            );
        }
    }

    #[test]
    fn suite_yields_failing_instances() {
        let suite = stack_suite(7, 4);
        assert!(!suite.is_empty());
        for b in &suite {
            assert!(b.oracle().is_failing(), "{} must fail", b.name);
            assert!(
                verify_module(&b.module).is_empty(),
                "{} must verify",
                b.name
            );
        }
    }
}
