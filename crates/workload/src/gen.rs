//! Seeded random generation of verifying bytecode programs.
//!
//! The generator works in two phases: it first *plans* every type (names,
//! hierarchy, members, obligations), then emits method bodies as sequences
//! of self-contained, stack-neutral statement templates, so the output
//! verifies by construction.
//!
//! Programs are organized into **clusters** — groups of classes and
//! interfaces that reference each other but rarely anything outside — the
//! modular shape of real NJR programs. Decompiler-bug trigger patterns are
//! planted only into the first few clusters, so a good reducer can discard
//! the rest; the random statement templates are chosen to *never* form a
//! trigger pattern accidentally, keeping baseline error counts at the
//! paper's scale (≈9 per benchmark) and every error's dependency footprint
//! local.

use lbr_classfile::{
    ClassFile, Code, FieldInfo, FieldRef, Flags, Insn, MethodDescriptor, MethodInfo, MethodRef,
    Program, Type,
};
use lbr_decompiler::BugKind;
use lbr_prng::{SliceChoose, SplitMix64};

/// Adversarial program shapes for the classfile generator: each preset
/// steers the dependency profile toward a different strategy's worst
/// case, mirroring [`crate::StackShape`] on the stackvm side (plus the
/// error-count axis that frontend lacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialShape {
    /// Dense cross-cluster references and heavy interface wiring — the
    /// logical model's clause count dominates its graph fraction, so
    /// closure pruning does the least work per probe.
    ConstraintDense,
    /// Many hierarchy-free classes in a few huge clusters — a wide,
    /// shallow containment tree, HDD's best case and a stress on
    /// per-level ddmin batch sizes.
    WideFlat,
    /// Near-mandatory subclassing and interface extension over tiny
    /// clusters — long dependency chains, ddmin's worst case and the
    /// best case for closure orders.
    DeepChain,
    /// Every bug kind planted several times over most clusters — many
    /// distinct baseline errors with overlapping footprints, stressing
    /// per-error reduction and trace-frequency orders.
    MultiError,
}

impl AdversarialShape {
    /// Every shape, in declaration order.
    pub const ALL: [AdversarialShape; 4] = [
        AdversarialShape::ConstraintDense,
        AdversarialShape::WideFlat,
        AdversarialShape::DeepChain,
        AdversarialShape::MultiError,
    ];
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
    /// Number of classes (excluding interfaces).
    pub classes: usize,
    /// Number of interfaces.
    pub interfaces: usize,
    /// Classes per cluster.
    pub cluster_size: usize,
    /// Probability that a call target crosses cluster boundaries.
    pub cross_cluster_prob: f64,
    /// Fraction of clusters that receive bug plants.
    pub bug_cluster_fraction: f64,
    /// Methods per class (uniform in this range, inclusive).
    pub methods_per_class: (usize, usize),
    /// Statements per method body.
    pub stmts_per_method: (usize, usize),
    /// Fields per class.
    pub fields_per_class: (usize, usize),
    /// Probability that a class extends another class (vs `Object`).
    pub subclass_prob: f64,
    /// Probability that a class implements an interface.
    pub implements_prob: f64,
    /// Probability that an interface extends another interface.
    pub iface_extends_prob: f64,
    /// How many instances of each requested bug pattern to plant.
    pub plants_per_bug: usize,
    /// The bug kinds whose trigger patterns should be planted.
    pub plant: Vec<BugKind>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0,
            classes: 24,
            interfaces: 8,
            cluster_size: 6,
            cross_cluster_prob: 0.015,
            bug_cluster_fraction: 0.25,
            methods_per_class: (2, 5),
            stmts_per_method: (2, 6),
            fields_per_class: (0, 3),
            subclass_prob: 0.35,
            implements_prob: 0.45,
            iface_extends_prob: 0.4,
            plants_per_bug: 3,
            plant: vec![BugKind::CastToObject],
        }
    }
}

impl WorkloadConfig {
    /// Scales class/interface counts by `factor` (≥ 0.05).
    pub fn scaled(mut self, factor: f64) -> Self {
        let f = factor.max(0.05);
        self.classes = ((self.classes as f64 * f) as usize).max(4);
        self.interfaces = ((self.interfaces as f64 * f) as usize).max(2);
        self
    }

    /// A configuration tuned to the paper's NJR benchmark statistics
    /// (geometric means: 184 classes, ~9 compiler errors, thousands of
    /// reducible items). Programs at this size take noticeably longer to
    /// reduce; the default suite uses smaller scales.
    pub fn njr_profile(seed: u64) -> Self {
        WorkloadConfig {
            seed,
            classes: 184,
            interfaces: 46,
            methods_per_class: (3, 7),
            stmts_per_method: (3, 8),
            plant: BugKind::ALL.to_vec(),
            ..WorkloadConfig::default()
        }
    }

    /// A randomized small configuration for differential fuzzing: the
    /// program geometry (class/interface counts, cluster size, member
    /// ranges, hierarchy probabilities) is drawn deterministically from
    /// `seed`, giving the harness structural diversity beyond the fixed
    /// profiles while staying cheap enough to reduce hundreds of times
    /// per minute. The bug-plant list is left at the default; callers
    /// substitute the kinds matching the decompiler under test.
    pub fn sampled(seed: u64) -> Self {
        // Decorrelate the geometry stream from the content stream: the
        // same `seed` feeds `generate` directly, so geometry must not
        // replay it.
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5EED_6E0E_7121_C0DE);
        let pct = |rng: &mut SplitMix64, lo: u64, hi: u64| rng.gen_range(lo..=hi) as f64 / 100.0;
        let m_lo = rng.gen_range(1usize..=2);
        let s_lo = rng.gen_range(1usize..=2);
        WorkloadConfig {
            seed,
            classes: rng.gen_range(6usize..=12),
            interfaces: rng.gen_range(2usize..=4),
            cluster_size: rng.gen_range(3usize..=6),
            cross_cluster_prob: pct(&mut rng, 0, 4),
            bug_cluster_fraction: pct(&mut rng, 25, 50),
            methods_per_class: (m_lo, m_lo + rng.gen_range(1usize..=2)),
            stmts_per_method: (s_lo, s_lo + rng.gen_range(1usize..=3)),
            fields_per_class: (0, rng.gen_range(1usize..=2)),
            subclass_prob: pct(&mut rng, 15, 50),
            implements_prob: pct(&mut rng, 25, 60),
            iface_extends_prob: pct(&mut rng, 20, 50),
            plants_per_bug: rng.gen_range(1usize..=2),
            ..WorkloadConfig::default()
        }
    }

    /// An adversarial-shape preset (see [`AdversarialShape`]): fixed
    /// geometry per shape, fully deterministic per `seed`, sized to stay
    /// cheap enough for fuzz campaigns. The plant list is left at the
    /// default for every shape but [`AdversarialShape::MultiError`];
    /// callers substitute the kinds matching the tool under test.
    pub fn adversarial(shape: AdversarialShape, seed: u64) -> Self {
        let base = WorkloadConfig {
            seed,
            ..WorkloadConfig::default()
        };
        match shape {
            AdversarialShape::ConstraintDense => WorkloadConfig {
                classes: 14,
                interfaces: 7,
                cluster_size: 3,
                cross_cluster_prob: 0.25,
                subclass_prob: 0.7,
                implements_prob: 0.9,
                iface_extends_prob: 0.8,
                methods_per_class: (3, 5),
                ..base
            },
            AdversarialShape::WideFlat => WorkloadConfig {
                classes: 28,
                interfaces: 2,
                cluster_size: 14,
                cross_cluster_prob: 0.0,
                subclass_prob: 0.0,
                implements_prob: 0.05,
                iface_extends_prob: 0.0,
                methods_per_class: (1, 2),
                fields_per_class: (0, 1),
                ..base
            },
            AdversarialShape::DeepChain => WorkloadConfig {
                classes: 16,
                interfaces: 4,
                cluster_size: 2,
                cross_cluster_prob: 0.3,
                subclass_prob: 0.95,
                implements_prob: 0.3,
                iface_extends_prob: 0.9,
                ..base
            },
            AdversarialShape::MultiError => WorkloadConfig {
                classes: 18,
                interfaces: 6,
                bug_cluster_fraction: 0.75,
                plants_per_bug: 4,
                plant: BugKind::ALL.to_vec(),
                ..base
            },
        }
    }

    fn clusters(&self) -> usize {
        self.classes.div_ceil(self.cluster_size).max(1)
    }

    fn bug_clusters(&self) -> usize {
        ((self.clusters() as f64 * self.bug_cluster_fraction).ceil() as usize)
            .clamp(1, self.clusters())
    }
}

struct IfacePlan {
    name: String,
    cluster: usize,
    extends: Vec<String>,
    sigs: Vec<(String, MethodDescriptor)>,
}

struct ClassPlan {
    name: String,
    cluster: usize,
    superclass: String,
    interfaces: Vec<String>,
    fields: Vec<(String, Type)>,
    /// Concrete instance methods (includes interface obligations).
    methods: Vec<(String, MethodDescriptor)>,
    /// Static utility methods.
    statics: Vec<(String, MethodDescriptor)>,
    /// Whether the class also gets a two-int constructor (the
    /// `CtorArgDropper` ingredient).
    extra_ctor: bool,
}

struct Plan {
    interfaces: Vec<IfacePlan>,
    classes: Vec<ClassPlan>,
}

/// Generates a verifying program.
pub fn generate(config: &WorkloadConfig) -> Program {
    let mut rng = SplitMix64::seed_from_u64(config.seed);
    let plan = make_plan(config, &mut rng);
    let mut program = emit(config, &plan, &mut rng);
    plant_bugs(config, &plan, &mut program, &mut rng);
    debug_assert!(
        lbr_classfile::verify_program(&program).is_empty(),
        "generator must produce verifying programs: {:?}",
        lbr_classfile::verify_program(&program)
    );
    program
}

// ----------------------------------------------------------------------
// Planning.
// ----------------------------------------------------------------------

fn make_plan(config: &WorkloadConfig, rng: &mut SplitMix64) -> Plan {
    let nclusters = config.clusters();
    // Interfaces, distributed round-robin over clusters; an interface may
    // extend an earlier interface of the *same* cluster.
    let mut interfaces: Vec<IfacePlan> = Vec::new();
    for i in 0..config.interfaces {
        let cluster = i % nclusters;
        let name = format!("Iface{i}");
        let mut extends = Vec::new();
        if rng.gen_bool(config.iface_extends_prob) {
            let earlier: Vec<&IfacePlan> =
                interfaces.iter().filter(|p| p.cluster == cluster).collect();
            if let Some(target) = earlier.choose(rng) {
                extends.push(target.name.clone());
            }
        }
        let nsigs = rng.gen_range(1..=2);
        let sigs = (0..nsigs)
            .map(|k| {
                // The first signature is always parameterless so that
                // cast-then-invoke bug patterns (which need the invoke to
                // directly follow the cast) can always be planted.
                let desc = if k == 0 {
                    let mut d = random_descriptor(config, cluster, rng);
                    d.params.clear();
                    d
                } else {
                    random_descriptor(config, cluster, rng)
                };
                (format!("im{i}_{k}"), desc)
            })
            .collect();
        interfaces.push(IfacePlan {
            name,
            cluster,
            extends,
            sigs,
        });
    }
    // Classes.
    let mut classes: Vec<ClassPlan> = Vec::new();
    for c in 0..config.classes {
        let cluster = c / config.cluster_size;
        let name = format!("Cls{c}");
        let local_earlier: Vec<String> = classes
            .iter()
            .filter(|p| p.cluster == cluster)
            .map(|p| p.name.clone())
            .collect();
        let superclass = if rng.gen_bool(config.subclass_prob) {
            local_earlier
                .choose(rng)
                .cloned()
                .unwrap_or_else(|| "Object".to_owned())
        } else {
            "Object".to_owned()
        };
        let mut ifaces: Vec<String> = Vec::new();
        if rng.gen_bool(config.implements_prob) {
            let local: Vec<&IfacePlan> =
                interfaces.iter().filter(|p| p.cluster == cluster).collect();
            // The paper notes classes implementing *multiple* interfaces
            // need special constraint-generation attention; exercise it.
            let count = if local.len() >= 2 && rng.gen_bool(0.3) {
                2
            } else {
                1
            };
            for ip in local.choose_multiple(rng, count) {
                if !ifaces.contains(&ip.name) {
                    ifaces.push(ip.name.clone());
                }
            }
        }
        let nfields = rng.gen_range(config.fields_per_class.0..=config.fields_per_class.1);
        let fields = (0..nfields)
            .map(|k| {
                let ty = if rng.gen_bool(0.5) {
                    Type::Int
                } else {
                    Type::reference(cluster_class(config, cluster, rng))
                };
                (format!("f{c}_{k}"), ty)
            })
            .collect();
        let nmethods = rng.gen_range(config.methods_per_class.0..=config.methods_per_class.1);
        let mut methods: Vec<(String, MethodDescriptor)> = (0..nmethods)
            .map(|k| (format!("m{c}_{k}"), random_descriptor(config, cluster, rng)))
            .collect();
        // Obligations: implement every signature of the interface closure.
        let mut obligation_sources: Vec<&IfacePlan> = Vec::new();
        let mut queue: Vec<&str> = ifaces.iter().map(String::as_str).collect();
        while let Some(iname) = queue.pop() {
            if let Some(ip) = interfaces.iter().find(|p| p.name == iname) {
                if !obligation_sources.iter().any(|p| p.name == ip.name) {
                    obligation_sources.push(ip);
                    queue.extend(ip.extends.iter().map(String::as_str));
                }
            }
        }
        for src in obligation_sources {
            for (mname, desc) in &src.sigs {
                if !methods.iter().any(|(n, d)| n == mname && d == desc) {
                    methods.push((mname.clone(), desc.clone()));
                }
            }
        }
        let statics = if rng.gen_bool(0.3) {
            vec![(
                format!("util{c}"),
                MethodDescriptor::new(vec![Type::Int], Some(Type::Int)),
            )]
        } else {
            Vec::new()
        };
        classes.push(ClassPlan {
            name,
            cluster,
            superclass,
            interfaces: ifaces,
            fields,
            methods,
            statics,
            extra_ctor: rng.gen_bool(0.25),
        });
    }
    Plan {
        interfaces,
        classes,
    }
}

/// A random class name from `cluster`.
fn cluster_class(config: &WorkloadConfig, cluster: usize, rng: &mut SplitMix64) -> String {
    let lo = cluster * config.cluster_size;
    let hi = ((cluster + 1) * config.cluster_size).min(config.classes);
    format!("Cls{}", rng.gen_range(lo..hi))
}

fn random_descriptor(
    config: &WorkloadConfig,
    cluster: usize,
    rng: &mut SplitMix64,
) -> MethodDescriptor {
    let nparams = rng.gen_range(0..=2);
    let params = (0..nparams)
        .map(|_| {
            if rng.gen_bool(0.6) {
                Type::Int
            } else {
                Type::reference(cluster_class(config, cluster, rng))
            }
        })
        .collect();
    let ret = match rng.gen_range(0..3) {
        0 => None,
        1 => Some(Type::Int),
        _ => Some(Type::reference(cluster_class(config, cluster, rng))),
    };
    MethodDescriptor::new(params, ret)
}

impl Plan {
    fn class(&self, name: &str) -> Option<&ClassPlan> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Concrete call targets, optionally restricted to a cluster set.
    fn call_targets(&self, clusters: Option<&[usize]>) -> Vec<(String, String, MethodDescriptor)> {
        let mut out = Vec::new();
        for c in &self.classes {
            if clusters.is_some_and(|cs| !cs.contains(&c.cluster)) {
                continue;
            }
            for (m, d) in &c.methods {
                out.push((c.name.clone(), m.clone(), d.clone()));
            }
        }
        out
    }

    /// `(implementing class, interface, method, desc)` interface dispatch
    /// targets.
    fn interface_targets(
        &self,
        clusters: Option<&[usize]>,
    ) -> Vec<(String, String, String, MethodDescriptor)> {
        let mut out = Vec::new();
        for c in &self.classes {
            if clusters.is_some_and(|cs| !cs.contains(&c.cluster)) {
                continue;
            }
            for iname in &c.interfaces {
                let mut queue = vec![iname.clone()];
                let mut seen = Vec::new();
                while let Some(i) = queue.pop() {
                    if seen.contains(&i) {
                        continue;
                    }
                    seen.push(i.clone());
                    if let Some(ip) = self.interfaces.iter().find(|p| p.name == i) {
                        for (m, d) in &ip.sigs {
                            out.push((c.name.clone(), iname.clone(), m.clone(), d.clone()));
                        }
                        queue.extend(ip.extends.iter().cloned());
                    }
                }
            }
        }
        out
    }

    /// Chained field pairs `class.f.g` restricted to a cluster set.
    fn chained_fields(
        &self,
        clusters: Option<&[usize]>,
    ) -> Vec<(String, String, String, String, Type)> {
        let mut out = Vec::new();
        for c in &self.classes {
            if clusters.is_some_and(|cs| !cs.contains(&c.cluster)) {
                continue;
            }
            for (fname, fty) in &c.fields {
                if let Some(inner) = fty.class_name() {
                    if let Some(ic) = self.class(inner) {
                        for (gname, gty) in &ic.fields {
                            out.push((
                                c.name.clone(),
                                fname.clone(),
                                inner.to_owned(),
                                gname.clone(),
                                gty.clone(),
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    fn statics(&self, clusters: Option<&[usize]>) -> Vec<(String, String, MethodDescriptor)> {
        let mut out = Vec::new();
        for c in &self.classes {
            if clusters.is_some_and(|cs| !cs.contains(&c.cluster)) {
                continue;
            }
            for (m, d) in &c.statics {
                out.push((c.name.clone(), m.clone(), d.clone()));
            }
        }
        out
    }
}

// ----------------------------------------------------------------------
// Emission.
// ----------------------------------------------------------------------

fn emit(config: &WorkloadConfig, plan: &Plan, rng: &mut SplitMix64) -> Program {
    let mut program = Program::new();
    for ip in &plan.interfaces {
        let mut iface = ClassFile::new_interface(&ip.name);
        iface.interfaces = ip.extends.clone();
        for (m, d) in &ip.sigs {
            iface.methods.push(MethodInfo::new_abstract(m, d.clone()));
        }
        program.insert(iface);
    }
    for cp in &plan.classes {
        let mut class = ClassFile::new_class(&cp.name);
        class.superclass = Some(cp.superclass.clone());
        class.interfaces = cp.interfaces.clone();
        for (f, ty) in &cp.fields {
            class.fields.push(FieldInfo::new(f, ty.clone()));
        }
        class.methods.push(make_ctor(cp));
        if cp.extra_ctor {
            class.methods.push(make_two_int_ctor(cp));
        }
        for (m, d) in &cp.methods {
            class.methods.push(MethodInfo::new(
                m,
                d.clone(),
                make_body(config, plan, cp, d, rng),
            ));
        }
        for (m, d) in &cp.statics {
            let mut info = MethodInfo::new(m, d.clone(), static_body());
            info.flags |= Flags::STATIC;
            class.methods.push(info);
        }
        program.insert(class);
    }
    program
}

fn make_ctor(cp: &ClassPlan) -> MethodInfo {
    MethodInfo::new(
        "<init>",
        MethodDescriptor::void(),
        Code::new(
            2,
            1,
            vec![
                Insn::ALoad(0),
                Insn::InvokeSpecial(MethodRef::new(
                    cp.superclass.clone(),
                    "<init>",
                    MethodDescriptor::void(),
                )),
                Insn::Return,
            ],
        ),
    )
}

/// `C(int, int) { super(); }` — the multi-argument constructor the
/// `CtorArgDropper` bug targets.
fn make_two_int_ctor(cp: &ClassPlan) -> MethodInfo {
    MethodInfo::new(
        "<init>",
        MethodDescriptor::new(vec![Type::Int, Type::Int], None),
        Code::new(
            2,
            3,
            vec![
                Insn::ALoad(0),
                Insn::InvokeSpecial(MethodRef::new(
                    cp.superclass.clone(),
                    "<init>",
                    MethodDescriptor::void(),
                )),
                Insn::Return,
            ],
        ),
    )
}

/// `static int util(int) { return p0 + 1; }` — note: one literal operand,
/// which does not trigger the literal+literal `AddNullifier` bug.
fn static_body() -> Code {
    Code::new(
        2,
        1,
        vec![Insn::ILoad(0), Insn::IConst(1), Insn::IAdd, Insn::IReturn],
    )
}

/// Emits a verifying body: a run of stack-neutral statement templates,
/// then a return. Templates are chosen to never form a decompiler-bug
/// trigger pattern (no cast-before-invoke, no `instanceof`, no static
/// calls, no literal+literal additions, no reflection, no chained field
/// reads) — those come only from planting.
fn make_body(
    config: &WorkloadConfig,
    plan: &Plan,
    cp: &ClassPlan,
    desc: &MethodDescriptor,
    rng: &mut SplitMix64,
) -> Code {
    let mut insns: Vec<Insn> = Vec::new();
    let nstmts = rng.gen_range(config.stmts_per_method.0..=config.stmts_per_method.1);
    let scratch_slot = 1 + desc.params.len() as u16;
    for _ in 0..nstmts {
        insns.extend(random_statement(config, plan, cp, scratch_slot, rng));
    }
    emit_return(&mut insns, desc);
    Code::new(10, scratch_slot + 1, insns)
}

fn emit_return(insns: &mut Vec<Insn>, desc: &MethodDescriptor) {
    match &desc.ret {
        None => insns.push(Insn::Return),
        Some(Type::Int) => {
            insns.push(Insn::IConst(0));
            insns.push(Insn::IReturn);
        }
        Some(Type::Reference(_)) => {
            insns.push(Insn::AConstNull);
            insns.push(Insn::AReturn);
        }
    }
}

/// Pushes a value of `ty` onto the stack (null for references, or a fresh
/// instance half the time).
fn push_value(plan: &Plan, ty: &Type, rng: &mut SplitMix64, out: &mut Vec<Insn>) {
    match ty {
        Type::Int => out.push(Insn::IConst(rng.gen_range(0..100))),
        Type::Reference(c) => {
            if plan.class(c).is_some() && rng.gen_bool(0.5) {
                fresh_instance(c, out);
            } else {
                out.push(Insn::AConstNull);
            }
        }
    }
}

/// `new C(); dup; <init>()` — leaves one `C` on the stack.
fn fresh_instance(class: &str, out: &mut Vec<Insn>) {
    out.push(Insn::New(class.to_owned()));
    out.push(Insn::Dup);
    out.push(Insn::InvokeSpecial(MethodRef::new(
        class,
        "<init>",
        MethodDescriptor::void(),
    )));
}

fn drop_result(out: &mut Vec<Insn>, ret: &Option<Type>) {
    if ret.is_some() {
        out.push(Insn::Pop);
    }
}

fn random_statement(
    config: &WorkloadConfig,
    plan: &Plan,
    cp: &ClassPlan,
    scratch_slot: u16,
    rng: &mut SplitMix64,
) -> Vec<Insn> {
    let mut out = Vec::new();
    // Call targets: usually the own cluster, occasionally anywhere.
    let local = [cp.cluster];
    let scope: Option<&[usize]> = if rng.gen_bool(config.cross_cluster_prob) {
        None
    } else {
        Some(&local)
    };
    match rng.gen_range(0..6) {
        // Virtual call on a fresh instance.
        0 => {
            let targets = plan.call_targets(scope);
            if let Some((class, m, d)) = targets.choose(rng).cloned() {
                fresh_instance(&class, &mut out);
                for p in &d.params {
                    push_value(plan, p, rng, &mut out);
                }
                out.push(Insn::InvokeVirtual(MethodRef::new(class, m, d.clone())));
                drop_result(&mut out, &d.ret);
            }
        }
        // Interface dispatch — without an upcast, so the CastToObject
        // trigger never occurs accidentally.
        1 => {
            let targets = plan.interface_targets(scope);
            if let Some((class, iface, m, d)) = targets.choose(rng).cloned() {
                fresh_instance(&class, &mut out);
                for p in &d.params {
                    push_value(plan, p, rng, &mut out);
                }
                out.push(Insn::InvokeInterface(MethodRef::new(iface, m, d.clone())));
                drop_result(&mut out, &d.ret);
            }
        }
        // Own-field read (single access — never a chain).
        2 => {
            if let Some((f, ty)) = cp.fields.choose(rng).cloned() {
                out.push(Insn::ALoad(0));
                out.push(Insn::GetField(FieldRef::new(cp.name.clone(), f, ty)));
                out.push(Insn::Pop);
            }
        }
        // Own-field write (ints only — always assignable).
        3 => {
            if let Some((f, ty)) = cp.fields.iter().find(|(_, t)| *t == Type::Int).cloned() {
                out.push(Insn::ALoad(0));
                out.push(Insn::IConst(rng.gen_range(0..10)));
                out.push(Insn::PutField(FieldRef::new(cp.name.clone(), f, ty)));
            }
        }
        // Integer arithmetic through a scratch local, so neither operand
        // is a literal+literal pair.
        4 => {
            out.push(Insn::IConst(rng.gen_range(0..50)));
            out.push(Insn::IStore(scratch_slot));
            out.push(Insn::ILoad(scratch_slot));
            out.push(Insn::IConst(rng.gen_range(0..50)));
            out.push(Insn::IAdd);
            out.push(Insn::Pop);
        }
        // Fresh instance, discarded.
        _ => {
            let class = cluster_class(config, cp.cluster, rng);
            if plan.class(&class).is_some() {
                fresh_instance(&class, &mut out);
                out.push(Insn::Pop);
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// Bug-pattern planting.
// ----------------------------------------------------------------------

fn plant_bugs(config: &WorkloadConfig, plan: &Plan, program: &mut Program, rng: &mut SplitMix64) {
    let bug_clusters: Vec<usize> = (0..config.bug_clusters()).collect();
    for &bug in &config.plant {
        for _ in 0..config.plants_per_bug {
            if let Some(pattern) = bug_pattern(plan, bug, &bug_clusters, rng) {
                inject(plan, program, &bug_clusters, pattern, rng);
            }
        }
    }
}

/// Builds the instruction pattern that triggers `bug`, preferring
/// ingredients from the bug clusters.
fn bug_pattern(
    plan: &Plan,
    bug: BugKind,
    clusters: &[usize],
    rng: &mut SplitMix64,
) -> Option<Vec<Insn>> {
    let scoped = Some(clusters);
    let mut out = Vec::new();
    match bug {
        BugKind::CastToObject => {
            // The trigger needs the invoke to directly follow the cast, so
            // only parameterless signatures qualify.
            let targets: Vec<_> = or_global(plan.interface_targets(scoped), || {
                plan.interface_targets(None)
            })
            .into_iter()
            .filter(|(_, _, _, d)| d.params.is_empty())
            .collect();
            let (class, iface, m, d) = targets.choose(rng)?.clone();
            fresh_instance(&class, &mut out);
            out.push(Insn::CheckCast(iface.clone()));
            out.push(Insn::InvokeInterface(MethodRef::new(iface, m, d.clone())));
            drop_result(&mut out, &d.ret);
        }
        BugKind::EatPatternMatch => {
            let class = plan
                .classes
                .iter()
                .filter(|c| clusters.contains(&c.cluster))
                .map(|c| c.name.clone())
                .collect::<Vec<_>>();
            out.push(Insn::ALoad(0));
            out.push(Insn::InstanceOf(class.choose(rng)?.clone()));
            out.push(Insn::Pop);
        }
        BugKind::StaticGhostReceiver => {
            let statics = or_global(plan.statics(scoped), || plan.statics(None));
            let (class, m, d) = statics.choose(rng)?.clone();
            push_default_args(&d, &mut out);
            out.push(Insn::InvokeStatic(MethodRef::new(class, m, d.clone())));
            drop_result(&mut out, &d.ret);
        }
        BugKind::CtorArgDropper => {
            let with_extra: Vec<&ClassPlan> = plan
                .classes
                .iter()
                .filter(|c| c.extra_ctor && clusters.contains(&c.cluster))
                .collect();
            let target = with_extra.choose(rng)?;
            out.push(Insn::New(target.name.clone()));
            out.push(Insn::Dup);
            out.push(Insn::IConst(4));
            out.push(Insn::IConst(5));
            out.push(Insn::InvokeSpecial(MethodRef::new(
                target.name.clone(),
                "<init>",
                MethodDescriptor::new(vec![Type::Int, Type::Int], None),
            )));
            out.push(Insn::Pop);
        }
        BugKind::FieldRenamer => {
            let chains = or_global(plan.chained_fields(scoped), || plan.chained_fields(None));
            let (class, f, inner, g, gty) = chains.choose(rng)?.clone();
            fresh_instance(&class, &mut out);
            out.push(Insn::GetField(FieldRef::new(
                class,
                f,
                Type::reference(inner.clone()),
            )));
            out.push(Insn::GetField(FieldRef::new(inner, g, gty)));
            out.push(Insn::Pop);
        }
        BugKind::ReflectionTypo => {
            let class = plan
                .classes
                .iter()
                .filter(|c| clusters.contains(&c.cluster))
                .map(|c| c.name.clone())
                .collect::<Vec<_>>();
            out.push(Insn::LdcClass(class.choose(rng)?.clone()));
            out.push(Insn::Pop);
        }
        BugKind::AddNullifier => {
            out.push(Insn::IConst(7));
            out.push(Insn::IConst(35));
            out.push(Insn::IAdd);
            out.push(Insn::Pop);
        }
        BugKind::SuperInterfaceAmnesia => {
            let mut candidates = Vec::new();
            for c in &plan.classes {
                for iname in &c.interfaces {
                    if let Some(ip) = plan.interfaces.iter().find(|p| p.name == *iname) {
                        for sup in &ip.extends {
                            if let Some(jp) = plan.interfaces.iter().find(|p| p.name == *sup) {
                                for (m, d) in &jp.sigs {
                                    candidates.push((
                                        c.name.clone(),
                                        iname.clone(),
                                        m.clone(),
                                        d.clone(),
                                        c.cluster,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            candidates.retain(|(_, _, _, d, _)| d.params.is_empty());
            let local: Vec<_> = candidates
                .iter()
                .filter(|(_, _, _, _, cl)| clusters.contains(cl))
                .cloned()
                .collect();
            let pool = if local.is_empty() { candidates } else { local };
            let (class, iface, m, d, _) = pool.choose(rng)?.clone();
            fresh_instance(&class, &mut out);
            out.push(Insn::CheckCast(iface.clone()));
            out.push(Insn::InvokeInterface(MethodRef::new(iface, m, d.clone())));
            drop_result(&mut out, &d.ret);
        }
    }
    Some(out)
}

fn or_global<T, F: FnOnce() -> Vec<T>>(local: Vec<T>, global: F) -> Vec<T> {
    if local.is_empty() {
        global()
    } else {
        local
    }
}

fn push_default_args(d: &MethodDescriptor, out: &mut Vec<Insn>) {
    for p in &d.params {
        match p {
            Type::Int => out.push(Insn::IConst(1)),
            Type::Reference(_) => out.push(Insn::AConstNull),
        }
    }
}

/// Prepends a planted pattern to a randomly chosen concrete method body of
/// a bug-cluster class.
fn inject(
    plan: &Plan,
    program: &mut Program,
    clusters: &[usize],
    pattern: Vec<Insn>,
    rng: &mut SplitMix64,
) {
    let class_names: Vec<String> = plan
        .classes
        .iter()
        .filter(|c| clusters.contains(&c.cluster))
        .map(|c| c.name.clone())
        .collect();
    for _ in 0..10 {
        let Some(name) = class_names.choose(rng) else {
            return;
        };
        let Some(class) = program.get_mut(name) else {
            continue;
        };
        let candidates: Vec<usize> = class
            .methods
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_init() && !m.flags.is_static() && m.code.is_some())
            .map(|(i, _)| i)
            .collect();
        let Some(&idx) = candidates.choose(rng) else {
            continue;
        };
        let code = class.methods[idx].code.as_mut().expect("filtered on code");
        let mut insns = pattern.clone();
        insns.extend(code.insns.iter().cloned());
        code.insns = insns;
        code.max_stack = code.max_stack.max(10);
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_classfile::verify_program;

    #[test]
    fn generates_verifying_programs() {
        for seed in 0..8 {
            let config = WorkloadConfig {
                seed,
                plant: BugKind::ALL.to_vec(),
                ..WorkloadConfig::default()
            };
            let p = generate(&config);
            let errors = verify_program(&p);
            assert!(errors.is_empty(), "seed {seed}: {errors:?}");
            assert!(p.len() >= config.classes);
        }
    }

    #[test]
    fn some_classes_implement_multiple_interfaces() {
        let mut found = false;
        for seed in 0..6 {
            let p = generate(&WorkloadConfig {
                seed,
                classes: 40,
                interfaces: 12,
                implements_prob: 0.8,
                plant: vec![],
                ..WorkloadConfig::default()
            });
            if p.classes()
                .any(|c| !c.is_interface() && c.interfaces.len() >= 2)
            {
                found = true;
                break;
            }
        }
        assert!(found, "expected some multi-interface class across seeds");
    }

    #[test]
    fn njr_profile_matches_paper_scale() {
        let p = generate(&WorkloadConfig::njr_profile(1));
        // Paper geo-means: 184 classes, 285 KB. Same order of magnitude.
        assert!(p.len() >= 184, "classes: {}", p.len());
        let bytes = lbr_classfile::program_byte_size(&p);
        assert!(bytes > 100_000, "bytes: {bytes}");
        assert!(lbr_classfile::verify_program(&p).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let config = WorkloadConfig::default();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a, b);
        let c = generate(&WorkloadConfig { seed: 99, ..config });
        assert_ne!(a, c);
    }

    #[test]
    fn scaling_changes_size() {
        let small = generate(&WorkloadConfig::default().scaled(0.3));
        let large = generate(&WorkloadConfig::default().scaled(2.0));
        assert!(large.len() > small.len());
    }

    #[test]
    fn planted_cast_patterns_exist_only_in_bug_clusters() {
        let config = WorkloadConfig {
            plant: vec![BugKind::CastToObject],
            plants_per_bug: 3,
            classes: 30,
            ..WorkloadConfig::default()
        };
        let p = generate(&config);
        let bug_classes = config.bug_clusters() * config.cluster_size;
        let mut found = 0;
        for class in p.classes() {
            for m in &class.methods {
                if let Some(code) = &m.code {
                    for w in code.insns.windows(2) {
                        if matches!(
                            (&w[0], &w[1]),
                            (Insn::CheckCast(_), Insn::InvokeInterface(_))
                        ) {
                            found += 1;
                            // Trigger must live in a bug cluster.
                            let idx: usize = class.name["Cls".len()..].parse().unwrap();
                            assert!(
                                idx < bug_classes,
                                "trigger planted outside bug clusters: {}",
                                class.name
                            );
                        }
                    }
                }
            }
        }
        assert!(found >= 1, "expected planted cast→invokeinterface patterns");
    }

    #[test]
    fn random_templates_do_not_trigger_bugs() {
        // With nothing planted, all three decompilers must be clean on the
        // generated program.
        use lbr_decompiler::{BugSet, DecompilerOracle};
        for seed in 0..4 {
            let config = WorkloadConfig {
                seed,
                plant: vec![],
                ..WorkloadConfig::default()
            };
            let p = generate(&config);
            for bugs in [
                BugSet::decompiler_a(),
                BugSet::decompiler_b(),
                BugSet::decompiler_c(),
                BugSet::all(),
            ] {
                let oracle = DecompilerOracle::new(&p, bugs.clone());
                assert!(
                    !oracle.is_failing(),
                    "seed {seed}: accidental trigger with {bugs:?}: {:?}",
                    oracle.baseline()
                );
            }
        }
    }

    #[test]
    fn sampled_configs_are_deterministic_and_verify() {
        for seed in [0u64, 1, 7, 0xC0FFEE] {
            let a = WorkloadConfig::sampled(seed);
            let b = WorkloadConfig::sampled(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            assert!((6..=12).contains(&a.classes));
            assert!(a.methods_per_class.0 <= a.methods_per_class.1);
            assert!(a.stmts_per_method.0 <= a.stmts_per_method.1);
            let p = generate(&a);
            assert!(
                lbr_classfile::verify_program(&p).is_empty(),
                "sampled seed {seed} must generate a verifying program"
            );
        }
        // Different seeds should explore different geometries.
        let g0 = WorkloadConfig::sampled(0);
        let distinct = (1..32u64)
            .map(WorkloadConfig::sampled)
            .filter(|c| c.classes != g0.classes || c.interfaces != g0.interfaces)
            .count();
        assert!(
            distinct > 16,
            "sampled geometry barely varies: {distinct}/31"
        );
    }

    #[test]
    fn clusters_limit_cross_references() {
        let config = WorkloadConfig {
            classes: 30,
            cross_cluster_prob: 0.0,
            plant: vec![],
            ..WorkloadConfig::default()
        };
        let p = generate(&config);
        // With zero cross-cluster probability, a class references only
        // names of its own cluster (or Object).
        for class in p.classes() {
            if class.is_interface() {
                continue;
            }
            let idx: usize = class.name["Cls".len()..].parse().unwrap();
            let cluster = idx / config.cluster_size;
            for m in &class.methods {
                if let Some(code) = &m.code {
                    for insn in &code.insns {
                        for r in insn.referenced_classes() {
                            if let Some(num) = r.strip_prefix("Cls") {
                                let ridx: usize = num.parse().unwrap();
                                assert_eq!(
                                    ridx / config.cluster_size,
                                    cluster,
                                    "{} references {} across clusters",
                                    class.name,
                                    r
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn adversarial_shapes_verify_and_fail() {
        use lbr_decompiler::BugSet;
        for shape in AdversarialShape::ALL {
            for seed in [1u64, 77, 4242] {
                let mut config = WorkloadConfig::adversarial(shape, seed);
                if shape != AdversarialShape::MultiError {
                    config.plant = BugSet::decompiler_a().kinds().to_vec();
                }
                let p = generate(&config);
                assert!(
                    lbr_classfile::verify_program(&p).is_empty(),
                    "{shape:?}/{seed} must verify"
                );
                let oracle = lbr_decompiler::DecompilerOracle::new(&p, BugSet::decompiler_a());
                assert!(
                    oracle.is_failing(),
                    "{shape:?}/{seed} must fail decompiler a"
                );
            }
        }
        // MultiError's whole point: several distinct baseline errors.
        let p = generate(&WorkloadConfig::adversarial(
            AdversarialShape::MultiError,
            9,
        ));
        let oracle = lbr_decompiler::DecompilerOracle::new(&p, BugSet::all());
        assert!(
            oracle.error_count() >= 4,
            "multi-error shape yields {} errors",
            oracle.error_count()
        );
    }
}
