//! NJR-like synthetic benchmark generation for bytecode reduction.
//!
//! The paper evaluates on 96 programs from the NJR corpus paired with
//! three decompilers (227 failing instances; geometric means of 184
//! classes, 285 KB, 9.2 compiler errors per benchmark). Real NJR programs
//! and real decompilers are unavailable here, so this crate generates
//! programs with the same *dependency profile* — class/interface
//! hierarchies, virtual and interface dispatch, casts, fields, statics,
//! reflection — plants the bug-trigger patterns of
//! [`lbr_decompiler`]'s catalog, and assembles failing
//! (program, decompiler) instances.
//!
//! Everything is deterministic per seed, and every generated program
//! verifies by construction.
//!
//! # Example
//!
//! ```
//! use lbr_workload::{suite, SuiteConfig};
//! let benchmarks = suite(&SuiteConfig { programs: 2, ..SuiteConfig::default() });
//! for b in &benchmarks {
//!     assert!(b.oracle().is_failing());
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod gen;
mod stackgen;
mod stats;
mod suite;

pub use gen::{generate, AdversarialShape, WorkloadConfig};
pub use stackgen::{generate_stack, stack_suite, StackBenchmark, StackShape, StackWorkloadConfig};
pub use stats::{geometric_mean, suite_stats, SuiteStats};
pub use suite::{suite, Benchmark, SuiteConfig};
