//! Property test: any well-formed in-memory class survives the binary
//! writer/reader round trip — including branchy code, odd flags, and
//! adversarial names the workload generator would never produce.

use lbr_classfile::{
    read_class, write_class, ClassFile, Code, FieldInfo, FieldRef, Flags, Insn,
    MethodDescriptor, MethodInfo, MethodRef, Type,
};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z_$][A-Za-z0-9_$]{0,11}"
}

fn arb_type() -> impl Strategy<Value = Type> {
    prop_oneof![Just(Type::Int), arb_name().prop_map(Type::reference)]
}

fn arb_desc() -> impl Strategy<Value = MethodDescriptor> {
    (
        prop::collection::vec(arb_type(), 0..4),
        prop::option::of(arb_type()),
    )
        .prop_map(|(params, ret)| MethodDescriptor::new(params, ret))
}

fn arb_field_ref() -> impl Strategy<Value = FieldRef> {
    (arb_name(), arb_name(), arb_type()).prop_map(|(c, n, t)| FieldRef::new(c, n, t))
}

fn arb_method_ref() -> impl Strategy<Value = MethodRef> {
    (arb_name(), arb_name(), arb_desc()).prop_map(|(c, n, d)| MethodRef::new(c, n, d))
}

/// Instructions with branch targets bounded by `len` so the encoded
/// offsets always land on real instructions.
fn arb_insn(len: u16) -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Nop),
        any::<i32>().prop_map(Insn::IConst),
        Just(Insn::AConstNull),
        (0u16..8).prop_map(Insn::ILoad),
        (0u16..8).prop_map(Insn::IStore),
        (0u16..8).prop_map(Insn::ALoad),
        (0u16..8).prop_map(Insn::AStore),
        Just(Insn::Pop),
        Just(Insn::Dup),
        Just(Insn::IAdd),
        arb_name().prop_map(Insn::LdcClass),
        arb_name().prop_map(Insn::New),
        arb_field_ref().prop_map(Insn::GetField),
        arb_field_ref().prop_map(Insn::PutField),
        arb_method_ref().prop_map(Insn::InvokeVirtual),
        arb_method_ref().prop_map(Insn::InvokeInterface),
        arb_method_ref().prop_map(Insn::InvokeSpecial),
        arb_method_ref().prop_map(Insn::InvokeStatic),
        arb_name().prop_map(Insn::CheckCast),
        arb_name().prop_map(Insn::InstanceOf),
        (0..len).prop_map(Insn::Goto),
        (0..len).prop_map(Insn::IfEq),
        Just(Insn::Return),
        Just(Insn::AReturn),
        Just(Insn::IReturn),
        Just(Insn::AThrow),
    ]
}

fn arb_code() -> impl Strategy<Value = Code> {
    (1u16..24).prop_flat_map(|len| {
        (
            prop::collection::vec(arb_insn(len), len as usize..=len as usize),
            0u16..16,
            0u16..16,
        )
            .prop_map(|(insns, max_stack, max_locals)| Code::new(max_stack, max_locals, insns))
    })
}

fn arb_flags() -> impl Strategy<Value = Flags> {
    // Any u16 round-trips; use realistic-ish combinations.
    prop_oneof![
        Just(Flags::PUBLIC),
        Just(Flags::PUBLIC | Flags::FINAL),
        Just(Flags::PUBLIC | Flags::STATIC),
        Just(Flags::PUBLIC | Flags::ABSTRACT),
        any::<u16>().prop_map(Flags::from_bits),
    ]
}

fn arb_class() -> impl Strategy<Value = ClassFile> {
    (
        arb_name(),
        arb_flags(),
        prop::option::of(arb_name()),
        prop::collection::vec(arb_name(), 0..3),
        prop::collection::vec(
            (arb_flags(), arb_name(), arb_type())
                .prop_map(|(flags, name, ty)| FieldInfo { flags, name, ty }),
            0..4,
        ),
        prop::collection::vec(
            (arb_flags(), arb_name(), arb_desc(), prop::option::of(arb_code())).prop_map(
                |(flags, name, desc, code)| MethodInfo {
                    flags,
                    name,
                    desc,
                    code,
                },
            ),
            0..4,
        ),
    )
        .prop_map(|(name, flags, superclass, interfaces, fields, methods)| ClassFile {
            name,
            flags,
            superclass,
            interfaces,
            fields,
            methods,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn class_roundtrip(class in arb_class()) {
        let bytes = write_class(&class);
        let back = read_class(&bytes)
            .unwrap_or_else(|e| panic!("decode failed: {e} for {class:?}"));
        prop_assert_eq!(back, class);
    }

    #[test]
    fn truncation_never_panics(class in arb_class(), cut in 0usize..64) {
        let bytes = write_class(&class);
        let cut = cut.min(bytes.len());
        // Decoding a truncated prefix must error, never panic.
        let _ = read_class(&bytes[..bytes.len() - cut]);
    }
}
