//! Randomized property test: any well-formed in-memory class survives the
//! binary writer/reader round trip — including branchy code, odd flags, and
//! adversarial names the workload generator would never produce.
//!
//! Generation is driven by the workspace's internal seeded PRNG so the test
//! runs offline; each case is reproducible from its printed seed.

use lbr_classfile::{
    read_class, write_class, ClassFile, Code, FieldInfo, FieldRef, Flags, Insn, MethodDescriptor,
    MethodInfo, MethodRef, Type,
};
use lbr_prng::{SliceChoose, SplitMix64};

const NAME_FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_$";
const NAME_REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_$";

fn rand_name(rng: &mut SplitMix64) -> String {
    let len = rng.gen_range(0..=11usize);
    let mut s = String::new();
    s.push(*NAME_FIRST.choose(rng).unwrap() as char);
    for _ in 0..len {
        s.push(*NAME_REST.choose(rng).unwrap() as char);
    }
    s
}

fn rand_type(rng: &mut SplitMix64) -> Type {
    if rng.gen_bool(0.5) {
        Type::Int
    } else {
        Type::reference(rand_name(rng))
    }
}

fn rand_desc(rng: &mut SplitMix64) -> MethodDescriptor {
    let params = (0..rng.gen_range(0..4usize))
        .map(|_| rand_type(rng))
        .collect();
    let ret = if rng.gen_bool(0.5) {
        Some(rand_type(rng))
    } else {
        None
    };
    MethodDescriptor::new(params, ret)
}

fn rand_field_ref(rng: &mut SplitMix64) -> FieldRef {
    FieldRef::new(rand_name(rng), rand_name(rng), rand_type(rng))
}

fn rand_method_ref(rng: &mut SplitMix64) -> MethodRef {
    MethodRef::new(rand_name(rng), rand_name(rng), rand_desc(rng))
}

/// An instruction with branch targets bounded by `len` so the encoded
/// offsets always land on real instructions.
fn rand_insn(rng: &mut SplitMix64, len: u16) -> Insn {
    match rng.gen_range(0..26u32) {
        0 => Insn::Nop,
        1 => Insn::IConst(rng.next_u32() as i32),
        2 => Insn::AConstNull,
        3 => Insn::ILoad(rng.gen_range(0..8u16)),
        4 => Insn::IStore(rng.gen_range(0..8u16)),
        5 => Insn::ALoad(rng.gen_range(0..8u16)),
        6 => Insn::AStore(rng.gen_range(0..8u16)),
        7 => Insn::Pop,
        8 => Insn::Dup,
        9 => Insn::IAdd,
        10 => Insn::LdcClass(rand_name(rng)),
        11 => Insn::New(rand_name(rng)),
        12 => Insn::GetField(rand_field_ref(rng)),
        13 => Insn::PutField(rand_field_ref(rng)),
        14 => Insn::InvokeVirtual(rand_method_ref(rng)),
        15 => Insn::InvokeInterface(rand_method_ref(rng)),
        16 => Insn::InvokeSpecial(rand_method_ref(rng)),
        17 => Insn::InvokeStatic(rand_method_ref(rng)),
        18 => Insn::CheckCast(rand_name(rng)),
        19 => Insn::InstanceOf(rand_name(rng)),
        20 => Insn::Goto(rng.gen_range(0..len)),
        21 => Insn::IfEq(rng.gen_range(0..len)),
        22 => Insn::Return,
        23 => Insn::AReturn,
        24 => Insn::IReturn,
        _ => Insn::AThrow,
    }
}

fn rand_code(rng: &mut SplitMix64) -> Code {
    let len = rng.gen_range(1..24u16);
    let insns = (0..len).map(|_| rand_insn(rng, len)).collect();
    Code::new(rng.gen_range(0..16u16), rng.gen_range(0..16u16), insns)
}

fn rand_flags(rng: &mut SplitMix64) -> Flags {
    match rng.gen_range(0..5u32) {
        0 => Flags::PUBLIC,
        1 => Flags::PUBLIC | Flags::FINAL,
        2 => Flags::PUBLIC | Flags::STATIC,
        3 => Flags::PUBLIC | Flags::ABSTRACT,
        // Any u16 must round-trip.
        _ => Flags::from_bits(rng.next_u32() as u16),
    }
}

fn rand_class(rng: &mut SplitMix64) -> ClassFile {
    let name = rand_name(rng);
    let flags = rand_flags(rng);
    let superclass = if rng.gen_bool(0.5) {
        Some(rand_name(rng))
    } else {
        None
    };
    let interfaces = (0..rng.gen_range(0..3usize))
        .map(|_| rand_name(rng))
        .collect();
    let fields = (0..rng.gen_range(0..4usize))
        .map(|_| FieldInfo {
            flags: rand_flags(rng),
            name: rand_name(rng),
            ty: rand_type(rng),
        })
        .collect();
    let methods = (0..rng.gen_range(0..4usize))
        .map(|_| MethodInfo {
            flags: rand_flags(rng),
            name: rand_name(rng),
            desc: rand_desc(rng),
            code: if rng.gen_bool(0.5) {
                Some(rand_code(rng))
            } else {
                None
            },
        })
        .collect();
    ClassFile {
        name,
        flags,
        superclass,
        interfaces,
        fields,
        methods,
    }
}

#[test]
fn class_roundtrip() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let class = rand_class(&mut rng);
        let bytes = write_class(&class);
        let back = read_class(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: decode failed: {e} for {class:?}"));
        assert_eq!(back, class, "seed {seed}");
    }
}

#[test]
fn truncation_never_panics() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let class = rand_class(&mut rng);
        let bytes = write_class(&class);
        let cut = rng.gen_range(0..64usize).min(bytes.len());
        // Decoding a truncated prefix must error, never panic.
        let _ = read_class(&bytes[..bytes.len() - cut]);
    }
}
