//! The class-granularity dependency graph — J-Reduce's model.
//!
//! J-Reduce (step 1 of its recipe) maps the input to a dependency graph
//! with one node per class: "if a class A mentions a class B, then we have
//! a dependency from A to B". Closures of this graph are the only
//! sub-inputs the baseline can produce, which is why it cannot remove
//! items *within* classes — the motivation for the paper's finer-grained
//! model.

use crate::Program;
use lbr_core::DepGraph;
use lbr_logic::{Var, VarSet};
use std::collections::HashMap;

/// A class-level dependency graph with its node naming.
#[derive(Debug, Clone)]
pub struct ClassGraph {
    /// The dependency graph (node `i` is `names[i]`).
    pub graph: DepGraph,
    /// Class names by node index.
    pub names: Vec<String>,
    index: HashMap<String, Var>,
}

impl ClassGraph {
    /// Builds the class-mention graph of a program.
    pub fn new(program: &Program) -> Self {
        let names: Vec<String> = program.names().map(str::to_owned).collect();
        let index: HashMap<String, Var> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Var::new(i as u32)))
            .collect();
        let mut graph = DepGraph::new(names.len());
        for class in program.classes() {
            let from = index[&class.name];
            let mut mention = |name: &str| {
                if let Some(&to) = index.get(name) {
                    graph.add_edge(from, to);
                }
            };
            if let Some(s) = &class.superclass {
                mention(s);
            }
            for i in &class.interfaces {
                mention(i);
            }
            for f in &class.fields {
                if let Some(c) = f.ty.class_name() {
                    mention(c);
                }
            }
            for m in &class.methods {
                for c in m.desc.referenced_classes() {
                    mention(c);
                }
                if let Some(code) = &m.code {
                    for insn in &code.insns {
                        for c in insn.referenced_classes() {
                            mention(c);
                        }
                    }
                }
            }
        }
        ClassGraph {
            graph,
            names,
            index,
        }
    }

    /// The node of a class name.
    pub fn node(&self, name: &str) -> Option<Var> {
        self.index.get(name).copied()
    }

    /// Materializes the sub-program keeping exactly the classes in `keep`.
    pub fn subset_program(&self, program: &Program, keep: &VarSet) -> Program {
        let mut out = Program::new();
        for v in keep.iter() {
            if let Some(class) = program.get(&self.names[v.index()]) {
                out.insert(class.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassFile, Code, FieldInfo, Insn, MethodDescriptor, MethodInfo, Type};

    fn program() -> Program {
        let mut a = ClassFile::new_class("A");
        a.fields.push(FieldInfo::new("f", Type::reference("B")));
        a.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::new(vec![Type::reference("C")], None),
            Code::new(1, 2, vec![Insn::New("D".into()), Insn::Pop, Insn::Return]),
        ));
        let b = ClassFile::new_class("B");
        let c = ClassFile::new_class("C");
        let mut d = ClassFile::new_class("D");
        d.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        [a, b, c, d].into_iter().collect()
    }

    #[test]
    fn mentions_create_edges() {
        let p = program();
        let cg = ClassGraph::new(&p);
        let a = cg.node("A").unwrap();
        let closure = cg.graph.closure_of([a]);
        // A mentions B (field), C (descriptor), D (new).
        for n in ["B", "C", "D"] {
            assert!(closure.contains(cg.node(n).unwrap()), "missing {n}");
        }
        assert_eq!(closure.len(), 4);
    }

    #[test]
    fn independent_class_not_pulled() {
        let p = program();
        let cg = ClassGraph::new(&p);
        let b = cg.node("B").unwrap();
        let closure = cg.graph.closure_of([b]);
        assert_eq!(closure.len(), 1, "B mentions nothing");
    }

    #[test]
    fn subset_program_materializes() {
        let p = program();
        let cg = ClassGraph::new(&p);
        let mut keep = VarSet::empty(cg.names.len());
        keep.insert(cg.node("B").unwrap());
        keep.insert(cg.node("C").unwrap());
        let sub = cg.subset_program(&p, &keep);
        assert_eq!(sub.len(), 2);
        assert!(sub.get("B").is_some() && sub.get("C").is_some());
        assert!(sub.get("A").is_none());
    }

    #[test]
    fn object_is_not_a_node() {
        let p = program();
        let cg = ClassGraph::new(&p);
        assert!(cg.node("Object").is_none());
        assert_eq!(cg.names.len(), 4);
    }
}
