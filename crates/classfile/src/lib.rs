//! A from-scratch JVM-style class-file substrate for bytecode reduction.
//!
//! The *Logical Bytecode Reduction* paper reduces real Java class files;
//! this crate provides the equivalent substrate built from scratch (per the
//! reproduction's substitution policy): a resolved in-memory IR
//! ([`ClassFile`], [`MethodInfo`], [`Code`], [`Insn`]), a binary format
//! with a real constant pool ([`write_class`] / [`read_class`],
//! round-trip tested), hierarchy queries that report the *relations they
//! used* ([`Program::subtype_path`], [`Program::resolve_method`]), and a
//! verifier ([`verify_program`]) that doubles as the validity oracle and —
//! through [`VerifyHooks`] — as the event source for logical constraint
//! generation.
//!
//! # Example
//!
//! ```
//! use lbr_classfile::*;
//!
//! let mut program = Program::new();
//! let mut class = ClassFile::new_class("A");
//! class.methods.push(MethodInfo::new(
//!     "<init>",
//!     MethodDescriptor::void(),
//!     Code::new(1, 1, vec![Insn::Return]),
//! ));
//! program.insert(class);
//! assert!(verify_program(&program).is_empty());
//!
//! let bytes = write_program(&program);
//! let back = read_program(&bytes)?;
//! assert_eq!(back, program);
//! # Ok::<(), lbr_classfile::ReadError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod class;
mod classgraph;
mod constpool;
mod disasm;
mod flags;
mod input;
mod insn;
mod io;
mod item;
mod model;
mod program;
mod read;
mod reducer;
mod roundtrip;
mod ty;
mod verify;
mod write;

pub use class::{ClassFile, Code, FieldInfo, MethodInfo, OBJECT};
pub use classgraph::ClassGraph;
pub use constpool::{Constant, ConstantPool};
pub use disasm::{disassemble_class, disassemble_code, disassemble_program, mnemonic};
pub use flags::Flags;
pub use insn::{FieldRef, Insn, MethodRef};
pub use io::{read_class_directory, write_class_directory, DirError};
pub use item::{Item, ItemRegistry};
pub use model::{build_model, supertype_paths, LogicalModel, ModelError};
pub use program::{Program, Resolution, Step};
pub use read::{read_class, read_program, ReadError};
pub use reducer::reduce_program;
pub use roundtrip::{round_trip_verify, round_trip_verify_bytes};
pub use ty::{MethodDescriptor, Type};
pub use verify::{
    is_valid, verify_class, verify_class_structure, verify_method_code, verify_program, InvokeKind,
    NoHooks, VerifyError, VerifyHooks,
};
pub use write::{class_byte_size, program_byte_size, write_class, write_program};
