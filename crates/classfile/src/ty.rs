//! Field and method types with JVM-style descriptor syntax.

use std::fmt;

/// A value type: a primitive `int` or a reference to a named class or
/// interface.
///
/// The descriptor syntax follows the JVM: `I` for `int`, `LName;` for a
/// reference.
///
/// # Examples
///
/// ```
/// use lbr_classfile::Type;
/// assert_eq!(Type::Int.descriptor(), "I");
/// assert_eq!(Type::reference("Foo").descriptor(), "LFoo;");
/// assert_eq!(Type::parse("LFoo;"), Some(Type::reference("Foo")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// The 32-bit integer primitive.
    Int,
    /// A reference to the named class or interface.
    Reference(String),
}

impl Type {
    /// A reference type.
    pub fn reference(name: impl Into<String>) -> Type {
        Type::Reference(name.into())
    }

    /// The referenced class name, if any.
    pub fn class_name(&self) -> Option<&str> {
        match self {
            Type::Reference(n) => Some(n),
            Type::Int => None,
        }
    }

    /// Whether this is a reference type.
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Reference(_))
    }

    /// The JVM descriptor of this type.
    pub fn descriptor(&self) -> String {
        match self {
            Type::Int => "I".to_owned(),
            Type::Reference(n) => format!("L{n};"),
        }
    }

    /// Parses a single type descriptor.
    pub fn parse(s: &str) -> Option<Type> {
        let (t, rest) = Self::parse_prefix(s)?;
        rest.is_empty().then_some(t)
    }

    /// Parses a type descriptor prefix, returning the remainder.
    pub fn parse_prefix(s: &str) -> Option<(Type, &str)> {
        match s.as_bytes().first()? {
            b'I' => Some((Type::Int, &s[1..])),
            b'L' => {
                let end = s.find(';')?;
                Some((Type::reference(&s[1..end]), &s[end + 1..]))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Reference(n) => write!(f, "{n}"),
        }
    }
}

/// A method descriptor `(T̄)R` where `R` is a type or `V` (void).
///
/// # Examples
///
/// ```
/// use lbr_classfile::{MethodDescriptor, Type};
/// let d = MethodDescriptor::new(vec![Type::Int, Type::reference("A")], None);
/// assert_eq!(d.descriptor(), "(ILA;)V");
/// assert_eq!(MethodDescriptor::parse("(ILA;)V"), Some(d));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodDescriptor {
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type; `None` means `void`.
    pub ret: Option<Type>,
}

impl MethodDescriptor {
    /// Creates a descriptor.
    pub fn new(params: Vec<Type>, ret: Option<Type>) -> Self {
        MethodDescriptor { params, ret }
    }

    /// `()V`.
    pub fn void() -> Self {
        MethodDescriptor::new(Vec::new(), None)
    }

    /// The JVM descriptor string.
    pub fn descriptor(&self) -> String {
        let params: String = self.params.iter().map(Type::descriptor).collect();
        let ret = self
            .ret
            .as_ref()
            .map_or_else(|| "V".to_owned(), Type::descriptor);
        format!("({params}){ret}")
    }

    /// Parses a method descriptor string.
    pub fn parse(s: &str) -> Option<MethodDescriptor> {
        let rest = s.strip_prefix('(')?;
        let close = rest.find(')')?;
        let (mut params_str, ret_str) = (&rest[..close], &rest[close + 1..]);
        let mut params = Vec::new();
        while !params_str.is_empty() {
            let (t, r) = Type::parse_prefix(params_str)?;
            params.push(t);
            params_str = r;
        }
        let ret = if ret_str == "V" {
            None
        } else {
            Some(Type::parse(ret_str)?)
        };
        Some(MethodDescriptor { params, ret })
    }

    /// Every class name referenced by this descriptor.
    pub fn referenced_classes(&self) -> impl Iterator<Item = &str> {
        self.params
            .iter()
            .chain(self.ret.iter())
            .filter_map(|t| t.class_name())
    }
}

impl fmt::Display for MethodDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.descriptor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_descriptor_roundtrip() {
        for t in [
            Type::Int,
            Type::reference("A"),
            Type::reference("pkg_Name0"),
        ] {
            assert_eq!(Type::parse(&t.descriptor()), Some(t.clone()));
        }
        assert_eq!(Type::parse("X"), None);
        assert_eq!(Type::parse("LUnterminated"), None);
        assert_eq!(Type::parse("II"), None); // trailing garbage
    }

    #[test]
    fn method_descriptor_roundtrip() {
        let cases = [
            MethodDescriptor::void(),
            MethodDescriptor::new(vec![Type::Int], Some(Type::Int)),
            MethodDescriptor::new(
                vec![Type::reference("A"), Type::Int, Type::reference("B")],
                Some(Type::reference("C")),
            ),
        ];
        for d in cases {
            assert_eq!(MethodDescriptor::parse(&d.descriptor()), Some(d.clone()));
        }
        assert_eq!(MethodDescriptor::parse("()"), None);
        assert_eq!(MethodDescriptor::parse("(I"), None);
        assert_eq!(MethodDescriptor::parse("I)V"), None);
    }

    #[test]
    fn referenced_classes() {
        let d = MethodDescriptor::new(
            vec![Type::reference("A"), Type::Int],
            Some(Type::reference("B")),
        );
        let classes: Vec<&str> = d.referenced_classes().collect();
        assert_eq!(classes, vec!["A", "B"]);
    }

    #[test]
    fn display() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::reference("A").to_string(), "A");
        assert_eq!(MethodDescriptor::void().to_string(), "()V");
    }
}
