//! The classfile frontend behind the format-agnostic [`Input`] trait.
//!
//! This is a thin adapter: the logical model is [`build_model`]'s CNF
//! with [`reduce_program`] as the solution applier, the coarse model is
//! [`ClassGraph`]'s class-mention graph with its subset materializer,
//! and serialization/validation delegate to the existing binary format
//! and verifier. Every path is the *same code* the pipeline has always
//! run, so results through the trait are bit-identical to the concrete
//! classfile path.

use crate::classgraph::ClassGraph;
use crate::model::build_model;
use crate::reducer::reduce_program;
use crate::{program_byte_size, read_program, verify_program, write_program, Program};
use lbr_core::{CoarseModel, Input, InputModel};
use lbr_logic::VarSet;

impl Input for Program {
    const FORMAT: &'static str = "classfile";

    fn model(&self) -> Result<InputModel<'_, Self>, String> {
        let model = build_model(self).map_err(|e| e.to_string())?;
        let stats = model.stats();
        let registry = model.registry;
        // Containment depth: class/interface files, then the members and
        // relations they declare, then the method/constructor bodies
        // nested inside those members.
        let levels = registry
            .items()
            .iter()
            .map(|item| match item {
                crate::Item::Class(_) | crate::Item::Interface(_) => 0,
                crate::Item::MethodCode(..) | crate::Item::ConstructorCode(..) => 2,
                _ => 1,
            })
            .collect();
        Ok(InputModel {
            cnf: model.cnf,
            stats,
            levels,
            materialize: Box::new(move |keep: &VarSet| reduce_program(self, &registry, keep)),
        })
    }

    fn coarse_model(&self) -> CoarseModel<'_, Self> {
        let cg = ClassGraph::new(self);
        CoarseModel {
            graph: cg.graph.clone(),
            materialize: Box::new(move |keep: &VarSet| cg.subset_program(self, keep)),
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        write_program(self)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        read_program(bytes).map_err(|e| e.to_string())
    }

    fn byte_size(&self) -> usize {
        program_byte_size(self)
    }

    fn unit_count(&self) -> usize {
        self.len()
    }

    fn validate(&self) -> Vec<String> {
        verify_program(self)
            .into_iter()
            .map(|e| e.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassFile, Code, Insn, MethodDescriptor, MethodInfo};

    fn sample() -> Program {
        let mut a = ClassFile::new_class("A");
        a.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        let mut b = ClassFile::new_class("B");
        b.superclass = Some("A".into());
        b.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        [a, b].into_iter().collect()
    }

    #[test]
    fn serialization_matches_concrete_functions() {
        let p = sample();
        assert_eq!(p.to_bytes(), write_program(&p));
        assert_eq!(Program::from_bytes(&p.to_bytes()), Ok(p.clone()));
        assert_eq!(p.byte_size(), program_byte_size(&p));
        assert_eq!(p.unit_count(), 2);
        assert!(p.validate().is_empty());
        assert_eq!(<Program as Input>::FORMAT, "classfile");
    }

    #[test]
    fn model_materializes_like_reduce_program() {
        let p = sample();
        let trait_model = p.model().expect("model builds");
        let concrete = build_model(&p).expect("model builds");
        assert_eq!(trait_model.cnf, concrete.cnf);
        assert_eq!(trait_model.stats, concrete.stats());
        let keep = VarSet::full(trait_model.cnf.num_vars());
        assert_eq!(
            (trait_model.materialize)(&keep),
            reduce_program(&p, &concrete.registry, &keep)
        );
    }

    #[test]
    fn coarse_model_materializes_subsets() {
        let p = sample();
        let coarse = p.coarse_model();
        assert_eq!(coarse.graph.len(), 2);
        let cg = ClassGraph::new(&p);
        let mut keep = VarSet::empty(2);
        keep.insert(cg.node("A").unwrap());
        let sub = (coarse.materialize)(&keep);
        assert_eq!(sub.len(), 1);
        assert!(sub.get("A").is_some());
    }
}
