//! Binary writer for the class-file format.
//!
//! The layout follows the JVM class-file format: magic `0xCAFEBABE`,
//! version, constant pool, access flags, this/super class, interfaces,
//! fields, methods with a `Code` attribute, and class attributes. Two
//! simplifications are documented deviations: integer constants are
//! encoded inline after opcode `0x12` (instead of via `CONSTANT_Integer`
//! pool entries), and local-slot operands are always 2 bytes (the `wide`
//! form).

use crate::{ClassFile, Code, Constant, ConstantPool, Insn, Program};

/// Serializes a class to its binary form.
///
/// # Examples
///
/// ```
/// use lbr_classfile::{write_class, read_class, ClassFile};
/// let c = ClassFile::new_class("A");
/// let bytes = write_class(&c);
/// assert_eq!(&bytes[..4], &[0xCA, 0xFE, 0xBA, 0xBE]);
/// assert_eq!(read_class(&bytes).unwrap(), c);
/// ```
pub fn write_class(class: &ClassFile) -> Vec<u8> {
    let mut pool = ConstantPool::new();
    // Pre-intern structural entries.
    let this_idx = pool.class(&class.name);
    let super_idx = class.superclass.as_ref().map(|s| pool.class(s));
    let iface_idxs: Vec<u16> = class.interfaces.iter().map(|i| pool.class(i)).collect();
    let code_attr_name = pool.utf8("Code");

    struct FieldEnc {
        flags: u16,
        name: u16,
        desc: u16,
    }
    let fields: Vec<FieldEnc> = class
        .fields
        .iter()
        .map(|f| FieldEnc {
            flags: f.flags.bits(),
            name: pool.utf8(&f.name),
            desc: pool.utf8(&f.ty.descriptor()),
        })
        .collect();

    struct MethodEnc {
        flags: u16,
        name: u16,
        desc: u16,
        code: Option<(u16, u16, Vec<u8>)>,
    }
    let methods: Vec<MethodEnc> = class
        .methods
        .iter()
        .map(|m| MethodEnc {
            flags: m.flags.bits(),
            name: pool.utf8(&m.name),
            desc: pool.utf8(&m.desc.descriptor()),
            code: m
                .code
                .as_ref()
                .map(|c| (c.max_stack, c.max_locals, encode_code(c, &mut pool))),
        })
        .collect();

    // Assemble.
    let mut out = Vec::new();
    put_u32(&mut out, 0xCAFE_BABE);
    put_u16(&mut out, 0); // minor
    put_u16(&mut out, 52); // major (Java 8)
    put_u16(&mut out, (pool.len() + 1) as u16);
    for e in pool.entries() {
        out.push(e.tag());
        match e {
            Constant::Utf8(s) => {
                put_u16(&mut out, s.len() as u16);
                out.extend_from_slice(s.as_bytes());
            }
            Constant::Integer(i) => put_u32(&mut out, *i as u32),
            Constant::Class(n) => put_u16(&mut out, *n),
            Constant::Fieldref(c, n)
            | Constant::Methodref(c, n)
            | Constant::InterfaceMethodref(c, n)
            | Constant::NameAndType(c, n) => {
                put_u16(&mut out, *c);
                put_u16(&mut out, *n);
            }
        }
    }
    put_u16(&mut out, class.flags.bits());
    put_u16(&mut out, this_idx);
    put_u16(&mut out, super_idx.unwrap_or(0));
    put_u16(&mut out, iface_idxs.len() as u16);
    for i in &iface_idxs {
        put_u16(&mut out, *i);
    }
    put_u16(&mut out, fields.len() as u16);
    for f in &fields {
        put_u16(&mut out, f.flags);
        put_u16(&mut out, f.name);
        put_u16(&mut out, f.desc);
        put_u16(&mut out, 0); // attributes
    }
    put_u16(&mut out, methods.len() as u16);
    for m in &methods {
        put_u16(&mut out, m.flags);
        put_u16(&mut out, m.name);
        put_u16(&mut out, m.desc);
        match &m.code {
            None => put_u16(&mut out, 0),
            Some((max_stack, max_locals, bytecode)) => {
                put_u16(&mut out, 1);
                put_u16(&mut out, code_attr_name);
                // attribute length: 2 + 2 + 4 + code + 2 (exceptions) + 2 (attrs)
                put_u32(&mut out, (2 + 2 + 4 + bytecode.len() + 2 + 2) as u32);
                put_u16(&mut out, *max_stack);
                put_u16(&mut out, *max_locals);
                put_u32(&mut out, bytecode.len() as u32);
                out.extend_from_slice(bytecode);
                put_u16(&mut out, 0); // exception table
                put_u16(&mut out, 0); // code attributes
            }
        }
    }
    put_u16(&mut out, 0); // class attributes
    out
}

/// Lowers instructions to bytes, resolving symbolic references through the
/// pool and branch targets to relative byte offsets.
fn encode_code(code: &Code, pool: &mut ConstantPool) -> Vec<u8> {
    // First pass: byte offset of each instruction.
    let mut offsets = Vec::with_capacity(code.insns.len());
    let mut at = 0usize;
    for insn in &code.insns {
        offsets.push(at);
        at += insn.encoded_len();
    }
    let mut out = Vec::with_capacity(at);
    for (i, insn) in code.insns.iter().enumerate() {
        let here = offsets[i];
        out.push(insn.opcode());
        match insn {
            Insn::IConst(v) => put_u32(&mut out, *v as u32),
            Insn::ILoad(s) | Insn::IStore(s) | Insn::ALoad(s) | Insn::AStore(s) => {
                put_u16(&mut out, *s)
            }
            Insn::LdcClass(c) | Insn::New(c) | Insn::CheckCast(c) | Insn::InstanceOf(c) => {
                let idx = pool.class(c);
                put_u16(&mut out, idx);
            }
            Insn::GetField(f) | Insn::PutField(f) => {
                let idx = pool.fieldref(&f.class, &f.name, &f.ty.descriptor());
                put_u16(&mut out, idx);
            }
            Insn::InvokeVirtual(m) | Insn::InvokeSpecial(m) | Insn::InvokeStatic(m) => {
                let idx = pool.methodref(&m.class, &m.name, &m.desc.descriptor());
                put_u16(&mut out, idx);
            }
            Insn::InvokeInterface(m) => {
                let idx = pool.interface_methodref(&m.class, &m.name, &m.desc.descriptor());
                put_u16(&mut out, idx);
                out.push((m.desc.params.len() + 1) as u8); // count
                out.push(0);
            }
            Insn::Goto(target) | Insn::IfEq(target) => {
                let target_off = offsets[*target as usize] as i64;
                let delta = target_off - here as i64;
                put_u16(&mut out, delta as i16 as u16);
            }
            _ => {}
        }
    }
    out
}

/// Serializes a whole program as a container: magic `LBRC`, class count,
/// then length-prefixed class files.
pub fn write_program(program: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"LBRC");
    put_u32(&mut out, program.len() as u32);
    for class in program.classes() {
        let bytes = write_class(class);
        put_u32(&mut out, bytes.len() as u32);
        out.extend_from_slice(&bytes);
    }
    out
}

/// The serialized size of a program in bytes — the paper's primary size
/// metric ("Final Relative Size (Bytes)").
///
/// Computed without materializing the bytes ([`class_byte_size`]): the
/// reduction pipeline measures every oracle probe, so this is hot.
pub fn program_byte_size(program: &Program) -> usize {
    program.classes().map(class_byte_size).sum()
}

/// Computes `write_class(class).len()` without producing the bytes.
///
/// Replicates the writer's constant-pool interning (the pool's *contents*
/// determine its size; entry order does not) and sums fixed field widths
/// plus [`Insn::encoded_len`] for code, skipping all byte emission.
pub fn class_byte_size(class: &ClassFile) -> usize {
    let mut pool = ConstantPool::new();
    pool.class(&class.name);
    if let Some(s) = &class.superclass {
        pool.class(s);
    }
    for i in &class.interfaces {
        pool.class(i);
    }
    pool.utf8("Code");

    let mut body = 2 + 2 * class.interfaces.len(); // interface table
    body += 2 + 8 * class.fields.len(); // field table: flags/name/desc/attrs
    for f in &class.fields {
        pool.utf8(&f.name);
        pool.utf8(&f.ty.descriptor());
    }
    body += 2; // method count
    for m in &class.methods {
        pool.utf8(&m.name);
        pool.utf8(&m.desc.descriptor());
        body += 8; // flags/name/desc/attribute count
        if let Some(code) = &m.code {
            intern_code_refs(code, &mut pool);
            let code_len: usize = code.insns.iter().map(Insn::encoded_len).sum();
            // attribute name + length + (stack/locals/len + code + exc + attrs)
            body += 2 + 4 + (2 + 2 + 4 + code_len + 2 + 2);
        }
    }
    body += 2; // class attributes

    let pool_bytes: usize = pool.entries().iter().map(constant_size).sum();
    // magic + version + pool count + pool + flags + this + super.
    4 + 4 + 2 + pool_bytes + 2 + 2 + 2 + body
}

/// Interns exactly the pool entries [`encode_code`] would.
fn intern_code_refs(code: &Code, pool: &mut ConstantPool) {
    for insn in &code.insns {
        match insn {
            Insn::LdcClass(c) | Insn::New(c) | Insn::CheckCast(c) | Insn::InstanceOf(c) => {
                pool.class(c);
            }
            Insn::GetField(f) | Insn::PutField(f) => {
                pool.fieldref(&f.class, &f.name, &f.ty.descriptor());
            }
            Insn::InvokeVirtual(m) | Insn::InvokeSpecial(m) | Insn::InvokeStatic(m) => {
                pool.methodref(&m.class, &m.name, &m.desc.descriptor());
            }
            Insn::InvokeInterface(m) => {
                pool.interface_methodref(&m.class, &m.name, &m.desc.descriptor());
            }
            _ => {}
        }
    }
}

/// Serialized size of one constant-pool entry (tag byte included).
fn constant_size(c: &Constant) -> usize {
    1 + match c {
        Constant::Utf8(s) => 2 + s.len(),
        Constant::Integer(_) => 4,
        Constant::Class(_) => 2,
        Constant::Fieldref(..)
        | Constant::Methodref(..)
        | Constant::InterfaceMethodref(..)
        | Constant::NameAndType(..) => 4,
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldInfo, MethodDescriptor, MethodInfo, MethodRef, Type};

    #[test]
    fn magic_and_version() {
        let bytes = write_class(&ClassFile::new_class("A"));
        assert_eq!(&bytes[..4], &[0xCA, 0xFE, 0xBA, 0xBE]);
        assert_eq!(&bytes[4..8], &[0, 0, 0, 52]);
    }

    #[test]
    fn size_grows_with_members() {
        let empty = write_class(&ClassFile::new_class("A")).len();
        let mut c = ClassFile::new_class("A");
        c.fields.push(FieldInfo::new("f", Type::Int));
        c.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::new(2, 1, vec![Insn::Return]),
        ));
        assert!(write_class(&c).len() > empty);
    }

    #[test]
    fn program_container_layout() {
        let mut p = Program::new();
        p.insert(ClassFile::new_class("A"));
        p.insert(ClassFile::new_class("B"));
        let bytes = write_program(&p);
        assert_eq!(&bytes[..4], b"LBRC");
        assert_eq!(u32::from_be_bytes(bytes[4..8].try_into().unwrap()), 2);
        assert!(program_byte_size(&p) < bytes.len());
    }

    #[test]
    fn branch_offsets_relative() {
        // goto forward over a nop: delta = 1 (nop) ... encoded relative to
        // the goto's own offset.
        let code = Code::new(1, 1, vec![Insn::Goto(2), Insn::Nop, Insn::Return]);
        let mut pool = ConstantPool::new();
        let bytes = encode_code(&code, &mut pool);
        assert_eq!(bytes[0], 0xa7);
        let delta = i16::from_be_bytes([bytes[1], bytes[2]]);
        assert_eq!(delta, 4); // goto is 3 bytes + 1 nop byte
    }

    #[test]
    fn class_byte_size_is_exact() {
        use crate::FieldRef;
        // A class exercising every pool-touching instruction plus repeated
        // references (so interning dedup matters).
        let mut c = ClassFile::new_class("A");
        c.superclass = Some("Base".into());
        c.interfaces.push("I".into());
        c.interfaces.push("J".into());
        c.fields.push(FieldInfo::new("f", Type::Int));
        c.fields.push(FieldInfo::new("g", Type::reference("B")));
        c.methods
            .push(MethodInfo::new_abstract("abs", MethodDescriptor::void()));
        c.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::new(vec![Type::Int], Some(Type::Int)),
            Code::new(
                3,
                2,
                vec![
                    Insn::ALoad(0),
                    Insn::IConst(7),
                    Insn::GetField(FieldRef::new("A", "f", Type::Int)),
                    Insn::PutField(FieldRef::new("A", "f", Type::Int)),
                    Insn::New("B".into()),
                    Insn::CheckCast("B".into()),
                    Insn::InstanceOf("I".into()),
                    Insn::LdcClass("J".into()),
                    Insn::InvokeVirtual(MethodRef::new("A", "m", MethodDescriptor::void())),
                    Insn::InvokeSpecial(MethodRef::new("Base", "<init>", MethodDescriptor::void())),
                    Insn::InvokeStatic(MethodRef::new("B", "s", MethodDescriptor::void())),
                    Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())),
                    Insn::Goto(14),
                    Insn::Nop,
                    Insn::IReturn,
                ],
            ),
        ));
        assert_eq!(class_byte_size(&c), write_class(&c).len());
        // And on the trivial shapes.
        let plain = ClassFile::new_class("P");
        assert_eq!(class_byte_size(&plain), write_class(&plain).len());
        let iface = ClassFile::new_interface("Q");
        assert_eq!(class_byte_size(&iface), write_class(&iface).len());
    }

    #[test]
    fn invokeinterface_count_byte() {
        let code = Code::new(
            1,
            1,
            vec![Insn::InvokeInterface(MethodRef::new(
                "I",
                "m",
                MethodDescriptor::new(vec![Type::Int, Type::Int], None),
            ))],
        );
        let mut pool = ConstantPool::new();
        let bytes = encode_code(&code, &mut pool);
        assert_eq!(bytes[0], 0xb9);
        assert_eq!(bytes[3], 3); // this + 2 int args
        assert_eq!(bytes[4], 0);
    }
}
