//! Program verification: the validity oracle for bytecode reduction.
//!
//! A sub-input is *valid* when it still verifies — the analog of "the
//! program type checks" in the paper. Verification has two layers:
//!
//! 1. **Structural**: supertypes exist with the right kinds and no cycles,
//!    descriptors reference existing classes, interface methods are
//!    abstract, and every non-abstract class provides a concrete
//!    implementation for every abstract method it inherits — the
//!    obligation the paper's `mAny` constraints model.
//! 2. **Code**: an abstract-interpretation stack verifier per method body,
//!    checking operand kinds, member resolution, argument/return
//!    subtyping, and cast plausibility.
//!
//! Both layers report the hierarchy facts they rely on through
//! [`VerifyHooks`], so the logical constraint generator can translate each
//! successful check into the formula that keeps it true under reduction.

use crate::{
    ClassFile, Code, FieldRef, Insn, MethodDescriptor, MethodInfo, MethodRef, Program, Resolution,
    Step, Type, OBJECT,
};
use std::collections::VecDeque;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The class being verified.
    pub class: String,
    /// The member being verified, if any (`name + descriptor`).
    pub member: Option<String>,
    /// Human-readable description.
    pub detail: String,
}

impl VerifyError {
    fn new(class: &str, member: Option<String>, detail: impl Into<String>) -> Self {
        VerifyError {
            class: class.to_owned(),
            member,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.member {
            Some(m) => write!(f, "{}.{}: {}", self.class, m, self.detail),
            None => write!(f, "{}: {}", self.class, self.detail),
        }
    }
}

impl std::error::Error for VerifyError {}

/// How a method was invoked (reported to hooks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeKind {
    /// `invokevirtual`.
    Virtual,
    /// `invokeinterface`.
    Interface,
    /// `invokespecial`.
    Special,
    /// `invokestatic`.
    Static,
}

/// Observer of the hierarchy facts verification relies on. All methods
/// default to no-ops; implement the ones you need.
pub trait VerifyHooks {
    /// A subtype relation `sub ≤ sup` was used, derived via `steps`.
    fn on_subtype(&mut self, sub: &str, sup: &str, steps: &[Step]) {
        let _ = (sub, sup, steps);
    }
    /// A field reference resolved.
    fn on_field(&mut self, named: &FieldRef, resolution: &Resolution) {
        let _ = (named, resolution);
    }
    /// A method reference resolved.
    fn on_method(&mut self, named: &MethodRef, resolution: &Resolution, kind: InvokeKind) {
        let _ = (named, resolution, kind);
    }
    /// A class was instantiated.
    fn on_new(&mut self, class: &str) {
        let _ = class;
    }
    /// A class constant was loaded (reflection).
    fn on_reflection(&mut self, class: &str) {
        let _ = class;
    }
    /// A class name was used and must exist (casts, instanceof, ldc).
    fn on_type_use(&mut self, class: &str) {
        let _ = class;
    }
}

/// The do-nothing hook set.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl VerifyHooks for NoHooks {}

/// Verifies the whole program, collecting every error.
///
/// An empty result means the program is a valid input in the sense of
/// Definition 4.1.
pub fn verify_program(program: &Program) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for class in program.classes() {
        errors.extend(verify_class(program, class));
    }
    errors
}

/// Whether the program verifies cleanly.
pub fn is_valid(program: &Program) -> bool {
    for class in program.classes() {
        if !verify_class(program, class).is_empty() {
            return false;
        }
    }
    true
}

/// Verifies one class (structure and all method bodies).
pub fn verify_class(program: &Program, class: &ClassFile) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    verify_class_structure(program, class, &mut errors, &mut NoHooks);
    for m in &class.methods {
        if let Some(code) = &m.code {
            if let Err(e) = verify_method_code(program, class, m, code, &mut NoHooks) {
                errors.push(e);
            }
        }
    }
    errors
}

/// Structural checks for one class, reporting used relations to `hooks`.
pub fn verify_class_structure(
    program: &Program,
    class: &ClassFile,
    errors: &mut Vec<VerifyError>,
    hooks: &mut dyn VerifyHooks,
) {
    let err = |errors: &mut Vec<VerifyError>, member: Option<String>, detail: String| {
        errors.push(VerifyError::new(&class.name, member, detail));
    };
    // Hierarchy sanity.
    if program.has_hierarchy_cycle(&class.name) {
        err(errors, None, "hierarchy cycle".to_owned());
        return; // everything else would loop
    }
    match &class.superclass {
        None => err(errors, None, "missing superclass".to_owned()),
        Some(s) => match program.get(s) {
            None => err(errors, None, format!("cannot resolve superclass {s}")),
            Some(sc) if sc.is_interface() => {
                err(errors, None, format!("superclass {s} is an interface"))
            }
            Some(sc) if sc.flags.contains(crate::Flags::FINAL) => {
                err(errors, None, format!("superclass {s} is final"))
            }
            Some(_) => {}
        },
    }
    if class.is_interface() && class.superclass.as_deref() != Some(OBJECT) {
        err(
            errors,
            None,
            "interface superclass must be Object".to_owned(),
        );
    }
    for i in &class.interfaces {
        match program.get(i) {
            None => err(errors, None, format!("cannot resolve interface {i}")),
            Some(ic) if !ic.is_interface() => err(errors, None, format!("{i} is not an interface")),
            Some(_) => {}
        }
    }
    // Members.
    let mut seen_fields: Vec<&str> = Vec::new();
    for f in &class.fields {
        if seen_fields.contains(&f.name.as_str()) {
            err(errors, Some(f.name.clone()), "duplicate field".to_owned());
        }
        seen_fields.push(&f.name);
        if let Some(c) = f.ty.class_name() {
            if program.get(c).is_none() {
                err(
                    errors,
                    Some(f.name.clone()),
                    format!("field type {c} missing"),
                );
            } else {
                hooks.on_type_use(c);
            }
        }
        if class.is_interface() && !f.flags.is_static() {
            err(
                errors,
                Some(f.name.clone()),
                "interface instance field".to_owned(),
            );
        }
    }
    let mut seen_methods: Vec<(String, String)> = Vec::new();
    for m in &class.methods {
        let key = (m.name.clone(), m.desc.descriptor());
        if seen_methods.contains(&key) {
            err(errors, Some(m.name.clone()), "duplicate method".to_owned());
        }
        seen_methods.push(key);
        for c in m.desc.referenced_classes() {
            if program.get(c).is_none() {
                err(
                    errors,
                    Some(m.name.clone()),
                    format!("descriptor references missing class {c}"),
                );
            } else {
                hooks.on_type_use(c);
            }
        }
        match (&m.code, m.flags.is_abstract()) {
            (Some(_), true) => err(
                errors,
                Some(m.name.clone()),
                "abstract method with code".into(),
            ),
            (None, false) => err(
                errors,
                Some(m.name.clone()),
                "concrete method without code".into(),
            ),
            _ => {}
        }
        if m.flags.is_abstract() && !class.is_interface() && !class.flags.is_abstract() {
            err(
                errors,
                Some(m.name.clone()),
                "abstract method in concrete class".into(),
            );
        }
        if class.is_interface() && m.is_init() {
            err(errors, Some(m.name.clone()), "interface constructor".into());
        }
        // Overrides must preserve the descriptor's return type: a method
        // with the same name and parameter types but different return type
        // anywhere up the chain is a clash (source-level rule).
        if !m.is_init() {
            for sup in program.superclass_chain(&class.name) {
                if let Some(sc) = program.get(&sup) {
                    for other in &sc.methods {
                        if other.name == m.name
                            && other.desc.params == m.desc.params
                            && other.desc.ret != m.desc.ret
                        {
                            err(
                                errors,
                                Some(m.name.clone()),
                                format!("incompatible override of {sup}.{}", other.name),
                            );
                        }
                    }
                }
            }
        }
    }
    if !class.is_interface() && class.constructors().count() == 0 {
        err(errors, None, "class has no constructor".to_owned());
    }
    // Abstract-method obligations: every abstract method visible on a
    // concrete class must resolve to a concrete implementation.
    if class.is_instantiable() {
        let mut obligations: Vec<(String, MethodDescriptor, String)> = Vec::new();
        for sup in std::iter::once(class.name.clone()).chain(program.superclass_chain(&class.name))
        {
            if let Some(sc) = program.get(&sup) {
                for m in &sc.methods {
                    if m.flags.is_abstract() {
                        obligations.push((m.name.clone(), m.desc.clone(), sup.clone()));
                    }
                }
            }
        }
        for (iface, _path) in program.interface_closure(&class.name) {
            if let Some(ic) = program.get(&iface) {
                for m in &ic.methods {
                    if m.flags.is_abstract() {
                        obligations.push((m.name.clone(), m.desc.clone(), iface.clone()));
                    }
                }
            }
        }
        for (name, desc, origin) in obligations {
            match program.resolve_method(&class.name, &name, &desc) {
                Some((_res, m)) if m.code.is_some() => {}
                _ => err(
                    errors,
                    None,
                    format!("abstract method {origin}.{name}{desc} not implemented"),
                ),
            }
        }
    }
}

/// The abstract value types tracked by the stack verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Abs {
    Int,
    Null,
    Ref(String),
}

impl Abs {
    fn from_type(t: &Type) -> Abs {
        match t {
            Type::Int => Abs::Int,
            Type::Reference(c) => Abs::Ref(c.clone()),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    stack: Vec<Abs>,
    locals: Vec<Option<Abs>>,
}

/// Verifies one method body by abstract interpretation, reporting used
/// hierarchy facts to `hooks`.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_method_code(
    program: &Program,
    class: &ClassFile,
    method: &MethodInfo,
    code: &Code,
    hooks: &mut dyn VerifyHooks,
) -> Result<(), VerifyError> {
    let mname = format!("{}{}", method.name, method.desc);
    let fail = |detail: String| VerifyError::new(&class.name, Some(mname.clone()), detail);

    if code.insns.is_empty() {
        return Err(fail("empty code".into()));
    }
    // Initial locals: `this` (unless static), then parameters.
    let mut init_locals: Vec<Option<Abs>> = Vec::new();
    if !method.flags.is_static() {
        init_locals.push(Some(Abs::Ref(class.name.clone())));
    }
    for p in &method.desc.params {
        init_locals.push(Some(Abs::from_type(p)));
    }
    if init_locals.len() > code.max_locals as usize {
        return Err(fail(format!(
            "max_locals {} too small for {} parameters",
            code.max_locals,
            init_locals.len()
        )));
    }
    init_locals.resize(code.max_locals as usize, None);

    let mut states: Vec<Option<State>> = vec![None; code.insns.len()];
    states[0] = Some(State {
        stack: Vec::new(),
        locals: init_locals,
    });
    let mut work: VecDeque<usize> = VecDeque::from([0]);

    while let Some(pc) = work.pop_front() {
        let mut state = states[pc].clone().expect("queued pc has a state");
        let insn = &code.insns[pc];
        let mut next: Vec<usize> = Vec::new();

        macro_rules! pop {
            () => {
                state
                    .stack
                    .pop()
                    .ok_or_else(|| fail(format!("stack underflow at {pc}")))?
            };
        }
        macro_rules! pop_int {
            () => {{
                let v = pop!();
                if v != Abs::Int {
                    return Err(fail(format!("expected int on stack at {pc}, found {v:?}")));
                }
            }};
        }
        macro_rules! pop_ref {
            () => {{
                match pop!() {
                    Abs::Int => return Err(fail(format!("expected reference on stack at {pc}"))),
                    other => other,
                }
            }};
        }
        // Pops a value and checks it is assignable to `want`.
        macro_rules! pop_assignable {
            ($want:expr) => {{
                let want: &Type = $want;
                let got = pop!();
                match (&got, want) {
                    (Abs::Int, Type::Int) => {}
                    (Abs::Null, Type::Reference(_)) => {}
                    (Abs::Ref(s), Type::Reference(t)) => match program.subtype_path(s, t) {
                        Some(steps) => hooks.on_subtype(s, t, &steps),
                        None => return Err(fail(format!("{s} is not assignable to {t} at {pc}"))),
                    },
                    _ => {
                        return Err(fail(format!(
                            "cannot assign {got:?} to {} at {pc}",
                            want.descriptor()
                        )))
                    }
                }
            }};
        }

        match insn {
            Insn::Nop => {}
            Insn::IConst(_) => state.stack.push(Abs::Int),
            Insn::AConstNull => state.stack.push(Abs::Null),
            Insn::ILoad(s) => match state.locals.get(*s as usize) {
                Some(Some(Abs::Int)) => state.stack.push(Abs::Int),
                _ => return Err(fail(format!("iload of non-int slot {s} at {pc}"))),
            },
            Insn::ALoad(s) => match state.locals.get(*s as usize) {
                Some(Some(v @ (Abs::Ref(_) | Abs::Null))) => state.stack.push(v.clone()),
                _ => return Err(fail(format!("aload of non-reference slot {s} at {pc}"))),
            },
            Insn::IStore(s) => {
                pop_int!();
                set_local(&mut state, *s, Abs::Int).map_err(&fail)?;
            }
            Insn::AStore(s) => {
                let v = pop_ref!();
                set_local(&mut state, *s, v).map_err(&fail)?;
            }
            Insn::Pop => {
                pop!();
            }
            Insn::Dup => {
                let v = state
                    .stack
                    .last()
                    .cloned()
                    .ok_or_else(|| fail(format!("dup on empty stack at {pc}")))?;
                state.stack.push(v);
            }
            Insn::IAdd => {
                pop_int!();
                pop_int!();
                state.stack.push(Abs::Int);
            }
            Insn::LdcClass(c) => {
                if program.get(c).is_none() {
                    return Err(fail(format!("ldc of missing class {c}")));
                }
                hooks.on_type_use(c);
                hooks.on_reflection(c);
                state.stack.push(Abs::Ref(OBJECT.to_owned()));
            }
            Insn::New(c) => {
                match program.get(c) {
                    None => return Err(fail(format!("new of missing class {c}"))),
                    Some(decl) if !decl.is_instantiable() => {
                        return Err(fail(format!("new of non-instantiable {c}")))
                    }
                    Some(_) => {}
                }
                hooks.on_type_use(c);
                hooks.on_new(c);
                state.stack.push(Abs::Ref(c.clone()));
            }
            Insn::GetField(f) | Insn::PutField(f) => {
                let put = matches!(insn, Insn::PutField(_));
                if put {
                    pop_assignable!(&f.ty);
                }
                let recv = pop_ref!();
                if let Abs::Ref(s) = &recv {
                    match program.subtype_path(s, &f.class) {
                        Some(steps) => hooks.on_subtype(s, &f.class, &steps),
                        None => {
                            return Err(fail(format!(
                                "receiver {s} not a subtype of {} at {pc}",
                                f.class
                            )))
                        }
                    }
                }
                let (res, info) = program
                    .resolve_field(&f.class, &f.name)
                    .ok_or_else(|| fail(format!("cannot resolve field {f}")))?;
                if info.ty != f.ty {
                    return Err(fail(format!("field {f} type mismatch")));
                }
                hooks.on_field(f, &res);
                if !put {
                    state.stack.push(Abs::from_type(&f.ty));
                }
            }
            Insn::InvokeVirtual(m)
            | Insn::InvokeInterface(m)
            | Insn::InvokeSpecial(m)
            | Insn::InvokeStatic(m) => {
                let kind = match insn {
                    Insn::InvokeVirtual(_) => InvokeKind::Virtual,
                    Insn::InvokeInterface(_) => InvokeKind::Interface,
                    Insn::InvokeSpecial(_) => InvokeKind::Special,
                    _ => InvokeKind::Static,
                };
                let target = program
                    .get(&m.class)
                    .ok_or_else(|| fail(format!("invoke on missing class {}", m.class)))?;
                match kind {
                    InvokeKind::Interface if !target.is_interface() => {
                        return Err(fail(format!("invokeinterface on class {}", m.class)))
                    }
                    InvokeKind::Virtual if target.is_interface() => {
                        return Err(fail(format!("invokevirtual on interface {}", m.class)))
                    }
                    _ => {}
                }
                // Arguments, right to left.
                for p in m.desc.params.iter().rev() {
                    pop_assignable!(p);
                }
                // Resolution.
                let (res, info) = if kind == InvokeKind::Special && m.is_init() {
                    // Constructors do not inherit.
                    let info = target
                        .method(&m.name, &m.desc)
                        .ok_or_else(|| fail(format!("cannot resolve constructor {m}")))?;
                    (
                        Resolution {
                            declaring: m.class.clone(),
                            steps: Vec::new(),
                        },
                        info,
                    )
                } else {
                    program
                        .resolve_method(&m.class, &m.name, &m.desc)
                        .ok_or_else(|| fail(format!("cannot resolve method {m}")))?
                };
                if kind == InvokeKind::Static {
                    if !info.flags.is_static() {
                        return Err(fail(format!("invokestatic on instance method {m}")));
                    }
                } else {
                    if info.flags.is_static() {
                        return Err(fail(format!("instance invoke of static method {m}")));
                    }
                    let recv = pop_ref!();
                    if let Abs::Ref(s) = &recv {
                        match program.subtype_path(s, &m.class) {
                            Some(steps) => hooks.on_subtype(s, &m.class, &steps),
                            None => {
                                return Err(fail(format!(
                                    "receiver {s} not a subtype of {} at {pc}",
                                    m.class
                                )))
                            }
                        }
                    }
                }
                hooks.on_method(m, &res, kind);
                if let Some(ret) = &m.desc.ret {
                    state.stack.push(Abs::from_type(ret));
                }
            }
            Insn::CheckCast(t) => {
                if program.get(t).is_none() {
                    return Err(fail(format!("checkcast to missing class {t}")));
                }
                hooks.on_type_use(t);
                let v = pop_ref!();
                if let Abs::Ref(s) = &v {
                    // Source-level plausibility: up- or downcast only.
                    if let Some(steps) = program.subtype_path(s, t) {
                        hooks.on_subtype(s, t, &steps);
                    } else if let Some(steps) = program.subtype_path(t, s) {
                        hooks.on_subtype(t, s, &steps);
                    } else {
                        return Err(fail(format!("impossible cast {s} to {t} at {pc}")));
                    }
                }
                state.stack.push(Abs::Ref(t.clone()));
            }
            Insn::InstanceOf(t) => {
                if program.get(t).is_none() {
                    return Err(fail(format!("instanceof missing class {t}")));
                }
                hooks.on_type_use(t);
                pop_ref!();
                state.stack.push(Abs::Int);
            }
            Insn::Goto(t) => next.push(*t as usize),
            Insn::IfEq(t) => {
                pop_int!();
                next.push(*t as usize);
            }
            Insn::Return => {
                if method.desc.ret.is_some() {
                    return Err(fail("return in non-void method".into()));
                }
            }
            Insn::AReturn => {
                let want = match &method.desc.ret {
                    Some(t @ Type::Reference(_)) => t.clone(),
                    _ => return Err(fail("areturn in non-reference method".into())),
                };
                pop_assignable!(&want);
            }
            Insn::IReturn => {
                if method.desc.ret != Some(Type::Int) {
                    return Err(fail("ireturn in non-int method".into()));
                }
                pop_int!();
            }
            Insn::AThrow => {
                pop_ref!();
            }
        }
        if state.stack.len() > code.max_stack as usize {
            return Err(fail(format!(
                "stack overflow at {pc}: {} > max_stack {}",
                state.stack.len(),
                code.max_stack
            )));
        }
        if !insn.is_terminator() {
            next.push(pc + 1);
        }
        for t in next {
            if t >= code.insns.len() {
                return Err(fail(format!("control flow falls off the end at {pc}")));
            }
            match &states[t] {
                None => {
                    states[t] = Some(state.clone());
                    work.push_back(t);
                }
                Some(existing) => {
                    let merged = merge_states(program, existing, &state)
                        .map_err(|m| fail(format!("merge at {t}: {m}")))?;
                    if merged != *existing {
                        states[t] = Some(merged);
                        work.push_back(t);
                    }
                }
            }
        }
    }
    Ok(())
}

fn set_local(state: &mut State, slot: u16, v: Abs) -> Result<(), String> {
    let slot = slot as usize;
    if slot >= state.locals.len() {
        return Err(format!("store to out-of-range slot {slot}"));
    }
    state.locals[slot] = Some(v);
    Ok(())
}

fn merge_states(program: &Program, a: &State, b: &State) -> Result<State, String> {
    if a.stack.len() != b.stack.len() {
        return Err(format!(
            "stack depth mismatch ({} vs {})",
            a.stack.len(),
            b.stack.len()
        ));
    }
    let stack = a
        .stack
        .iter()
        .zip(&b.stack)
        .map(|(x, y)| merge_abs(program, x, y).ok_or_else(|| "int/ref merge".to_owned()))
        .collect::<Result<Vec<_>, _>>()?;
    let locals = a
        .locals
        .iter()
        .zip(&b.locals)
        .map(|(x, y)| match (x, y) {
            (Some(x), Some(y)) => merge_abs(program, x, y),
            _ => None,
        })
        .map(Some)
        .collect::<Vec<_>>()
        .into_iter()
        .map(|o| o.flatten())
        .collect();
    Ok(State { stack, locals })
}

fn merge_abs(program: &Program, a: &Abs, b: &Abs) -> Option<Abs> {
    match (a, b) {
        (Abs::Int, Abs::Int) => Some(Abs::Int),
        (Abs::Null, Abs::Null) => Some(Abs::Null),
        (Abs::Null, r @ Abs::Ref(_)) | (r @ Abs::Ref(_), Abs::Null) => Some(r.clone()),
        (Abs::Ref(x), Abs::Ref(y)) => Some(Abs::Ref(program.merge_types(x, y))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldInfo, Flags};

    fn ctor() -> MethodInfo {
        MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(
                1,
                1,
                vec![
                    Insn::ALoad(0),
                    Insn::InvokeSpecial(MethodRef::new(OBJECT, "<init>", MethodDescriptor::void())),
                    Insn::Return,
                ],
            ),
        )
    }

    fn object_has_init(p: &mut Program) {
        // Our built-in Object has no <init>; add a helper base class
        // instead in tests that need super calls — or simpler, point the
        // ctor at a class that declares one. Here we give tests a base
        // class `Base` with a constructor.
        let mut base = ClassFile::new_class("Base");
        base.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        p.insert(base);
    }

    fn simple_program() -> Program {
        let mut p = Program::new();
        object_has_init(&mut p);
        let mut i = ClassFile::new_interface("I");
        i.methods
            .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
        p.insert(i);
        let mut a = ClassFile::new_class("A");
        a.superclass = Some("Base".into());
        a.interfaces.push("I".into());
        a.fields.push(FieldInfo::new("f", Type::Int));
        a.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(
                1,
                1,
                vec![
                    Insn::ALoad(0),
                    Insn::InvokeSpecial(MethodRef::new("Base", "<init>", MethodDescriptor::void())),
                    Insn::Return,
                ],
            ),
        ));
        a.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        p.insert(a);
        p
    }

    #[test]
    fn valid_program_verifies() {
        let p = simple_program();
        let errors = verify_program(&p);
        assert!(errors.is_empty(), "{errors:?}");
        assert!(is_valid(&p));
        let _ = ctor();
    }

    #[test]
    fn missing_superclass_reported() {
        let mut p = simple_program();
        let mut bad = ClassFile::new_class("Bad");
        bad.superclass = Some("Ghost".into());
        bad.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        p.insert(bad);
        let errors = verify_program(&p);
        assert!(errors.iter().any(|e| e.detail.contains("superclass Ghost")));
    }

    #[test]
    fn unimplemented_interface_method_reported() {
        let mut p = simple_program();
        // Class C implements I but provides no m.
        let mut c = ClassFile::new_class("C");
        c.interfaces.push("I".into());
        c.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        p.insert(c);
        let errors = verify_program(&p);
        assert!(
            errors.iter().any(|e| e.detail.contains("not implemented")),
            "{errors:?}"
        );
    }

    #[test]
    fn abstract_class_defers_obligation() {
        let mut p = simple_program();
        let mut c = ClassFile::new_class("C");
        c.flags |= Flags::ABSTRACT;
        c.interfaces.push("I".into());
        c.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        p.insert(c);
        assert!(is_valid(&p), "abstract classes need not implement");
    }

    #[test]
    fn structural_rules_rejected() {
        // Each sub-case mutates the valid program in one way and expects a
        // specific complaint.
        type Mutation = Box<dyn Fn(&mut Program)>;
        let cases: Vec<(&str, Mutation)> = vec![
            (
                "is final",
                Box::new(|p: &mut Program| {
                    let mut base = p.get("Base").unwrap().clone();
                    base.flags |= Flags::FINAL;
                    p.remove("Base");
                    p.insert(base);
                }),
            ),
            (
                "interface instance field",
                Box::new(|p: &mut Program| {
                    let mut i = p.get("I").unwrap().clone();
                    i.fields.push(FieldInfo::new("x", Type::Int));
                    p.remove("I");
                    p.insert(i);
                }),
            ),
            (
                "duplicate method",
                Box::new(|p: &mut Program| {
                    let a = p.get_mut("A").unwrap();
                    let m = a.methods.last().unwrap().clone();
                    a.methods.push(m);
                }),
            ),
            (
                "descriptor references missing class",
                Box::new(|p: &mut Program| {
                    let a = p.get_mut("A").unwrap();
                    a.methods.push(MethodInfo::new_abstract(
                        "ghostly",
                        MethodDescriptor::new(vec![Type::reference("Ghost")], None),
                    ));
                    a.flags |= Flags::ABSTRACT;
                }),
            ),
            (
                "incompatible override",
                Box::new(|p: &mut Program| {
                    let mut base = p.get("Base").unwrap().clone();
                    base.methods.push(MethodInfo::new(
                        "m",
                        MethodDescriptor::new(vec![], Some(Type::Int)),
                        Code::new(1, 1, vec![Insn::IConst(0), Insn::IReturn]),
                    ));
                    p.remove("Base");
                    p.insert(base);
                    // A declares m()V — same name+params, different return.
                }),
            ),
            (
                "abstract method in concrete class",
                Box::new(|p: &mut Program| {
                    let a = p.get_mut("A").unwrap();
                    a.methods.push(MethodInfo::new_abstract(
                        "halfdone",
                        MethodDescriptor::void(),
                    ));
                }),
            ),
            (
                "class has no constructor",
                Box::new(|p: &mut Program| {
                    let a = p.get_mut("A").unwrap();
                    a.methods.retain(|m| !m.is_init());
                }),
            ),
        ];
        for (expected, mutate) in cases {
            let mut p = simple_program();
            mutate(&mut p);
            let errors = verify_program(&p);
            assert!(
                errors.iter().any(|e| e.detail.contains(expected)),
                "expected {expected:?}, got {errors:?}"
            );
        }
    }

    #[test]
    fn stack_underflow_detected() {
        let p = simple_program();
        let class = p.get("A").unwrap();
        let m = MethodInfo::new(
            "bad",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Pop, Insn::Return]),
        );
        let err =
            verify_method_code(&p, class, &m, m.code.as_ref().unwrap(), &mut NoHooks).unwrap_err();
        assert!(err.detail.contains("underflow"));
    }

    #[test]
    fn impossible_cast_detected() {
        let mut p = simple_program();
        let mut d = ClassFile::new_class("D");
        d.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        p.insert(d);
        let class = p.get("A").unwrap();
        // new D(); checkcast I — D and I unrelated.
        let m = MethodInfo::new(
            "bad",
            MethodDescriptor::void(),
            Code::new(
                2,
                1,
                vec![
                    Insn::New("D".into()),
                    Insn::Dup,
                    Insn::InvokeSpecial(MethodRef::new("D", "<init>", MethodDescriptor::void())),
                    Insn::CheckCast("I".into()),
                    Insn::Pop,
                    Insn::Return,
                ],
            ),
        );
        let err =
            verify_method_code(&p, class, &m, m.code.as_ref().unwrap(), &mut NoHooks).unwrap_err();
        assert!(err.detail.contains("impossible cast"), "{err}");
    }

    #[test]
    fn upcast_records_subtype_path() {
        struct Record(Vec<(String, String, usize)>);
        impl VerifyHooks for Record {
            fn on_subtype(&mut self, sub: &str, sup: &str, steps: &[Step]) {
                self.0.push((sub.to_owned(), sup.to_owned(), steps.len()));
            }
        }
        let p = simple_program();
        let class = p.get("A").unwrap();
        let m = MethodInfo::new(
            "up",
            MethodDescriptor::void(),
            Code::new(
                2,
                1,
                vec![
                    Insn::ALoad(0),
                    Insn::CheckCast("I".into()),
                    Insn::Pop,
                    Insn::Return,
                ],
            ),
        );
        let mut hooks = Record(Vec::new());
        verify_method_code(&p, class, &m, m.code.as_ref().unwrap(), &mut hooks).expect("verifies");
        assert!(hooks
            .0
            .iter()
            .any(|(s, t, n)| s == "A" && t == "I" && *n == 1));
    }

    #[test]
    fn branch_merge_verifies() {
        let p = simple_program();
        let class = p.get("A").unwrap();
        // if (x == 0) push null else push new A-as-this; both arms leave a
        // reference; merged type flows to athrow.
        let m = MethodInfo::new(
            "branchy",
            MethodDescriptor::new(vec![Type::Int], None),
            Code::new(
                2,
                2,
                vec![
                    Insn::ILoad(1),
                    Insn::IfEq(4),
                    Insn::ALoad(0),
                    Insn::Goto(5),
                    Insn::AConstNull,
                    Insn::AThrow,
                ],
            ),
        );
        verify_method_code(&p, class, &m, m.code.as_ref().unwrap(), &mut NoHooks)
            .expect("merges and verifies");
    }

    #[test]
    fn falling_off_the_end_detected() {
        let p = simple_program();
        let class = p.get("A").unwrap();
        let m = MethodInfo::new(
            "bad",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Nop]),
        );
        let err =
            verify_method_code(&p, class, &m, m.code.as_ref().unwrap(), &mut NoHooks).unwrap_err();
        assert!(err.detail.contains("falls off"));
    }

    #[test]
    fn wrong_return_detected() {
        let p = simple_program();
        let class = p.get("A").unwrap();
        let m = MethodInfo::new(
            "bad",
            MethodDescriptor::new(vec![], Some(Type::Int)),
            Code::new(1, 1, vec![Insn::Return]),
        );
        let err =
            verify_method_code(&p, class, &m, m.code.as_ref().unwrap(), &mut NoHooks).unwrap_err();
        assert!(err.detail.contains("return in non-void"));
    }

    #[test]
    fn invokeinterface_requires_interface() {
        let p = simple_program();
        let class = p.get("A").unwrap();
        let m = MethodInfo::new(
            "bad",
            MethodDescriptor::void(),
            Code::new(
                1,
                1,
                vec![
                    Insn::ALoad(0),
                    Insn::InvokeInterface(MethodRef::new("A", "m", MethodDescriptor::void())),
                    Insn::Return,
                ],
            ),
        );
        let err =
            verify_method_code(&p, class, &m, m.code.as_ref().unwrap(), &mut NoHooks).unwrap_err();
        assert!(err.detail.contains("invokeinterface on class"));
    }

    #[test]
    fn interface_dispatch_verifies_and_resolves() {
        let p = simple_program();
        let class = p.get("A").unwrap();
        let m = MethodInfo::new(
            "go",
            MethodDescriptor::new(vec![Type::reference("I")], None),
            Code::new(
                1,
                2,
                vec![
                    Insn::ALoad(1),
                    Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())),
                    Insn::Return,
                ],
            ),
        );
        verify_method_code(&p, class, &m, m.code.as_ref().unwrap(), &mut NoHooks)
            .expect("interface call verifies");
    }
}
