//! A `javap`-style disassembler.
//!
//! Bug reports built from reduced inputs need a human-readable rendering
//! of the surviving class files; this module prints classes, members and
//! bytecode in a stable textual form (also handy in tests and examples).

use crate::{ClassFile, Code, Insn, Program};
use std::fmt::Write as _;

/// Renders a whole program, classes in name order.
pub fn disassemble_program(program: &Program) -> String {
    let mut out = String::new();
    for class in program.classes() {
        out.push_str(&disassemble_class(class));
        out.push('\n');
    }
    out
}

/// Renders one class.
pub fn disassemble_class(class: &ClassFile) -> String {
    let mut out = String::new();
    let kind = if class.is_interface() {
        "interface"
    } else {
        "class"
    };
    let _ = write!(out, "{} {} {}", class.flags, kind, class.name);
    if let Some(s) = &class.superclass {
        let _ = write!(out, " extends {s}");
    }
    if !class.interfaces.is_empty() {
        let kw = if class.is_interface() {
            "extends"
        } else {
            "implements"
        };
        let _ = write!(out, " {} {}", kw, class.interfaces.join(", "));
    }
    let _ = writeln!(out, " {{");
    for f in &class.fields {
        let _ = writeln!(out, "  {} {}: {};", f.flags, f.name, f.ty.descriptor());
    }
    for m in &class.methods {
        let _ = write!(out, "  {} {}{}", m.flags, m.name, m.desc);
        match &m.code {
            None => {
                let _ = writeln!(out, ";");
            }
            Some(code) => {
                let _ = writeln!(out, " {{");
                out.push_str(&disassemble_code(code));
                let _ = writeln!(out, "  }}");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a method body with instruction indices (branch targets refer
/// to these indices).
pub fn disassemble_code(code: &Code) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "    // max_stack={} max_locals={}",
        code.max_stack, code.max_locals
    );
    for (i, insn) in code.insns.iter().enumerate() {
        let _ = writeln!(out, "    {i:>4}: {}", mnemonic(insn));
    }
    out
}

/// The mnemonic of one instruction.
pub fn mnemonic(insn: &Insn) -> String {
    match insn {
        Insn::Nop => "nop".into(),
        Insn::IConst(v) => format!("iconst {v}"),
        Insn::AConstNull => "aconst_null".into(),
        Insn::ILoad(s) => format!("iload {s}"),
        Insn::IStore(s) => format!("istore {s}"),
        Insn::ALoad(s) => format!("aload {s}"),
        Insn::AStore(s) => format!("astore {s}"),
        Insn::Pop => "pop".into(),
        Insn::Dup => "dup".into(),
        Insn::IAdd => "iadd".into(),
        Insn::LdcClass(c) => format!("ldc {c}.class"),
        Insn::New(c) => format!("new {c}"),
        Insn::GetField(f) => format!("getfield {f}"),
        Insn::PutField(f) => format!("putfield {f}"),
        Insn::InvokeVirtual(m) => format!("invokevirtual {m}"),
        Insn::InvokeInterface(m) => format!("invokeinterface {m}"),
        Insn::InvokeSpecial(m) => format!("invokespecial {m}"),
        Insn::InvokeStatic(m) => format!("invokestatic {m}"),
        Insn::CheckCast(c) => format!("checkcast {c}"),
        Insn::InstanceOf(c) => format!("instanceof {c}"),
        Insn::Goto(t) => format!("goto {t}"),
        Insn::IfEq(t) => format!("ifeq {t}"),
        Insn::Return => "return".into(),
        Insn::AReturn => "areturn".into(),
        Insn::IReturn => "ireturn".into(),
        Insn::AThrow => "athrow".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldInfo, MethodDescriptor, MethodInfo, MethodRef, Type};

    fn sample() -> ClassFile {
        let mut c = ClassFile::new_class("A");
        c.interfaces.push("I".into());
        c.fields.push(FieldInfo::new("f", Type::Int));
        c.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::new(vec![Type::Int], Some(Type::reference("B"))),
            Code::new(
                2,
                2,
                vec![
                    Insn::ILoad(1),
                    Insn::IfEq(4),
                    Insn::AConstNull,
                    Insn::AReturn,
                    Insn::New("B".into()),
                    Insn::Dup,
                    Insn::InvokeSpecial(MethodRef::new("B", "<init>", MethodDescriptor::void())),
                    Insn::AReturn,
                ],
            ),
        ));
        c.methods
            .push(MethodInfo::new_abstract("abs", MethodDescriptor::void()));
        c
    }

    #[test]
    fn renders_class_shape() {
        let text = disassemble_class(&sample());
        assert!(text.contains("class A extends Object implements I {"));
        assert!(text.contains("f: I;"));
        assert!(text.contains("m(I)LB;"));
        assert!(text.contains("abs()V;"), "{text}");
    }

    #[test]
    fn renders_instructions_with_indices() {
        let text = disassemble_class(&sample());
        assert!(text.contains("0: iload 1"));
        assert!(text.contains("1: ifeq 4"));
        assert!(text.contains("invokespecial B.<init>()V"));
        assert!(text.contains("max_stack=2 max_locals=2"));
    }

    #[test]
    fn program_rendering_is_name_ordered() {
        let mut p = Program::new();
        p.insert(ClassFile::new_class("Zed"));
        p.insert(ClassFile::new_class("Abc"));
        let text = disassemble_program(&p);
        let a = text.find("class Abc").expect("Abc rendered");
        let z = text.find("class Zed").expect("Zed rendered");
        assert!(a < z);
    }

    #[test]
    fn mnemonics_cover_all_variants() {
        // Smoke the remaining mnemonics.
        for insn in [
            Insn::Nop,
            Insn::IConst(3),
            Insn::IStore(2),
            Insn::AStore(2),
            Insn::Pop,
            Insn::IAdd,
            Insn::LdcClass("A".into()),
            Insn::GetField(crate::FieldRef::new("A", "f", Type::Int)),
            Insn::PutField(crate::FieldRef::new("A", "f", Type::Int)),
            Insn::InvokeVirtual(MethodRef::new("A", "m", MethodDescriptor::void())),
            Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())),
            Insn::InvokeStatic(MethodRef::new("A", "s", MethodDescriptor::void())),
            Insn::InstanceOf("A".into()),
            Insn::Goto(0),
            Insn::Return,
            Insn::IReturn,
            Insn::AThrow,
        ] {
            assert!(!mnemonic(&insn).is_empty());
        }
    }
}
