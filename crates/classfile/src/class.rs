//! Class files: the resolved in-memory representation.

use crate::{Flags, Insn, MethodDescriptor, Type};
use std::fmt;

/// The built-in root class name.
pub const OBJECT: &str = "Object";

/// A class or interface.
///
/// Interfaces set [`Flags::INTERFACE`]; their `superclass` is `Object` and
/// `interfaces` lists the super-interfaces they extend. For classes,
/// `interfaces` lists the implemented interfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassFile {
    /// The class name.
    pub name: String,
    /// Access flags.
    pub flags: Flags,
    /// The superclass (`None` only for `Object` itself).
    pub superclass: Option<String>,
    /// Implemented interfaces (classes) or extended interfaces
    /// (interfaces).
    pub interfaces: Vec<String>,
    /// Declared fields.
    pub fields: Vec<FieldInfo>,
    /// Declared methods (including `<init>` constructors).
    pub methods: Vec<MethodInfo>,
}

impl ClassFile {
    /// A new concrete class extending `Object`.
    pub fn new_class(name: impl Into<String>) -> Self {
        ClassFile {
            name: name.into(),
            flags: Flags::PUBLIC | Flags::SUPER,
            superclass: Some(OBJECT.to_owned()),
            interfaces: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// A new interface.
    pub fn new_interface(name: impl Into<String>) -> Self {
        ClassFile {
            name: name.into(),
            flags: Flags::PUBLIC | Flags::INTERFACE | Flags::ABSTRACT,
            superclass: Some(OBJECT.to_owned()),
            interfaces: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Whether this is an interface.
    pub fn is_interface(&self) -> bool {
        self.flags.is_interface()
    }

    /// Whether this class may be instantiated.
    pub fn is_instantiable(&self) -> bool {
        !self.is_interface() && !self.flags.is_abstract()
    }

    /// Finds a declared method by name and descriptor.
    pub fn method(&self, name: &str, desc: &MethodDescriptor) -> Option<&MethodInfo> {
        self.methods
            .iter()
            .find(|m| m.name == name && m.desc == *desc)
    }

    /// Finds a declared field by name.
    pub fn field(&self, name: &str) -> Option<&FieldInfo> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Iterates constructors.
    pub fn constructors(&self) -> impl Iterator<Item = &MethodInfo> {
        self.methods.iter().filter(|m| m.name == "<init>")
    }
}

impl fmt::Display for ClassFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_interface() {
            "interface"
        } else {
            "class"
        };
        write!(f, "{} {}", kind, self.name)?;
        if let Some(s) = &self.superclass {
            write!(f, " extends {s}")?;
        }
        if !self.interfaces.is_empty() {
            write!(f, " implements {}", self.interfaces.join(", "))?;
        }
        writeln!(f, " {{")?;
        for field in &self.fields {
            writeln!(f, "  {} {};", field.ty, field.name)?;
        }
        for m in &self.methods {
            writeln!(
                f,
                "  {}{} {}",
                m.name,
                m.desc,
                if m.code.is_some() { "{...}" } else { ";" }
            )?;
        }
        write!(f, "}}")
    }
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInfo {
    /// Access flags.
    pub flags: Flags,
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
}

impl FieldInfo {
    /// A public instance field.
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        FieldInfo {
            flags: Flags::PUBLIC,
            name: name.into(),
            ty,
        }
    }
}

/// A method declaration, possibly with code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodInfo {
    /// Access flags.
    pub flags: Flags,
    /// Method name (`<init>` for constructors).
    pub name: String,
    /// Descriptor.
    pub desc: MethodDescriptor,
    /// The body; `None` for abstract and interface methods.
    pub code: Option<Code>,
}

impl MethodInfo {
    /// A public concrete method.
    pub fn new(name: impl Into<String>, desc: MethodDescriptor, code: Code) -> Self {
        MethodInfo {
            flags: Flags::PUBLIC,
            name: name.into(),
            desc,
            code: Some(code),
        }
    }

    /// A public abstract method (no body).
    pub fn new_abstract(name: impl Into<String>, desc: MethodDescriptor) -> Self {
        MethodInfo {
            flags: Flags::PUBLIC | Flags::ABSTRACT,
            name: name.into(),
            desc,
            code: None,
        }
    }

    /// Whether this is a constructor.
    pub fn is_init(&self) -> bool {
        self.name == "<init>"
    }
}

/// A method body: limits plus the instruction list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Code {
    /// Operand-stack limit.
    pub max_stack: u16,
    /// Local-variable slots.
    pub max_locals: u16,
    /// Instructions; branch targets are indices into this list.
    pub insns: Vec<Insn>,
}

impl Code {
    /// Creates code with the given limits.
    pub fn new(max_stack: u16, max_locals: u16, insns: Vec<Insn>) -> Self {
        Code {
            max_stack,
            max_locals,
            insns,
        }
    }

    /// The trivial replacement body (`aconst_null; athrow`) used when a
    /// method's `!code` item is removed — it verifies against any return
    /// type.
    pub fn trivial(max_locals: u16) -> Self {
        Code {
            max_stack: 1,
            max_locals,
            insns: vec![Insn::AConstNull, Insn::AThrow],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_kinds() {
        let c = ClassFile::new_class("A");
        assert!(!c.is_interface());
        assert!(c.is_instantiable());
        assert_eq!(c.superclass.as_deref(), Some(OBJECT));
        let i = ClassFile::new_interface("I");
        assert!(i.is_interface());
        assert!(!i.is_instantiable());
    }

    #[test]
    fn member_lookup() {
        let mut c = ClassFile::new_class("A");
        c.fields.push(FieldInfo::new("f", Type::Int));
        c.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::trivial(1),
        ));
        c.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::trivial(1),
        ));
        assert!(c.field("f").is_some());
        assert!(c.field("g").is_none());
        assert!(c.method("m", &MethodDescriptor::void()).is_some());
        assert!(c
            .method("m", &MethodDescriptor::new(vec![Type::Int], None))
            .is_none());
        assert_eq!(c.constructors().count(), 1);
        assert!(c.constructors().next().expect("one ctor").is_init());
    }

    #[test]
    fn trivial_code_shape() {
        let t = Code::trivial(3);
        assert_eq!(t.insns, vec![Insn::AConstNull, Insn::AThrow]);
        assert_eq!(t.max_locals, 3);
    }

    #[test]
    fn abstract_method_has_no_code() {
        let m = MethodInfo::new_abstract("m", MethodDescriptor::void());
        assert!(m.code.is_none());
        assert!(m.flags.is_abstract());
    }

    #[test]
    fn display_renders() {
        let mut c = ClassFile::new_class("A");
        c.interfaces.push("I".into());
        c.fields.push(FieldInfo::new("f", Type::Int));
        let text = c.to_string();
        assert!(text.contains("class A extends Object implements I"));
        assert!(text.contains("int f;"));
    }
}
