//! Binary reader for the class-file format (inverse of
//! [`write`](crate::write_class)).

use crate::{
    ClassFile, Code, Constant, ConstantPool, FieldInfo, FieldRef, Flags, Insn, MethodDescriptor,
    MethodInfo, MethodRef, Program, Type,
};
use std::fmt;

/// An error produced while decoding a class file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// Byte offset of the problem (best effort).
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "class read error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ReadError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> ReadError {
        ReadError {
            offset: self.at,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        if self.at + n > self.bytes.len() {
            return Err(self.err(format!("unexpected end of file (need {n} bytes)")));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ReadError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ReadError> {
        Ok(u16::from_be_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ReadError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
}

/// Decodes a single class file.
///
/// # Errors
///
/// Returns [`ReadError`] on truncated input, bad magic, malformed pool
/// entries, dangling indices, or undecodable bytecode.
pub fn read_class(bytes: &[u8]) -> Result<ClassFile, ReadError> {
    let mut c = Cursor { bytes, at: 0 };
    if c.u32()? != 0xCAFE_BABE {
        return Err(c.err("bad magic"));
    }
    let _minor = c.u16()?;
    let _major = c.u16()?;
    let cp_count = c.u16()? as usize;
    let mut entries = Vec::with_capacity(cp_count.saturating_sub(1));
    for _ in 1..cp_count {
        let tag = c.u8()?;
        entries.push(match tag {
            1 => {
                let len = c.u16()? as usize;
                let raw = c.take(len)?;
                Constant::Utf8(String::from_utf8(raw.to_vec()).map_err(|_| c.err("invalid UTF-8"))?)
            }
            3 => Constant::Integer(c.u32()? as i32),
            7 => Constant::Class(c.u16()?),
            9 => Constant::Fieldref(c.u16()?, c.u16()?),
            10 => Constant::Methodref(c.u16()?, c.u16()?),
            11 => Constant::InterfaceMethodref(c.u16()?, c.u16()?),
            12 => Constant::NameAndType(c.u16()?, c.u16()?),
            other => return Err(c.err(format!("unknown constant tag {other}"))),
        });
    }
    let pool = ConstantPool::from_entries(entries);
    let flags = Flags::from_bits(c.u16()?);
    let this_idx = c.u16()?;
    let name = pool
        .class_name(this_idx)
        .ok_or_else(|| c.err("bad this_class index"))?
        .to_owned();
    let super_idx = c.u16()?;
    let superclass = if super_idx == 0 {
        None
    } else {
        Some(
            pool.class_name(super_idx)
                .ok_or_else(|| c.err("bad super_class index"))?
                .to_owned(),
        )
    };
    let iface_count = c.u16()? as usize;
    let mut interfaces = Vec::with_capacity(iface_count);
    for _ in 0..iface_count {
        let idx = c.u16()?;
        interfaces.push(
            pool.class_name(idx)
                .ok_or_else(|| c.err("bad interface index"))?
                .to_owned(),
        );
    }
    let field_count = c.u16()? as usize;
    let mut fields = Vec::with_capacity(field_count);
    for _ in 0..field_count {
        let fflags = Flags::from_bits(c.u16()?);
        let fname = pool
            .utf8_at(c.u16()?)
            .ok_or_else(|| c.err("bad field name index"))?
            .to_owned();
        let fdesc = pool
            .utf8_at(c.u16()?)
            .ok_or_else(|| c.err("bad field descriptor index"))?;
        let ty = Type::parse(fdesc).ok_or_else(|| c.err("bad field descriptor"))?;
        let attr_count = c.u16()?;
        for _ in 0..attr_count {
            skip_attribute(&mut c)?;
        }
        fields.push(FieldInfo {
            flags: fflags,
            name: fname,
            ty,
        });
    }
    let method_count = c.u16()? as usize;
    let mut methods = Vec::with_capacity(method_count);
    for _ in 0..method_count {
        let mflags = Flags::from_bits(c.u16()?);
        let mname = pool
            .utf8_at(c.u16()?)
            .ok_or_else(|| c.err("bad method name index"))?
            .to_owned();
        let mdesc_str = pool
            .utf8_at(c.u16()?)
            .ok_or_else(|| c.err("bad method descriptor index"))?;
        let desc =
            MethodDescriptor::parse(mdesc_str).ok_or_else(|| c.err("bad method descriptor"))?;
        let attr_count = c.u16()?;
        let mut code = None;
        for _ in 0..attr_count {
            let name_idx = c.u16()?;
            let attr_len = c.u32()? as usize;
            if pool.utf8_at(name_idx) == Some("Code") {
                let max_stack = c.u16()?;
                let max_locals = c.u16()?;
                let code_len = c.u32()? as usize;
                let raw = c.take(code_len)?;
                let insns = decode_code(raw, &pool).map_err(|m| c.err(m))?;
                let _ex = c.u16()?; // exception table (always empty)
                let _attrs = c.u16()?; // nested attributes (always empty)
                code = Some(Code {
                    max_stack,
                    max_locals,
                    insns,
                });
            } else {
                c.take(attr_len)?;
            }
        }
        methods.push(MethodInfo {
            flags: mflags,
            name: mname,
            desc,
            code,
        });
    }
    let class_attr_count = c.u16()?;
    for _ in 0..class_attr_count {
        skip_attribute(&mut c)?;
    }
    Ok(ClassFile {
        name,
        flags,
        superclass,
        interfaces,
        fields,
        methods,
    })
}

fn skip_attribute(c: &mut Cursor<'_>) -> Result<(), ReadError> {
    let _name = c.u16()?;
    let len = c.u32()? as usize;
    c.take(len)?;
    Ok(())
}

/// Decodes bytecode, converting byte offsets of branch targets back to
/// instruction indices.
fn decode_code(raw: &[u8], pool: &ConstantPool) -> Result<Vec<Insn>, String> {
    // First pass: decode with byte targets; remember each insn's offset.
    let mut insns: Vec<(usize, Insn)> = Vec::new();
    let mut at = 0usize;
    let u16_at = |at: usize| -> Result<u16, String> {
        raw.get(at..at + 2)
            .map(|s| u16::from_be_bytes(s.try_into().expect("2 bytes")))
            .ok_or_else(|| "truncated operand".to_owned())
    };
    while at < raw.len() {
        let op = raw[at];
        let start = at;
        let member = |idx: u16| -> Result<(String, String, String), String> {
            pool.member_ref(idx)
                .map(|(a, b, c)| (a.to_owned(), b.to_owned(), c.to_owned()))
                .ok_or_else(|| format!("bad member index {idx}"))
        };
        let class_at = |idx: u16| -> Result<String, String> {
            pool.class_name(idx)
                .map(str::to_owned)
                .ok_or_else(|| format!("bad class index {idx}"))
        };
        let insn = match op {
            0x00 => Insn::Nop,
            0x01 => Insn::AConstNull,
            0x12 => {
                let v = raw
                    .get(at + 1..at + 5)
                    .map(|s| i32::from_be_bytes(s.try_into().expect("4 bytes")))
                    .ok_or("truncated iconst")?;
                Insn::IConst(v)
            }
            0x15 => Insn::ILoad(u16_at(at + 1)?),
            0x19 => Insn::ALoad(u16_at(at + 1)?),
            0x36 => Insn::IStore(u16_at(at + 1)?),
            0x3a => Insn::AStore(u16_at(at + 1)?),
            0x57 => Insn::Pop,
            0x59 => Insn::Dup,
            0x60 => Insn::IAdd,
            0x13 => Insn::LdcClass(class_at(u16_at(at + 1)?)?),
            0xbb => Insn::New(class_at(u16_at(at + 1)?)?),
            0xb4 | 0xb5 => {
                let (class, name, desc) = member(u16_at(at + 1)?)?;
                let ty = Type::parse(&desc).ok_or("bad field descriptor")?;
                let fr = FieldRef { class, name, ty };
                if op == 0xb4 {
                    Insn::GetField(fr)
                } else {
                    Insn::PutField(fr)
                }
            }
            0xb6..=0xb9 => {
                let (class, name, desc) = member(u16_at(at + 1)?)?;
                let desc = MethodDescriptor::parse(&desc).ok_or("bad method descriptor")?;
                let mr = MethodRef { class, name, desc };
                match op {
                    0xb6 => Insn::InvokeVirtual(mr),
                    0xb7 => Insn::InvokeSpecial(mr),
                    0xb8 => Insn::InvokeStatic(mr),
                    _ => Insn::InvokeInterface(mr),
                }
            }
            0xc0 => Insn::CheckCast(class_at(u16_at(at + 1)?)?),
            0xc1 => Insn::InstanceOf(class_at(u16_at(at + 1)?)?),
            0xa7 | 0x99 => {
                let delta = u16_at(at + 1)? as i16 as i64;
                let target = (start as i64 + delta) as usize;
                // Byte target stored temporarily; fixed up below.
                if op == 0xa7 {
                    Insn::Goto(target as u16)
                } else {
                    Insn::IfEq(target as u16)
                }
            }
            0xb1 => Insn::Return,
            0xb0 => Insn::AReturn,
            0xac => Insn::IReturn,
            0xbf => Insn::AThrow,
            other => return Err(format!("unknown opcode 0x{other:02x}")),
        };
        at += insn.encoded_len();
        insns.push((start, insn));
    }
    // Second pass: byte targets → instruction indices.
    let offsets: Vec<usize> = insns.iter().map(|(off, _)| *off).collect();
    let index_of = move |byte: u16| -> Result<u16, String> {
        offsets
            .iter()
            .position(|off| *off == byte as usize)
            .map(|i| i as u16)
            .ok_or_else(|| format!("branch to non-instruction offset {byte}"))
    };
    insns
        .into_iter()
        .map(|(_, insn)| match insn {
            Insn::Goto(b) => Ok(Insn::Goto(index_of(b)?)),
            Insn::IfEq(b) => Ok(Insn::IfEq(index_of(b)?)),
            other => Ok(other),
        })
        .collect()
}

/// Decodes a program container written by
/// [`write_program`](crate::write_program).
///
/// # Errors
///
/// Returns [`ReadError`] on a bad container header or any malformed class.
pub fn read_program(bytes: &[u8]) -> Result<Program, ReadError> {
    let mut c = Cursor { bytes, at: 0 };
    if c.take(4)? != b"LBRC" {
        return Err(c.err("bad container magic"));
    }
    let count = c.u32()? as usize;
    let mut program = Program::new();
    for _ in 0..count {
        let len = c.u32()? as usize;
        let raw = c.take(len)?;
        program.insert(read_class(raw)?);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_class, write_program};

    fn rich_class() -> ClassFile {
        let mut a = ClassFile::new_class("A");
        a.interfaces.push("I".into());
        a.fields.push(FieldInfo::new("f", Type::Int));
        a.fields.push(FieldInfo::new("g", Type::reference("B")));
        a.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(
                1,
                1,
                vec![
                    Insn::ALoad(0),
                    Insn::InvokeSpecial(MethodRef::new(
                        "Object",
                        "<init>",
                        MethodDescriptor::void(),
                    )),
                    Insn::Return,
                ],
            ),
        ));
        a.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::new(vec![Type::Int], Some(Type::reference("B"))),
            Code::new(
                3,
                2,
                vec![
                    Insn::ILoad(1),
                    Insn::IfEq(5),
                    Insn::New("B".into()),
                    Insn::Dup,
                    Insn::InvokeSpecial(MethodRef::new("B", "<init>", MethodDescriptor::void())),
                    Insn::AConstNull,
                    Insn::CheckCast("B".into()),
                    Insn::AReturn,
                ],
            ),
        ));
        a.methods
            .push(MethodInfo::new_abstract("abs", MethodDescriptor::void()));
        a
    }

    #[test]
    fn roundtrip_rich_class() {
        let c = rich_class();
        let bytes = write_class(&c);
        let back = read_class(&bytes).expect("decodes");
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_program() {
        let mut p = Program::new();
        p.insert(rich_class());
        p.insert(ClassFile::new_interface("I"));
        let bytes = write_program(&p);
        let back = read_program(&bytes).expect("decodes");
        assert_eq!(back, p);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_class(&[0, 1, 2, 3, 4, 5, 6, 7]).unwrap_err();
        assert!(err.message.contains("magic"));
        assert!(read_program(b"NOPE\0\0\0\0").is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = write_class(&rich_class());
        for cut in [3, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                read_class(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_unknown_opcode() {
        // Hand-craft: take a valid class and corrupt its code.
        let mut c = ClassFile::new_class("A");
        c.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        let mut bytes = write_class(&c);
        // The single 0xb1 return opcode is the last code byte before the
        // two trailing u16 pairs and the class-attribute count.
        let pos = bytes
            .iter()
            .rposition(|&b| b == 0xb1)
            .expect("return opcode present");
        bytes[pos] = 0xfe;
        assert!(read_class(&bytes).is_err());
    }

    #[test]
    fn branch_roundtrip_preserves_indices() {
        let mut c = ClassFile::new_class("A");
        c.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::new(vec![Type::Int], None),
            Code::new(
                1,
                2,
                vec![
                    Insn::ILoad(1),
                    Insn::IfEq(4),
                    Insn::Nop,
                    Insn::Goto(0),
                    Insn::Return,
                ],
            ),
        ));
        let back = read_class(&write_class(&c)).expect("decodes");
        assert_eq!(
            back.methods[0].code.as_ref().unwrap().insns,
            c.methods[0].code.as_ref().unwrap().insns
        );
    }
}
