//! Filesystem I/O: programs as directories of `.class` files.
//!
//! The paper's artifact writes reduced benchmarks as class-file trees
//! ("writes the class-files instead of using symbolic links"); this module
//! does the same, one `<ClassName>.class` per class, so a reduced input
//! can be attached to a bug report or inspected with the disassembler.

use crate::{read_class, write_class, Program, ReadError};
use std::io;
use std::path::Path;

/// An error from directory I/O.
#[derive(Debug)]
pub enum DirError {
    /// Filesystem failure.
    Io(io::Error),
    /// A `.class` file failed to decode.
    Read {
        /// The offending file name.
        file: String,
        /// The decode error.
        cause: ReadError,
    },
}

impl std::fmt::Display for DirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirError::Io(e) => write!(f, "io error: {e}"),
            DirError::Read { file, cause } => write!(f, "{file}: {cause}"),
        }
    }
}

impl std::error::Error for DirError {}

impl From<io::Error> for DirError {
    fn from(e: io::Error) -> Self {
        DirError::Io(e)
    }
}

/// Writes every class of `program` as `<dir>/<Name>.class`, creating the
/// directory if needed. Returns the number of files written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_class_directory(program: &Program, dir: &Path) -> Result<usize, DirError> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0;
    for class in program.classes() {
        let path = dir.join(format!("{}.class", class.name));
        std::fs::write(path, write_class(class))?;
        written += 1;
    }
    Ok(written)
}

/// Reads every `*.class` file in `dir` into a program.
///
/// # Errors
///
/// Propagates filesystem errors and per-file decode failures.
pub fn read_class_directory(dir: &Path) -> Result<Program, DirError> {
    let mut program = Program::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .filter(|e| e.path().extension().is_some_and(|x| x == "class"))
        .collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let bytes = std::fs::read(entry.path())?;
        let class = read_class(&bytes).map_err(|cause| DirError::Read {
            file: entry.file_name().to_string_lossy().into_owned(),
            cause,
        })?;
        program.insert(class);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassFile, Code, Insn, MethodDescriptor, MethodInfo};

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lbr-io-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Program {
        let mut a = ClassFile::new_class("Alpha");
        a.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        let b = ClassFile::new_interface("Beta");
        [a, b].into_iter().collect()
    }

    #[test]
    fn directory_roundtrip() {
        let dir = temp_dir("roundtrip");
        let p = sample();
        let written = write_class_directory(&p, &dir).expect("writes");
        assert_eq!(written, 2);
        assert!(dir.join("Alpha.class").exists());
        assert!(dir.join("Beta.class").exists());
        let back = read_class_directory(&dir).expect("reads");
        assert_eq!(back, p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_class_files_are_ignored() {
        let dir = temp_dir("ignore");
        write_class_directory(&sample(), &dir).expect("writes");
        std::fs::write(dir.join("README.txt"), b"not a class").expect("writes");
        let back = read_class_directory(&dir).expect("reads");
        assert_eq!(back.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_class_file_is_reported_with_its_name() {
        let dir = temp_dir("corrupt");
        write_class_directory(&sample(), &dir).expect("writes");
        std::fs::write(dir.join("Zeta.class"), b"garbage").expect("writes");
        let err = read_class_directory(&dir).expect_err("must fail");
        assert!(err.to_string().contains("Zeta.class"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_errors() {
        let dir = temp_dir("missing");
        assert!(read_class_directory(&dir).is_err());
    }
}
