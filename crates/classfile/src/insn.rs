//! The bytecode instruction set.
//!
//! A pragmatic subset of the JVM's: constants, local slots, object
//! creation, field access, the four `invoke` forms, casts, simple integer
//! arithmetic, conditional and unconditional branches, and returns.
//! Instructions carry *resolved* symbolic references (names and
//! descriptors); the binary writer lowers them to constant-pool indices
//! using the real JVM opcodes.

use crate::{MethodDescriptor, Type};
use std::fmt;

/// A symbolic field reference `class.name : ty`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// The class that the instruction names (resolution may find the field
    /// in a superclass).
    pub class: String,
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
}

impl FieldRef {
    /// Creates a field reference.
    pub fn new(class: impl Into<String>, name: impl Into<String>, ty: Type) -> Self {
        FieldRef {
            class: class.into(),
            name: name.into(),
            ty,
        }
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}:{}", self.class, self.name, self.ty.descriptor())
    }
}

/// A symbolic method reference `class.name(desc)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodRef {
    /// The class or interface the instruction names.
    pub class: String,
    /// Method name (`<init>` for constructors).
    pub name: String,
    /// Method descriptor.
    pub desc: MethodDescriptor,
}

impl MethodRef {
    /// Creates a method reference.
    pub fn new(class: impl Into<String>, name: impl Into<String>, desc: MethodDescriptor) -> Self {
        MethodRef {
            class: class.into(),
            name: name.into(),
            desc,
        }
    }

    /// Whether this references a constructor.
    pub fn is_init(&self) -> bool {
        self.name == "<init>"
    }
}

impl fmt::Display for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}{}", self.class, self.name, self.desc)
    }
}

/// One bytecode instruction. Branch targets are *instruction indices* into
/// the owning [`Code`](crate::Code); the binary writer converts them to
/// byte offsets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Insn {
    /// Do nothing.
    Nop,
    /// Push the integer constant.
    IConst(i32),
    /// Push `null`.
    AConstNull,
    /// Push an `int` from a local slot.
    ILoad(u16),
    /// Store an `int` into a local slot.
    IStore(u16),
    /// Push a reference from a local slot.
    ALoad(u16),
    /// Store a reference into a local slot.
    AStore(u16),
    /// Pop the top of the stack.
    Pop,
    /// Duplicate the top of the stack.
    Dup,
    /// Pop two `int`s, push their sum.
    IAdd,
    /// Load a class constant (reflection — the paper's generics
    /// approximation targets exactly this).
    LdcClass(String),
    /// Allocate an instance of the named class.
    New(String),
    /// Push the value of an instance field.
    GetField(FieldRef),
    /// Store into an instance field.
    PutField(FieldRef),
    /// Invoke a virtual method.
    InvokeVirtual(MethodRef),
    /// Invoke an interface method.
    InvokeInterface(MethodRef),
    /// Invoke a constructor or superclass method directly.
    InvokeSpecial(MethodRef),
    /// Invoke a static method.
    InvokeStatic(MethodRef),
    /// Cast the top-of-stack reference.
    CheckCast(String),
    /// Replace the top-of-stack reference with an `int` instance test.
    InstanceOf(String),
    /// Unconditional jump to the instruction index.
    Goto(u16),
    /// Pop an `int`; jump if zero.
    IfEq(u16),
    /// Return `void`.
    Return,
    /// Return the top-of-stack reference.
    AReturn,
    /// Return the top-of-stack `int`.
    IReturn,
    /// Throw the top-of-stack reference.
    AThrow,
}

impl Insn {
    /// The JVM opcode used in the binary encoding.
    pub fn opcode(&self) -> u8 {
        match self {
            Insn::Nop => 0x00,
            Insn::AConstNull => 0x01,
            Insn::IConst(_) => 0x12, // encoded via ldc of an Integer constant
            Insn::ILoad(_) => 0x15,
            Insn::ALoad(_) => 0x19,
            Insn::IStore(_) => 0x36,
            Insn::AStore(_) => 0x3a,
            Insn::Pop => 0x57,
            Insn::Dup => 0x59,
            Insn::IAdd => 0x60,
            Insn::LdcClass(_) => 0x13, // ldc_w
            Insn::New(_) => 0xbb,
            Insn::GetField(_) => 0xb4,
            Insn::PutField(_) => 0xb5,
            Insn::InvokeVirtual(_) => 0xb6,
            Insn::InvokeSpecial(_) => 0xb7,
            Insn::InvokeStatic(_) => 0xb8,
            Insn::InvokeInterface(_) => 0xb9,
            Insn::CheckCast(_) => 0xc0,
            Insn::InstanceOf(_) => 0xc1,
            Insn::Goto(_) => 0xa7,
            Insn::IfEq(_) => 0x99,
            Insn::Return => 0xb1,
            Insn::AReturn => 0xb0,
            Insn::IReturn => 0xac,
            Insn::AThrow => 0xbf,
        }
    }

    /// Encoded size in bytes (opcode + operands).
    pub fn encoded_len(&self) -> usize {
        match self {
            Insn::Nop
            | Insn::AConstNull
            | Insn::Pop
            | Insn::Dup
            | Insn::IAdd
            | Insn::Return
            | Insn::AReturn
            | Insn::IReturn
            | Insn::AThrow => 1,
            Insn::ILoad(_) | Insn::IStore(_) | Insn::ALoad(_) | Insn::AStore(_) => 3,
            Insn::IConst(_) => 5,
            Insn::LdcClass(_)
            | Insn::New(_)
            | Insn::GetField(_)
            | Insn::PutField(_)
            | Insn::InvokeVirtual(_)
            | Insn::InvokeSpecial(_)
            | Insn::InvokeStatic(_)
            | Insn::CheckCast(_)
            | Insn::InstanceOf(_)
            | Insn::Goto(_)
            | Insn::IfEq(_) => 3,
            Insn::InvokeInterface(_) => 5, // JVM quirk: count + zero bytes
        }
    }

    /// Whether execution cannot fall through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Goto(_) | Insn::Return | Insn::AReturn | Insn::IReturn | Insn::AThrow
        )
    }

    /// The class names this instruction references.
    pub fn referenced_classes(&self) -> Vec<&str> {
        match self {
            Insn::LdcClass(c) | Insn::New(c) | Insn::CheckCast(c) | Insn::InstanceOf(c) => {
                vec![c]
            }
            Insn::GetField(f) | Insn::PutField(f) => {
                let mut v = vec![f.class.as_str()];
                v.extend(f.ty.class_name());
                v
            }
            Insn::InvokeVirtual(m)
            | Insn::InvokeInterface(m)
            | Insn::InvokeSpecial(m)
            | Insn::InvokeStatic(m) => {
                let mut v = vec![m.class.as_str()];
                v.extend(m.desc.referenced_classes());
                v
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcodes_are_jvm_opcodes() {
        assert_eq!(Insn::New("A".into()).opcode(), 0xbb);
        assert_eq!(
            Insn::InvokeVirtual(MethodRef::new("A", "m", MethodDescriptor::void())).opcode(),
            0xb6
        );
        assert_eq!(Insn::CheckCast("A".into()).opcode(), 0xc0);
        assert_eq!(Insn::Return.opcode(), 0xb1);
    }

    #[test]
    fn encoded_lengths() {
        assert_eq!(Insn::Nop.encoded_len(), 1);
        assert_eq!(Insn::ALoad(0).encoded_len(), 3);
        assert_eq!(
            Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())).encoded_len(),
            5
        );
    }

    #[test]
    fn terminators() {
        assert!(Insn::Return.is_terminator());
        assert!(Insn::Goto(0).is_terminator());
        assert!(Insn::AThrow.is_terminator());
        assert!(!Insn::IfEq(0).is_terminator());
        assert!(!Insn::Dup.is_terminator());
    }

    #[test]
    fn referenced_classes() {
        let m = Insn::InvokeVirtual(MethodRef::new(
            "A",
            "m",
            MethodDescriptor::new(vec![Type::reference("B")], Some(Type::reference("C"))),
        ));
        assert_eq!(m.referenced_classes(), vec!["A", "B", "C"]);
        let f = Insn::GetField(FieldRef::new("A", "f", Type::reference("D")));
        assert_eq!(f.referenced_classes(), vec!["A", "D"]);
        assert!(Insn::IAdd.referenced_classes().is_empty());
    }

    #[test]
    fn display_refs() {
        assert_eq!(FieldRef::new("A", "f", Type::Int).to_string(), "A.f:I");
        assert_eq!(
            MethodRef::new("A", "m", MethodDescriptor::void()).to_string(),
            "A.m()V"
        );
        assert!(MethodRef::new("A", "<init>", MethodDescriptor::void()).is_init());
    }
}
