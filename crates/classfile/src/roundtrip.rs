//! Binary round-trip validation: the check every reducer output must pass.
//!
//! A reduced program is only a *result* if it survives serialization: the
//! bytes we hand back must re-read into the same in-memory program and
//! that program must still verify. [`round_trip_verify`] bundles the three
//! checks (write → read → compare, then verify) into one call used by the
//! `reduce`/`eval` binaries and the differential fuzzing harness.

use crate::read::read_program;
use crate::verify::verify_program;
use crate::write::write_program;
use crate::Program;

/// Serializes `program`, reads the bytes back, and verifies the result.
///
/// Returns `Err` with a diagnostic if the bytes fail to parse, the re-read
/// program differs from the original, or the verifier reports errors.
pub fn round_trip_verify(program: &Program) -> Result<(), String> {
    let bytes = write_program(program);
    round_trip_verify_bytes(&bytes, Some(program))
}

/// Validates serialized program `bytes`: they must parse, optionally match
/// `expected`, and verify cleanly.
///
/// This is the form used when the bytes already exist (a written output
/// file, a daemon result): parse failures, mismatches against the
/// in-memory program they claim to encode, and verifier errors all come
/// back as `Err` diagnostics.
pub fn round_trip_verify_bytes(bytes: &[u8], expected: Option<&Program>) -> Result<(), String> {
    let back = read_program(bytes).map_err(|e| format!("re-read failed: {e}"))?;
    if let Some(orig) = expected {
        if &back != orig {
            return Err("re-read program differs from the in-memory original".to_string());
        }
    }
    let errors = verify_program(&back);
    if !errors.is_empty() {
        let mut msg = format!(
            "re-read program fails verification ({} errors):",
            errors.len()
        );
        for e in errors.iter().take(3) {
            msg.push_str(&format!(" [{e}]"));
        }
        if errors.len() > 3 {
            msg.push_str(" …");
        }
        return Err(msg);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassFile, Code, Insn, MethodDescriptor, MethodInfo};

    fn tiny_program() -> Program {
        let mut program = Program::new();
        let mut class = ClassFile::new_class("A");
        class.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        program.insert(class);
        program
    }

    #[test]
    fn valid_program_round_trips() {
        assert_eq!(round_trip_verify(&tiny_program()), Ok(()));
    }

    #[test]
    fn garbage_bytes_are_rejected() {
        let err = round_trip_verify_bytes(b"not a container", None).unwrap_err();
        assert!(err.contains("re-read failed"), "{err}");
    }

    #[test]
    fn mismatched_expected_is_rejected() {
        let bytes = write_program(&tiny_program());
        let mut other = tiny_program();
        other.remove("A");
        let err = round_trip_verify_bytes(&bytes, Some(&other)).unwrap_err();
        assert!(err.contains("differs"), "{err}");
    }

    #[test]
    fn unverifiable_program_is_rejected() {
        let mut program = Program::new();
        let mut class = ClassFile::new_class("B");
        // References a missing superclass-like callee: invalid stack depth.
        class.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::new(0, 0, vec![Insn::Pop, Insn::Return]),
        ));
        program.insert(class);
        let bytes = write_program(&program);
        let err = round_trip_verify_bytes(&bytes, Some(&program)).unwrap_err();
        assert!(err.contains("verification"), "{err}");
    }
}
