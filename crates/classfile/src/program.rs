//! A set of class files and the hierarchy queries on it.
//!
//! `Program` is the unit of reduction: the buggy tool consumes a program,
//! and sub-inputs are programs with items removed. The hierarchy queries —
//! subtype paths, member resolution — return the *relations they used*
//! (extends / implements / interface-extends steps), which is exactly what
//! the logical constraint generator needs: keeping a use of subtyping means
//! keeping every relation on its derivation path.

use crate::{ClassFile, FieldInfo, MethodDescriptor, MethodInfo, OBJECT};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;

/// One step of a subtype derivation or member resolution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Step {
    /// `sub extends sup` (a class superclass edge).
    Extends {
        /// Subclass.
        sub: String,
        /// Superclass.
        sup: String,
    },
    /// `class implements iface`.
    Implements {
        /// The class.
        class: String,
        /// The interface.
        iface: String,
    },
    /// `sub extends sup` between interfaces.
    IfaceExtends {
        /// The sub-interface.
        sub: String,
        /// The super-interface.
        sup: String,
    },
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Extends { sub, sup } => write!(f, "{sub} extends {sup}"),
            Step::Implements { class, iface } => write!(f, "{class} implements {iface}"),
            Step::IfaceExtends { sub, sup } => write!(f, "{sub} extends(i) {sup}"),
        }
    }
}

/// The result of resolving a field or method from a starting class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The class or interface that declares the member.
    pub declaring: String,
    /// The hierarchy steps walked from the named class to `declaring`.
    pub steps: Vec<Step>,
}

/// A program: a named set of class files with an implicit built-in
/// `Object`.
///
/// # Examples
///
/// ```
/// use lbr_classfile::{ClassFile, Program};
/// let mut p = Program::new();
/// p.insert(ClassFile::new_class("A"));
/// assert!(p.get("A").is_some());
/// assert!(p.get("Object").is_some()); // built-in
/// assert!(p.is_subtype("A", "Object"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    classes: BTreeMap<String, ClassFile>,
    object: ClassFile,
}

impl Default for Program {
    fn default() -> Self {
        Self::new()
    }
}

impl Program {
    /// An empty program (containing only the built-in `Object`, which
    /// provides the no-argument constructor every class chain bottoms out
    /// in).
    pub fn new() -> Self {
        let mut object = ClassFile::new_class(OBJECT);
        object.superclass = None;
        object.methods.push(crate::MethodInfo::new(
            "<init>",
            crate::MethodDescriptor::void(),
            crate::Code::new(0, 1, vec![crate::Insn::Return]),
        ));
        Program {
            classes: BTreeMap::new(),
            object,
        }
    }

    /// Inserts (or replaces) a class. Returns the previous one, if any.
    ///
    /// # Panics
    ///
    /// Panics on an attempt to redefine `Object`.
    pub fn insert(&mut self, class: ClassFile) -> Option<ClassFile> {
        assert_ne!(class.name, OBJECT, "Object is built in");
        self.classes.insert(class.name.clone(), class)
    }

    /// Removes a class by name.
    pub fn remove(&mut self, name: &str) -> Option<ClassFile> {
        self.classes.remove(name)
    }

    /// Looks up a class (the built-in `Object` included).
    pub fn get(&self, name: &str) -> Option<&ClassFile> {
        if name == OBJECT {
            Some(&self.object)
        } else {
            self.classes.get(name)
        }
    }

    /// Mutable lookup of a user class.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut ClassFile> {
        self.classes.get_mut(name)
    }

    /// Whether the program declares (or builds in) `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of user classes (excluding `Object`).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether there are no user classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates user classes in name order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassFile> {
        self.classes.values()
    }

    /// Iterates user class names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.classes.keys().map(String::as_str)
    }

    // ------------------------------------------------------------------
    // Hierarchy queries.
    // ------------------------------------------------------------------

    /// The superclass chain starting at `name` (exclusive) up to and
    /// including `Object`. Stops early at an undefined or cyclic class.
    pub fn superclass_chain(&self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut cur = name.to_owned();
        seen.insert(cur.clone());
        while let Some(c) = self.get(&cur) {
            match &c.superclass {
                Some(s) if seen.insert(s.clone()) => {
                    out.push(s.clone());
                    cur = s.clone();
                }
                _ => break,
            }
        }
        out
    }

    /// Whether the hierarchy contains an extends/implements cycle through
    /// `name`.
    pub fn has_hierarchy_cycle(&self, name: &str) -> bool {
        // DFS over all supertype edges.
        let mut visiting = HashSet::new();
        self.cycle_dfs(name, &mut visiting, &mut HashSet::new())
    }

    fn cycle_dfs(
        &self,
        name: &str,
        visiting: &mut HashSet<String>,
        done: &mut HashSet<String>,
    ) -> bool {
        if done.contains(name) {
            return false;
        }
        if !visiting.insert(name.to_owned()) {
            return true;
        }
        if let Some(c) = self.get(name) {
            let supers = c.superclass.iter().chain(c.interfaces.iter());
            for s in supers {
                if self.cycle_dfs(s, visiting, done) {
                    return true;
                }
            }
        }
        visiting.remove(name);
        done.insert(name.to_owned());
        false
    }

    /// Finds the shortest subtype derivation from `sub` to `sup`, as the
    /// list of hierarchy steps used. `Some(vec![])` when `sub == sup`.
    pub fn subtype_path(&self, sub: &str, sup: &str) -> Option<Vec<Step>> {
        if sub == sup {
            return Some(Vec::new());
        }
        // BFS over supertype edges.
        let mut queue = VecDeque::new();
        let mut pred: BTreeMap<String, (String, Step)> = BTreeMap::new();
        queue.push_back(sub.to_owned());
        let mut seen = HashSet::new();
        seen.insert(sub.to_owned());
        while let Some(cur) = queue.pop_front() {
            let Some(c) = self.get(&cur) else { continue };
            let mut edges: Vec<(String, Step)> = Vec::new();
            if let Some(s) = &c.superclass {
                if !c.is_interface() {
                    edges.push((
                        s.clone(),
                        Step::Extends {
                            sub: cur.clone(),
                            sup: s.clone(),
                        },
                    ));
                }
            }
            for i in &c.interfaces {
                let step = if c.is_interface() {
                    Step::IfaceExtends {
                        sub: cur.clone(),
                        sup: i.clone(),
                    }
                } else {
                    Step::Implements {
                        class: cur.clone(),
                        iface: i.clone(),
                    }
                };
                edges.push((i.clone(), step));
            }
            for (next, step) in edges {
                if seen.insert(next.clone()) {
                    pred.insert(next.clone(), (cur.clone(), step));
                    if next == sup {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut node = sup.to_owned();
                        while node != sub {
                            let (prev, step) = pred[&node].clone();
                            path.push(step);
                            node = prev;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Whether `sub` is a subtype of `sup`.
    pub fn is_subtype(&self, sub: &str, sup: &str) -> bool {
        self.subtype_path(sub, sup).is_some()
    }

    /// The least upper bound used by the verifier's merge: the common type
    /// if equal, otherwise `Object`.
    pub fn merge_types(&self, a: &str, b: &str) -> String {
        if a == b {
            a.to_owned()
        } else {
            OBJECT.to_owned()
        }
    }

    /// All interfaces transitively reachable from `name` (via implements,
    /// interface-extends and superclasses), with the step path to each.
    pub fn interface_closure(&self, name: &str) -> Vec<(String, Vec<Step>)> {
        let mut out = Vec::new();
        let mut queue = VecDeque::new();
        let mut seen = HashSet::new();
        queue.push_back((name.to_owned(), Vec::new()));
        seen.insert(name.to_owned());
        while let Some((cur, path)) = queue.pop_front() {
            let Some(c) = self.get(&cur) else { continue };
            if c.is_interface() && cur != name {
                out.push((cur.clone(), path.clone()));
            }
            if let Some(s) = &c.superclass {
                if !c.is_interface() && seen.insert(s.clone()) {
                    let mut p = path.clone();
                    p.push(Step::Extends {
                        sub: cur.clone(),
                        sup: s.clone(),
                    });
                    queue.push_back((s.clone(), p));
                }
            }
            for i in &c.interfaces {
                if seen.insert(i.clone()) {
                    let mut p = path.clone();
                    p.push(if c.is_interface() {
                        Step::IfaceExtends {
                            sub: cur.clone(),
                            sup: i.clone(),
                        }
                    } else {
                        Step::Implements {
                            class: cur.clone(),
                            iface: i.clone(),
                        }
                    });
                    queue.push_back((i.clone(), p));
                }
            }
        }
        out
    }

    /// Resolves a field named on `class`, walking the superclass chain.
    pub fn resolve_field(&self, class: &str, field: &str) -> Option<(Resolution, &FieldInfo)> {
        let mut steps = Vec::new();
        let mut cur = class.to_owned();
        let mut guard = 0;
        loop {
            let c = self.get(&cur)?;
            if let Some(f) = c.field(field) {
                return Some((
                    Resolution {
                        declaring: cur.clone(),
                        steps,
                    },
                    f,
                ));
            }
            let sup = c.superclass.clone()?;
            steps.push(Step::Extends {
                sub: cur.clone(),
                sup: sup.clone(),
            });
            cur = sup;
            guard += 1;
            if guard > self.len() + 2 {
                return None; // cycle
            }
        }
    }

    /// Resolves a method named on `class`: first the superclass chain,
    /// then (breadth-first) the superinterfaces.
    pub fn resolve_method(
        &self,
        class: &str,
        name: &str,
        desc: &MethodDescriptor,
    ) -> Option<(Resolution, &MethodInfo)> {
        // Class chain.
        let mut steps = Vec::new();
        let mut cur = class.to_owned();
        let mut guard = 0;
        while let Some(c) = self.get(&cur) {
            if let Some(m) = c.method(name, desc) {
                return Some((
                    Resolution {
                        declaring: cur.clone(),
                        steps,
                    },
                    m,
                ));
            }
            if c.is_interface() {
                break; // interfaces handled below
            }
            match c.superclass.clone() {
                Some(sup) => {
                    steps.push(Step::Extends {
                        sub: cur.clone(),
                        sup: sup.clone(),
                    });
                    cur = sup;
                }
                None => break,
            }
            guard += 1;
            if guard > self.len() + 2 {
                return None;
            }
        }
        // Interface closure.
        for (iface, path) in self.interface_closure(class) {
            if let Some(c) = self.get(&iface) {
                if let Some(m) = c.method(name, desc) {
                    return Some((
                        Resolution {
                            declaring: iface.clone(),
                            steps: path,
                        },
                        m,
                    ));
                }
            }
        }
        None
    }
}

impl FromIterator<ClassFile> for Program {
    fn from_iter<T: IntoIterator<Item = ClassFile>>(iter: T) -> Self {
        let mut p = Program::new();
        for c in iter {
            p.insert(c);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Code, Flags, Type};

    fn sample() -> Program {
        // interface J; interface I extends J; class A implements I;
        // class B extends A; field A.f; method I.m abstract, A.m concrete.
        let mut j = ClassFile::new_interface("J");
        j.methods
            .push(MethodInfo::new_abstract("p", MethodDescriptor::void()));
        let mut i = ClassFile::new_interface("I");
        i.interfaces.push("J".into());
        i.methods
            .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
        let mut a = ClassFile::new_class("A");
        a.interfaces.push("I".into());
        a.fields.push(FieldInfo::new("f", Type::Int));
        a.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::trivial(1),
        ));
        let mut b = ClassFile::new_class("B");
        b.superclass = Some("A".into());
        [j, i, a, b].into_iter().collect()
    }

    #[test]
    fn chain_and_subtyping() {
        let p = sample();
        assert_eq!(p.superclass_chain("B"), vec!["A", "Object"]);
        assert!(p.is_subtype("B", "A"));
        assert!(p.is_subtype("B", "Object"));
        assert!(p.is_subtype("B", "I"));
        assert!(p.is_subtype("B", "J"));
        assert!(p.is_subtype("I", "J"));
        assert!(!p.is_subtype("A", "B"));
        assert!(!p.is_subtype("J", "I"));
    }

    #[test]
    fn subtype_paths_record_relations() {
        let p = sample();
        let path = p.subtype_path("B", "J").expect("subtype");
        assert_eq!(
            path,
            vec![
                Step::Extends {
                    sub: "B".into(),
                    sup: "A".into()
                },
                Step::Implements {
                    class: "A".into(),
                    iface: "I".into()
                },
                Step::IfaceExtends {
                    sub: "I".into(),
                    sup: "J".into()
                },
            ]
        );
        assert_eq!(p.subtype_path("A", "A"), Some(vec![]));
        assert_eq!(p.subtype_path("A", "B"), None);
    }

    #[test]
    fn field_resolution_walks_supers() {
        let p = sample();
        let (res, f) = p.resolve_field("B", "f").expect("resolves");
        assert_eq!(res.declaring, "A");
        assert_eq!(f.ty, Type::Int);
        assert_eq!(res.steps.len(), 1);
        assert!(p.resolve_field("B", "nope").is_none());
    }

    #[test]
    fn method_resolution_class_then_interface() {
        let p = sample();
        let (res, m) = p
            .resolve_method("B", "m", &MethodDescriptor::void())
            .expect("resolves");
        assert_eq!(res.declaring, "A");
        assert!(m.code.is_some());
        // p is only declared on interface J.
        let (res, m) = p
            .resolve_method("B", "p", &MethodDescriptor::void())
            .expect("resolves via interfaces");
        assert_eq!(res.declaring, "J");
        assert!(m.code.is_none());
    }

    #[test]
    fn interface_closure_with_paths() {
        let p = sample();
        let closure = p.interface_closure("B");
        let names: Vec<&str> = closure.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["I", "J"]);
        let (_, path_j) = &closure[1];
        assert_eq!(path_j.len(), 3);
    }

    #[test]
    fn cycle_detection() {
        let mut p = Program::new();
        let mut a = ClassFile::new_class("A");
        a.superclass = Some("B".into());
        let mut b = ClassFile::new_class("B");
        b.superclass = Some("A".into());
        p.insert(a);
        p.insert(b);
        assert!(p.has_hierarchy_cycle("A"));
        assert!(!sample().has_hierarchy_cycle("B"));
        // superclass_chain terminates on cycles.
        assert!(p.superclass_chain("A").len() <= 2);
    }

    #[test]
    fn merge_types() {
        let p = sample();
        assert_eq!(p.merge_types("A", "A"), "A");
        assert_eq!(p.merge_types("A", "B"), "Object");
    }

    #[test]
    #[should_panic(expected = "Object is built in")]
    fn cannot_redefine_object() {
        let mut p = Program::new();
        p.insert(ClassFile::new_class(OBJECT));
    }

    #[test]
    fn abstract_flag_queries() {
        let mut c = ClassFile::new_class("A");
        c.flags |= Flags::ABSTRACT;
        assert!(!c.is_instantiable());
    }
}
