//! Logical dependency-model generation for bytecode programs.
//!
//! This is the bytecode-scale version of the FJI constraint generator
//! (Section 3 of the paper): every verification fact becomes a formula
//! over the item variables, so that *every satisfying assignment reduces
//! to a program that still verifies*.
//!
//! Three constraint families:
//!
//! * **Syntactic** — members imply their owners, code implies its method,
//!   relations imply their endpoints, descriptors imply their classes, and
//!   every kept class keeps at least one constructor.
//! * **Referential** — replaying the verifier over each body through
//!   [`VerifyHooks`]: member resolutions pin the declaring item plus the
//!   hierarchy steps walked; receiver/argument/return subtyping pins its
//!   derivation path; `new` pins the class; reflection (`ldc C.class`)
//!   uses the paper's generics approximation and pins *every* supertype
//!   relation of `C`.
//! * **Non-referential** — virtual dispatch becomes an `mAny` disjunction
//!   ("some method of this name must remain reachable"), and interface /
//!   abstract-method obligations become `(class ∧ path ∧ signature) ⇒
//!   implAny` constraints, which need full propositional logic.

use crate::item::{Item, ItemRegistry};
use crate::{
    verify_method_code, ClassFile, FieldRef, InvokeKind, MethodDescriptor, MethodRef, Program,
    Resolution, Step, VerifyError, VerifyHooks, OBJECT,
};
use lbr_core::ModelStats;
use lbr_logic::{Cnf, Formula};
use std::collections::HashSet;

/// A generated dependency model.
#[derive(Debug, Clone)]
pub struct LogicalModel {
    /// The item ↔ variable mapping.
    pub registry: ItemRegistry,
    /// The dependency constraints in CNF.
    pub cnf: Cnf,
}

impl LogicalModel {
    /// Handy statistics for reports (the paper's "2.9k reducible items,
    /// 8.7k clauses, 97.5% edges").
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            items: self.registry.len(),
            clauses: self.cnf.len(),
            graph_fraction: self.cnf.graph_fraction(),
        }
    }
}

/// An error during model generation: the input program does not verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    /// The verification failure that stopped generation.
    pub cause: VerifyError,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "input does not verify: {}", self.cause)
    }
}

impl std::error::Error for ModelError {}

impl From<ModelError> for lbr_core::PipelineError {
    fn from(e: ModelError) -> Self {
        lbr_core::PipelineError::Model(e.to_string())
    }
}

/// Builds the logical dependency model of a (verifying) program.
///
/// # Errors
///
/// Returns [`ModelError`] if a method body fails verification — like the
/// paper, which dropped the benchmarks that did not type check.
pub fn build_model(program: &Program) -> Result<LogicalModel, ModelError> {
    let registry = ItemRegistry::from_program(program);
    let mut formula_parts: Vec<Formula> = Vec::new();
    let gen = Generator {
        program,
        reg: &registry,
    };

    for class in program.classes() {
        gen.syntactic(class, &mut formula_parts);
        gen.code_constraints(class, &mut formula_parts)?;
        gen.obligations(class, &mut formula_parts);
    }

    let mut cnf = Cnf::new(registry.len());
    for part in formula_parts {
        part.to_cnf_into(&mut cnf);
    }
    cnf.ensure_vars(registry.len());
    cnf.dedup_clauses();
    Ok(LogicalModel { registry, cnf })
}

struct Generator<'p> {
    program: &'p Program,
    reg: &'p ItemRegistry,
}

impl Generator<'_> {
    fn class_item(&self, class: &ClassFile) -> Item {
        if class.is_interface() {
            Item::Interface(class.name.clone())
        } else {
            Item::Class(class.name.clone())
        }
    }

    // ------------------------------------------------------------------
    // Syntactic constraints.
    // ------------------------------------------------------------------
    fn syntactic(&self, class: &ClassFile, out: &mut Vec<Formula>) {
        let reg = self.reg;
        let name = &class.name;
        let class_var = reg.formula(&self.class_item(class));

        if !class.is_interface() {
            if let Some(sup) = &class.superclass {
                if sup != OBJECT {
                    let rel = reg.formula(&Item::SuperClass(name.clone(), sup.clone()));
                    out.push(rel.implies(Formula::and([class_var.clone(), reg.type_formula(sup)])));
                }
            }
            for iface in &class.interfaces {
                let rel = reg.formula(&Item::Implements(name.clone(), iface.clone()));
                out.push(rel.implies(Formula::and([class_var.clone(), reg.type_formula(iface)])));
            }
            // A kept class keeps at least one constructor.
            let ctors: Vec<Formula> = class
                .constructors()
                .map(|m| reg.formula(&Item::Constructor(name.clone(), m.desc.descriptor())))
                .collect();
            if !ctors.is_empty() {
                out.push(class_var.clone().implies(Formula::or(ctors)));
            }
        } else {
            for sup in &class.interfaces {
                let rel = reg.formula(&Item::InterfaceExtends(name.clone(), sup.clone()));
                out.push(rel.implies(Formula::and([class_var.clone(), reg.type_formula(sup)])));
            }
        }
        for field in &class.fields {
            let fv = reg.formula(&Item::Field(name.clone(), field.name.clone()));
            let mut need = vec![class_var.clone()];
            if let Some(c) = field.ty.class_name() {
                need.push(reg.type_formula(c));
            }
            out.push(fv.implies(Formula::and(need)));
        }
        for m in &class.methods {
            let desc = m.desc.descriptor();
            let desc_classes: Vec<Formula> = m
                .desc
                .referenced_classes()
                .map(|c| reg.type_formula(c))
                .collect();
            if m.is_init() {
                let ctor = reg.formula(&Item::Constructor(name.clone(), desc.clone()));
                let code = reg.formula(&Item::ConstructorCode(name.clone(), desc));
                out.push(ctor.clone().implies(Formula::and(
                    std::iter::once(class_var.clone()).chain(desc_classes),
                )));
                out.push(code.implies(ctor));
            } else if m.code.is_some() {
                let mv = reg.formula(&Item::Method(name.clone(), m.name.clone(), desc.clone()));
                let code = reg.formula(&Item::MethodCode(name.clone(), m.name.clone(), desc));
                out.push(mv.clone().implies(Formula::and(
                    std::iter::once(class_var.clone()).chain(desc_classes),
                )));
                out.push(code.implies(mv));
            } else {
                let sv = reg.formula(&Item::Signature(name.clone(), m.name.clone(), desc));
                out.push(sv.implies(Formula::and(
                    std::iter::once(class_var.clone()).chain(desc_classes),
                )));
            }
        }
    }

    // ------------------------------------------------------------------
    // Referential constraints (replay the verifier over each body).
    // ------------------------------------------------------------------
    fn code_constraints(
        &self,
        class: &ClassFile,
        out: &mut Vec<Formula>,
    ) -> Result<(), ModelError> {
        for m in &class.methods {
            let Some(code) = &m.code else { continue };
            let mut hooks = Collector {
                gen: self,
                parts: Vec::new(),
            };
            verify_method_code(self.program, class, m, code, &mut hooks)
                .map_err(|cause| ModelError { cause })?;
            let desc = m.desc.descriptor();
            let code_item = if m.is_init() {
                Item::ConstructorCode(class.name.clone(), desc)
            } else {
                Item::MethodCode(class.name.clone(), m.name.clone(), desc)
            };
            let body = Formula::and(hooks.parts);
            out.push(self.reg.formula(&code_item).implies(body));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Non-referential constraints: interface / abstract obligations.
    // ------------------------------------------------------------------
    fn obligations(&self, class: &ClassFile, out: &mut Vec<Formula>) {
        if !class.is_instantiable() {
            return;
        }
        let class_var = self.reg.formula(&self.class_item(class));
        // Every supertype that declares abstract methods.
        let mut sources: Vec<String> = Vec::new();
        for sup in self.program.superclass_chain(&class.name) {
            sources.push(sup);
        }
        for (iface, _) in self.program.interface_closure(&class.name) {
            sources.push(iface);
        }
        sources.sort();
        sources.dedup();
        for source in sources {
            let Some(decl) = self.program.get(&source) else {
                continue;
            };
            let abstracts: Vec<&crate::MethodInfo> = decl
                .methods
                .iter()
                .filter(|m| m.flags.is_abstract())
                .collect();
            if abstracts.is_empty() {
                continue;
            }
            let paths = supertype_paths(self.program, &class.name, &source, 16);
            for m in abstracts {
                let sig = self.reg.formula(&Item::Signature(
                    source.clone(),
                    m.name.clone(),
                    m.desc.descriptor(),
                ));
                let impl_any = self.impl_any(&class.name, &m.name, &m.desc);
                for path in &paths {
                    let cond =
                        Formula::and([class_var.clone(), self.steps_formula(path), sig.clone()]);
                    out.push(cond.implies(impl_any.clone()));
                }
            }
        }
    }

    /// `implAny(C, m, d)`: some *concrete* method `m` remains reachable on
    /// `C`'s superclass chain.
    fn impl_any(&self, class: &str, name: &str, desc: &MethodDescriptor) -> Formula {
        let mut parts = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        let mut cur = class.to_owned();
        let mut guard = 0;
        while let Some(decl) = self.program.get(&cur) {
            if let Some(m) = decl.method(name, desc) {
                if m.code.is_some() && !m.is_init() {
                    parts.push(Formula::and([
                        self.steps_formula(&steps),
                        self.reg.formula(&Item::Method(
                            cur.clone(),
                            name.to_owned(),
                            desc.descriptor(),
                        )),
                    ]));
                }
            }
            match decl.superclass.clone() {
                Some(sup) => {
                    steps.push(Step::Extends {
                        sub: cur.clone(),
                        sup: sup.clone(),
                    });
                    cur = sup;
                }
                None => break,
            }
            guard += 1;
            if guard > self.program.len() + 2 {
                break;
            }
        }
        Formula::or(parts)
    }

    /// `mAny(T, m, d)`: some method or signature `m` remains *resolvable*
    /// on `T` (concrete or abstract — resolution only needs existence).
    fn many(&self, ty: &str, name: &str, desc: &MethodDescriptor) -> Formula {
        let mut visited = HashSet::new();
        self.many_rec(ty, name, desc, &mut visited)
    }

    fn many_rec(
        &self,
        ty: &str,
        name: &str,
        desc: &MethodDescriptor,
        visited: &mut HashSet<String>,
    ) -> Formula {
        if !visited.insert(ty.to_owned()) {
            return Formula::ff();
        }
        let Some(decl) = self.program.get(ty) else {
            return Formula::ff();
        };
        let mut parts = Vec::new();
        if let Some(m) = decl.method(name, desc) {
            let item = if m.is_init() {
                Item::Constructor(ty.to_owned(), desc.descriptor())
            } else if m.code.is_some() {
                Item::Method(ty.to_owned(), name.to_owned(), desc.descriptor())
            } else {
                Item::Signature(ty.to_owned(), name.to_owned(), desc.descriptor())
            };
            parts.push(self.reg.formula(&item));
        }
        if decl.is_interface() {
            for sup in &decl.interfaces {
                let rel = self
                    .reg
                    .formula(&Item::InterfaceExtends(ty.to_owned(), sup.clone()));
                parts.push(Formula::and([rel, self.many_rec(sup, name, desc, visited)]));
            }
        } else {
            if let Some(sup) = &decl.superclass {
                let rel = if sup == OBJECT {
                    Formula::tt()
                } else {
                    self.reg
                        .formula(&Item::SuperClass(ty.to_owned(), sup.clone()))
                };
                parts.push(Formula::and([rel, self.many_rec(sup, name, desc, visited)]));
            }
            for iface in &decl.interfaces {
                let rel = self
                    .reg
                    .formula(&Item::Implements(ty.to_owned(), iface.clone()));
                parts.push(Formula::and([
                    rel,
                    self.many_rec(iface, name, desc, visited),
                ]));
            }
        }
        Formula::or(parts)
    }

    /// The conjunction of relation items along a derivation path.
    fn steps_formula(&self, steps: &[Step]) -> Formula {
        Formula::and(steps.iter().map(|s| self.step_formula(s)))
    }

    fn step_formula(&self, step: &Step) -> Formula {
        match step {
            Step::Extends { sub, sup } => {
                if sup == OBJECT {
                    Formula::tt()
                } else {
                    self.reg
                        .formula(&Item::SuperClass(sub.clone(), sup.clone()))
                }
            }
            Step::Implements { class, iface } => self
                .reg
                .formula(&Item::Implements(class.clone(), iface.clone())),
            Step::IfaceExtends { sub, sup } => self
                .reg
                .formula(&Item::InterfaceExtends(sub.clone(), sup.clone())),
        }
    }

    /// The paper's generics/reflection approximation: a body reflecting on
    /// `C` depends on every supertype relation of `C`.
    fn reflection_formula(&self, class: &str) -> Formula {
        let mut parts = vec![self.reg.type_formula(class)];
        let mut queue = vec![class.to_owned()];
        let mut seen: HashSet<String> = queue.iter().cloned().collect();
        while let Some(cur) = queue.pop() {
            let Some(decl) = self.program.get(&cur) else {
                continue;
            };
            if !decl.is_interface() {
                if let Some(sup) = &decl.superclass {
                    if sup != OBJECT {
                        parts.push(
                            self.reg
                                .formula(&Item::SuperClass(cur.clone(), sup.clone())),
                        );
                    }
                    if seen.insert(sup.clone()) {
                        queue.push(sup.clone());
                    }
                }
            }
            for iface in &decl.interfaces {
                let item = if decl.is_interface() {
                    Item::InterfaceExtends(cur.clone(), iface.clone())
                } else {
                    Item::Implements(cur.clone(), iface.clone())
                };
                parts.push(self.reg.formula(&item));
                if seen.insert(iface.clone()) {
                    queue.push(iface.clone());
                }
            }
        }
        Formula::and(parts)
    }
}

/// Enumerates all simple supertype derivation paths from `from` to `to`,
/// up to `cap` paths.
pub fn supertype_paths(program: &Program, from: &str, to: &str, cap: usize) -> Vec<Vec<Step>> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    let mut on_path = HashSet::new();
    dfs_paths(program, from, to, &mut path, &mut on_path, &mut out, cap);
    out
}

fn dfs_paths(
    program: &Program,
    cur: &str,
    to: &str,
    path: &mut Vec<Step>,
    on_path: &mut HashSet<String>,
    out: &mut Vec<Vec<Step>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    if cur == to {
        out.push(path.clone());
        return;
    }
    if !on_path.insert(cur.to_owned()) {
        return;
    }
    if let Some(decl) = program.get(cur) {
        if !decl.is_interface() {
            if let Some(sup) = decl.superclass.clone() {
                path.push(Step::Extends {
                    sub: cur.to_owned(),
                    sup: sup.clone(),
                });
                dfs_paths(program, &sup, to, path, on_path, out, cap);
                path.pop();
            }
        }
        for iface in decl.interfaces.clone() {
            let step = if decl.is_interface() {
                Step::IfaceExtends {
                    sub: cur.to_owned(),
                    sup: iface.clone(),
                }
            } else {
                Step::Implements {
                    class: cur.to_owned(),
                    iface: iface.clone(),
                }
            };
            path.push(step);
            dfs_paths(program, &iface, to, path, on_path, out, cap);
            path.pop();
        }
    }
    on_path.remove(cur);
}

/// The hook collector: accumulates the formula parts of one method body.
struct Collector<'g, 'p> {
    gen: &'g Generator<'p>,
    parts: Vec<Formula>,
}

impl VerifyHooks for Collector<'_, '_> {
    fn on_subtype(&mut self, _sub: &str, _sup: &str, steps: &[Step]) {
        self.parts.push(self.gen.steps_formula(steps));
    }

    fn on_field(&mut self, named: &FieldRef, resolution: &Resolution) {
        self.parts.push(Formula::and([
            self.gen.steps_formula(&resolution.steps),
            self.gen.reg.formula(&Item::Field(
                resolution.declaring.clone(),
                named.name.clone(),
            )),
        ]));
        if let Some(c) = named.ty.class_name() {
            self.parts.push(self.gen.reg.type_formula(c));
        }
    }

    fn on_method(&mut self, named: &MethodRef, resolution: &Resolution, kind: InvokeKind) {
        let reg = self.gen.reg;
        self.parts.push(reg.type_formula(&named.class));
        match kind {
            InvokeKind::Virtual | InvokeKind::Interface => {
                // Dispatch needs *some* resolvable method: the mAny
                // disjunction, the constraint a dependency graph cannot
                // express.
                self.parts
                    .push(self.gen.many(&named.class, &named.name, &named.desc));
            }
            InvokeKind::Special if named.is_init() => {
                self.parts.push(reg.formula(&Item::Constructor(
                    named.class.clone(),
                    named.desc.descriptor(),
                )));
            }
            InvokeKind::Special | InvokeKind::Static => {
                // Exact resolution: pin the declaring item and the steps.
                let target = self
                    .gen
                    .program
                    .get(&resolution.declaring)
                    .and_then(|c| c.method(&named.name, &named.desc));
                let item = match target {
                    Some(m) if m.code.is_some() => Item::Method(
                        resolution.declaring.clone(),
                        named.name.clone(),
                        named.desc.descriptor(),
                    ),
                    _ => Item::Signature(
                        resolution.declaring.clone(),
                        named.name.clone(),
                        named.desc.descriptor(),
                    ),
                };
                self.parts.push(Formula::and([
                    self.gen.steps_formula(&resolution.steps),
                    reg.formula(&item),
                ]));
            }
        }
    }

    fn on_new(&mut self, class: &str) {
        self.parts.push(self.gen.reg.type_formula(class));
    }

    fn on_reflection(&mut self, class: &str) {
        self.parts.push(self.gen.reflection_formula(class));
    }

    fn on_type_use(&mut self, class: &str) {
        self.parts.push(self.gen.reg.type_formula(class));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reducer::reduce_program;
    use crate::{Code, Insn, MethodInfo, Type};
    use lbr_logic::{dpll, Lit, VarOrder, VarSet};

    fn ctor() -> MethodInfo {
        MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        )
    }

    /// interface I { m() }  class A implements I { m() }  class B extends A
    /// class M { x(I): calls m; main: new A, checkcast I }
    fn paperish_program() -> Program {
        let mut i = ClassFile::new_interface("I");
        i.methods
            .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
        let mut a = ClassFile::new_class("A");
        a.interfaces.push("I".into());
        a.methods.push(ctor());
        a.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        let mut b = ClassFile::new_class("B");
        b.superclass = Some("A".into());
        b.methods.push(ctor());
        let mut m = ClassFile::new_class("M");
        m.methods.push(ctor());
        m.methods.push(MethodInfo::new(
            "x",
            MethodDescriptor::new(vec![Type::reference("I")], None),
            Code::new(
                1,
                2,
                vec![
                    Insn::ALoad(1),
                    Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())),
                    Insn::Return,
                ],
            ),
        ));
        m.methods.push(MethodInfo::new(
            "main",
            MethodDescriptor::void(),
            Code::new(
                3,
                1,
                vec![
                    Insn::ALoad(0),
                    Insn::New("A".into()),
                    Insn::Dup,
                    Insn::InvokeSpecial(MethodRef::new("A", "<init>", MethodDescriptor::void())),
                    Insn::CheckCast("I".into()),
                    Insn::InvokeVirtual(MethodRef::new(
                        "M",
                        "x",
                        MethodDescriptor::new(vec![Type::reference("I")], None),
                    )),
                    Insn::Return,
                ],
            ),
        ));
        [i, a, b, m].into_iter().collect()
    }

    #[test]
    fn model_builds_on_valid_program() {
        let p = paperish_program();
        assert!(crate::verify_program(&p).is_empty());
        let model = build_model(&p).expect("model builds");
        let stats = model.stats();
        assert!(stats.items > 10);
        assert!(stats.clauses > stats.items / 2);
        assert!(stats.graph_fraction > 0.5 && stats.graph_fraction <= 1.0);
    }

    #[test]
    fn full_keep_satisfies_model() {
        let p = paperish_program();
        let model = build_model(&p).expect("model builds");
        let all = VarSet::full(model.registry.len());
        assert!(
            model.cnf.eval(&all),
            "the whole input must be a model (R_I(I) holds)"
        );
    }

    #[test]
    fn models_reduce_to_verifying_programs() {
        // The bytecode Theorem 3.1: every satisfying assignment reduces to
        // a verifying program. Check a spread of models found by DPLL with
        // different orders and assumptions.
        let p = paperish_program();
        let model = build_model(&p).expect("model builds");
        let n = model.registry.len();
        let mut checked = 0;
        for flip in 0..n {
            let order = VarOrder::from_permutation(
                (0..n as u32)
                    .map(|i| lbr_logic::Var::new((i + flip as u32) % n as u32))
                    .collect(),
            );
            let assumption = Lit::pos(lbr_logic::Var::new(flip as u32));
            if let Some((solution, _)) =
                dpll::solve_with_assumptions(&model.cnf, &order, &[assumption])
            {
                let reduced = reduce_program(&p, &model.registry, &solution);
                let errors = crate::verify_program(&reduced);
                assert!(
                    errors.is_empty(),
                    "model {} reduced to invalid program: {errors:?}",
                    model.registry.render_solution(&solution)
                );
                checked += 1;
            }
        }
        assert!(checked > 5, "expected several satisfiable probes");
    }

    #[test]
    fn obligation_requires_implementation() {
        // Keeping A, A<I and I.m must force keeping A.m.
        let p = paperish_program();
        let model = build_model(&p).expect("model builds");
        let reg = &model.registry;
        let v = |item: &Item| reg.var(item).expect("registered");
        let assumptions = [
            Lit::pos(v(&Item::Class("A".into()))),
            Lit::pos(v(&Item::Implements("A".into(), "I".into()))),
            Lit::pos(v(&Item::Signature("I".into(), "m".into(), "()V".into()))),
            Lit::neg(v(&Item::Method("A".into(), "m".into(), "()V".into()))),
        ];
        let order = VarOrder::natural(reg.len());
        assert!(
            dpll::solve_with_assumptions(&model.cnf, &order, &assumptions).is_none(),
            "dropping A.m while keeping A<I and I.m must be unsatisfiable"
        );
    }

    #[test]
    fn cast_requires_relation() {
        // M.main!code casts A to I: keeping it must force A<I.
        let p = paperish_program();
        let model = build_model(&p).expect("model builds");
        let reg = &model.registry;
        let v = |item: &Item| reg.var(item).expect("registered");
        let assumptions = [
            Lit::pos(v(&Item::MethodCode(
                "M".into(),
                "main".into(),
                "()V".into(),
            ))),
            Lit::neg(v(&Item::Implements("A".into(), "I".into()))),
        ];
        let order = VarOrder::natural(reg.len());
        assert!(
            dpll::solve_with_assumptions(&model.cnf, &order, &assumptions).is_none(),
            "the cast dependency [M.main!code] ⇒ [A<I] must hold"
        );
    }

    #[test]
    fn class_requires_a_constructor() {
        let p = paperish_program();
        let model = build_model(&p).expect("model builds");
        let reg = &model.registry;
        let v = |item: &Item| reg.var(item).expect("registered");
        let assumptions = [
            Lit::pos(v(&Item::Class("A".into()))),
            Lit::neg(v(&Item::Constructor("A".into(), "()V".into()))),
        ];
        let order = VarOrder::natural(reg.len());
        assert!(
            dpll::solve_with_assumptions(&model.cnf, &order, &assumptions).is_none(),
            "a kept class must keep a constructor"
        );
    }

    #[test]
    fn diamond_obligations_constrain_every_path() {
        // J declares p; I1 and I2 both extend J; C implements I1 and I2.
        // Dropping either implements-edge alone must still obligate C.p
        // through the surviving path.
        let mut j = ClassFile::new_interface("J");
        j.methods
            .push(MethodInfo::new_abstract("p", MethodDescriptor::void()));
        let mut i1 = ClassFile::new_interface("I1");
        i1.interfaces.push("J".into());
        let mut i2 = ClassFile::new_interface("I2");
        i2.interfaces.push("J".into());
        let mut c = ClassFile::new_class("C");
        c.interfaces.push("I1".into());
        c.interfaces.push("I2".into());
        c.methods.push(ctor());
        c.methods.push(MethodInfo::new(
            "p",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        let p: Program = [j, i1, i2, c].into_iter().collect();
        assert!(crate::verify_program(&p).is_empty());
        assert_eq!(supertype_paths(&p, "C", "J", 16).len(), 2);
        let model = build_model(&p).expect("model builds");
        let reg = &model.registry;
        let v = |item: &Item| reg.var(item).expect("registered");
        let order = VarOrder::natural(reg.len());
        // Drop the I1 path entirely, keep the I2 path and the signature —
        // C.p must still be forced.
        let assumptions = [
            Lit::pos(v(&Item::Class("C".into()))),
            Lit::neg(v(&Item::Implements("C".into(), "I1".into()))),
            Lit::pos(v(&Item::Implements("C".into(), "I2".into()))),
            Lit::pos(v(&Item::InterfaceExtends("I2".into(), "J".into()))),
            Lit::pos(v(&Item::Signature("J".into(), "p".into(), "()V".into()))),
            Lit::neg(v(&Item::Method("C".into(), "p".into(), "()V".into()))),
        ];
        assert!(
            dpll::solve_with_assumptions(&model.cnf, &order, &assumptions).is_none(),
            "the I2 path must keep the obligation alive"
        );
        // With both implements-edges dropped, C.p becomes removable.
        let relaxed = [
            Lit::pos(v(&Item::Class("C".into()))),
            Lit::neg(v(&Item::Implements("C".into(), "I1".into()))),
            Lit::neg(v(&Item::Implements("C".into(), "I2".into()))),
            Lit::pos(v(&Item::Signature("J".into(), "p".into(), "()V".into()))),
            Lit::neg(v(&Item::Method("C".into(), "p".into(), "()V".into()))),
        ];
        assert!(
            dpll::solve_with_assumptions(&model.cnf, &order, &relaxed).is_some(),
            "with no path, no obligation"
        );
    }

    #[test]
    fn superclass_paths_enumerated() {
        let p = paperish_program();
        let paths = supertype_paths(&p, "B", "I", 16);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2); // B extends A, A implements I
        let self_paths = supertype_paths(&p, "A", "A", 16);
        assert_eq!(self_paths, vec![Vec::new()]);
        assert!(supertype_paths(&p, "I", "B", 16).is_empty());
    }

    #[test]
    fn reflection_pins_supertypes() {
        let mut p = paperish_program();
        let mut r = ClassFile::new_class("R");
        r.methods.push(ctor());
        r.methods.push(MethodInfo::new(
            "reflect",
            MethodDescriptor::void(),
            Code::new(
                1,
                1,
                vec![Insn::LdcClass("B".into()), Insn::Pop, Insn::Return],
            ),
        ));
        p.insert(r);
        let model = build_model(&p).expect("model builds");
        let reg = &model.registry;
        let v = |item: &Item| reg.var(item).expect("registered");
        let order = VarOrder::natural(reg.len());
        // Keeping the reflective body must force B's whole supertype web.
        let assumptions = [
            Lit::pos(v(&Item::MethodCode(
                "R".into(),
                "reflect".into(),
                "()V".into(),
            ))),
            Lit::neg(v(&Item::Implements("A".into(), "I".into()))),
        ];
        assert!(
            dpll::solve_with_assumptions(&model.cnf, &order, &assumptions).is_none(),
            "reflection approximation must pin A<I"
        );
    }

    #[test]
    fn invalid_program_is_rejected() {
        let mut p = Program::new();
        let mut a = ClassFile::new_class("A");
        a.methods.push(ctor());
        a.methods.push(MethodInfo::new(
            "bad",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Pop, Insn::Return]),
        ));
        p.insert(a);
        assert!(build_model(&p).is_err());
    }
}
