//! Access flags, encoded as in the JVM class-file format.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// A set of access flags (a `u16` bit set, JVM encoding).
///
/// # Examples
///
/// ```
/// use lbr_classfile::Flags;
/// let f = Flags::PUBLIC | Flags::ABSTRACT;
/// assert!(f.contains(Flags::ABSTRACT));
/// assert!(!f.contains(Flags::STATIC));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags(u16);

impl Flags {
    /// No flags.
    pub const EMPTY: Flags = Flags(0);
    /// `ACC_PUBLIC`.
    pub const PUBLIC: Flags = Flags(0x0001);
    /// `ACC_PRIVATE`.
    pub const PRIVATE: Flags = Flags(0x0002);
    /// `ACC_STATIC`.
    pub const STATIC: Flags = Flags(0x0008);
    /// `ACC_FINAL`.
    pub const FINAL: Flags = Flags(0x0010);
    /// `ACC_SUPER` (historical, set on classes).
    pub const SUPER: Flags = Flags(0x0020);
    /// `ACC_INTERFACE`.
    pub const INTERFACE: Flags = Flags(0x0200);
    /// `ACC_ABSTRACT`.
    pub const ABSTRACT: Flags = Flags(0x0400);

    /// Builds from the raw `u16`.
    pub const fn from_bits(bits: u16) -> Flags {
        Flags(bits)
    }

    /// The raw `u16`.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Whether all of `other`'s flags are set.
    pub const fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the `ACC_INTERFACE` bit is set.
    pub const fn is_interface(self) -> bool {
        self.contains(Flags::INTERFACE)
    }

    /// Whether the `ACC_ABSTRACT` bit is set.
    pub const fn is_abstract(self) -> bool {
        self.contains(Flags::ABSTRACT)
    }

    /// Whether the `ACC_STATIC` bit is set.
    pub const fn is_static(self) -> bool {
        self.contains(Flags::STATIC)
    }
}

impl BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        Flags(self.0 | rhs.0)
    }
}

impl BitOrAssign for Flags {
    fn bitor_assign(&mut self, rhs: Flags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        for (flag, name) in [
            (Flags::PUBLIC, "public"),
            (Flags::PRIVATE, "private"),
            (Flags::STATIC, "static"),
            (Flags::FINAL, "final"),
            (Flags::INTERFACE, "interface"),
            (Flags::ABSTRACT, "abstract"),
        ] {
            if self.contains(flag) {
                parts.push(name);
            }
        }
        if parts.is_empty() {
            write!(f, "(none)")
        } else {
            write!(f, "{}", parts.join(" "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_operations() {
        let f = Flags::PUBLIC | Flags::FINAL;
        assert!(f.contains(Flags::PUBLIC));
        assert!(f.contains(Flags::FINAL));
        assert!(!f.contains(Flags::STATIC));
        assert_eq!(f.bits(), 0x0011);
        assert_eq!(Flags::from_bits(0x0011), f);
    }

    #[test]
    fn predicates() {
        assert!((Flags::INTERFACE | Flags::ABSTRACT).is_interface());
        assert!(Flags::ABSTRACT.is_abstract());
        assert!(Flags::STATIC.is_static());
        assert!(!Flags::EMPTY.is_interface());
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Flags::EMPTY.to_string(), "(none)");
        assert_eq!(
            (Flags::PUBLIC | Flags::ABSTRACT).to_string(),
            "public abstract"
        );
    }
}
