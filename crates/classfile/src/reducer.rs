//! The item-level program reducer (the bytecode analog of Figure 5).

use crate::item::{Item, ItemRegistry};
use crate::{ClassFile, Code, Program, OBJECT};
use lbr_logic::VarSet;

/// Applies a solution: keeps exactly the items in `keep` (plus built-ins),
/// rewiring removed relations and stubbing removed bodies.
///
/// If `keep` satisfies the dependency model of
/// [`LogicalModel`](crate::LogicalModel), the result verifies — the
/// bytecode analog of Theorem 3.1, property-tested in this crate.
pub fn reduce_program(program: &Program, reg: &ItemRegistry, keep: &VarSet) -> Program {
    let mut out = Program::new();
    for class in program.classes() {
        let class_item = if class.is_interface() {
            Item::Interface(class.name.clone())
        } else {
            Item::Class(class.name.clone())
        };
        if !reg.kept(&class_item, keep) {
            continue;
        }
        out.insert(reduce_class(class, reg, keep));
    }
    out
}

fn reduce_class(class: &ClassFile, reg: &ItemRegistry, keep: &VarSet) -> ClassFile {
    let name = &class.name;
    let mut reduced = class.clone();

    // Superclass relation.
    if !class.is_interface() {
        if let Some(sup) = &class.superclass {
            if sup != OBJECT && !reg.kept(&Item::SuperClass(name.clone(), sup.clone()), keep) {
                reduced.superclass = Some(OBJECT.to_owned());
            }
        }
    }
    // Interface relations.
    reduced.interfaces.retain(|iface| {
        let item = if class.is_interface() {
            Item::InterfaceExtends(name.clone(), iface.clone())
        } else {
            Item::Implements(name.clone(), iface.clone())
        };
        reg.kept(&item, keep)
    });
    // Fields.
    reduced
        .fields
        .retain(|f| reg.kept(&Item::Field(name.clone(), f.name.clone()), keep));
    // Methods.
    let mut methods = Vec::new();
    for m in &class.methods {
        let desc = m.desc.descriptor();
        if m.is_init() {
            if !reg.kept(&Item::Constructor(name.clone(), desc.clone()), keep) {
                continue;
            }
            let mut kept_method = m.clone();
            if !reg.kept(&Item::ConstructorCode(name.clone(), desc), keep) {
                kept_method.code = Some(Code::trivial(locals_for(m)));
            }
            methods.push(kept_method);
        } else if m.code.is_some() {
            if !reg.kept(
                &Item::Method(name.clone(), m.name.clone(), desc.clone()),
                keep,
            ) {
                continue;
            }
            let mut kept_method = m.clone();
            if !reg.kept(&Item::MethodCode(name.clone(), m.name.clone(), desc), keep) {
                kept_method.code = Some(Code::trivial(locals_for(m)));
            }
            methods.push(kept_method);
        } else {
            if !reg.kept(&Item::Signature(name.clone(), m.name.clone(), desc), keep) {
                continue;
            }
            methods.push(m.clone());
        }
    }
    reduced.methods = methods;
    reduced
}

fn locals_for(m: &crate::MethodInfo) -> u16 {
    let this = u16::from(!m.flags.is_static());
    this + m.desc.params.len() as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldInfo, Insn, MethodDescriptor, MethodInfo, Type};

    fn sample() -> (Program, ItemRegistry) {
        let mut i = ClassFile::new_interface("I");
        i.methods
            .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
        let mut a = ClassFile::new_class("A");
        a.interfaces.push("I".into());
        a.fields.push(FieldInfo::new("f", Type::Int));
        a.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        a.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        let mut b = ClassFile::new_class("B");
        b.superclass = Some("A".into());
        b.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        let p: Program = [i, a, b].into_iter().collect();
        let reg = ItemRegistry::from_program(&p);
        (p, reg)
    }

    fn keep_all_except(reg: &ItemRegistry, drop: &[Item]) -> VarSet {
        let mut s = VarSet::full(reg.len());
        for d in drop {
            s.remove(reg.var(d).expect("registered item"));
        }
        s
    }

    #[test]
    fn keep_all_is_identity() {
        let (p, reg) = sample();
        let r = reduce_program(&p, &reg, &VarSet::full(reg.len()));
        assert_eq!(r, p);
    }

    #[test]
    fn drop_class_removes_it() {
        let (p, reg) = sample();
        let keep = keep_all_except(
            &reg,
            &[
                Item::Class("B".into()),
                Item::SuperClass("B".into(), "A".into()),
                Item::Constructor("B".into(), "()V".into()),
                Item::ConstructorCode("B".into(), "()V".into()),
            ],
        );
        let r = reduce_program(&p, &reg, &keep);
        assert!(r.get("B").is_none());
        assert!(r.get("A").is_some());
    }

    #[test]
    fn drop_superclass_rewires_to_object() {
        let (p, reg) = sample();
        let keep = keep_all_except(&reg, &[Item::SuperClass("B".into(), "A".into())]);
        let r = reduce_program(&p, &reg, &keep);
        assert_eq!(r.get("B").unwrap().superclass.as_deref(), Some(OBJECT));
    }

    #[test]
    fn drop_implements_removes_relation() {
        let (p, reg) = sample();
        let keep = keep_all_except(&reg, &[Item::Implements("A".into(), "I".into())]);
        let r = reduce_program(&p, &reg, &keep);
        assert!(r.get("A").unwrap().interfaces.is_empty());
        assert!(r.get("I").is_some());
    }

    #[test]
    fn drop_method_code_stubs_body() {
        let (p, reg) = sample();
        let keep = keep_all_except(
            &reg,
            &[Item::MethodCode("A".into(), "m".into(), "()V".into())],
        );
        let r = reduce_program(&p, &reg, &keep);
        let m = r
            .get("A")
            .unwrap()
            .method("m", &MethodDescriptor::void())
            .unwrap();
        assert_eq!(
            m.code.as_ref().unwrap().insns,
            vec![Insn::AConstNull, Insn::AThrow]
        );
    }

    #[test]
    fn drop_method_removes_it() {
        let (p, reg) = sample();
        let keep = keep_all_except(
            &reg,
            &[
                Item::Method("A".into(), "m".into(), "()V".into()),
                Item::MethodCode("A".into(), "m".into(), "()V".into()),
                Item::Implements("A".into(), "I".into()), // keep valid
            ],
        );
        let r = reduce_program(&p, &reg, &keep);
        assert!(r
            .get("A")
            .unwrap()
            .method("m", &MethodDescriptor::void())
            .is_none());
    }

    #[test]
    fn drop_field_and_signature() {
        let (p, reg) = sample();
        let keep = keep_all_except(
            &reg,
            &[
                Item::Field("A".into(), "f".into()),
                Item::Signature("I".into(), "m".into(), "()V".into()),
            ],
        );
        let r = reduce_program(&p, &reg, &keep);
        assert!(r.get("A").unwrap().fields.is_empty());
        assert!(r.get("I").unwrap().methods.is_empty());
    }

    #[test]
    fn ctor_code_stub_preserves_arity() {
        let mut a = ClassFile::new_class("A");
        a.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::new(vec![Type::Int, Type::Int], None),
            Code::new(1, 3, vec![Insn::Return]),
        ));
        let p: Program = [a].into_iter().collect();
        let reg = ItemRegistry::from_program(&p);
        let keep = keep_all_except(&reg, &[Item::ConstructorCode("A".into(), "(II)V".into())]);
        let r = reduce_program(&p, &reg, &keep);
        let ctor = &r.get("A").unwrap().methods[0];
        assert_eq!(ctor.desc.params.len(), 2);
        assert_eq!(ctor.code.as_ref().unwrap().max_locals, 3);
    }
}
