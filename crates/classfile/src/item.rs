//! The reducible items of a bytecode program.
//!
//! The paper's implementation has "a total of 11 kinds of items that can
//! be removed, including constructors, fields, and super-class relations".
//! These are ours:
//!
//! | # | Item | Removal effect |
//! |---|------|----------------|
//! | 1 | `Class(C)` | drop the class file |
//! | 2 | `Interface(I)` | drop the interface file |
//! | 3 | `SuperClass(C, D)` | rewire `C` to `extends Object` |
//! | 4 | `Implements(C, I)` | remove `I` from `C`'s interface list |
//! | 5 | `InterfaceExtends(I, J)` | remove `J` from `I`'s extends list |
//! | 6 | `Field(C, f)` | drop the field |
//! | 7 | `Method(C, m, d)` | drop the concrete method |
//! | 8 | `MethodCode(C, m, d)` | replace the body with `aconst_null; athrow` |
//! | 9 | `Constructor(C, d)` | drop the constructor |
//! | 10 | `ConstructorCode(C, d)` | replace the body with the trivial one |
//! | 11 | `Signature(T, m, d)` | drop the abstract method |

use crate::Program;
use lbr_logic::{Formula, Var, VarSet};
use std::collections::HashMap;
use std::fmt;

/// A reducible construct; see the module docs for the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Item {
    /// A concrete or abstract class.
    Class(String),
    /// An interface.
    Interface(String),
    /// The relation `C extends D` (absent when `D` is `Object`).
    SuperClass(String, String),
    /// The relation `C implements I`.
    Implements(String, String),
    /// The relation `I extends J` between interfaces.
    InterfaceExtends(String, String),
    /// A field `C.f`.
    Field(String, String),
    /// A concrete method `C.m` with descriptor.
    Method(String, String, String),
    /// The body of a concrete method.
    MethodCode(String, String, String),
    /// A constructor `C.<init>` with descriptor.
    Constructor(String, String),
    /// The body of a constructor.
    ConstructorCode(String, String),
    /// An abstract method (interface signature or abstract-class method).
    Signature(String, String, String),
}

impl Item {
    /// The class or interface this item belongs to.
    pub fn owner(&self) -> &str {
        match self {
            Item::Class(c)
            | Item::Interface(c)
            | Item::SuperClass(c, _)
            | Item::Implements(c, _)
            | Item::InterfaceExtends(c, _)
            | Item::Field(c, _)
            | Item::Method(c, _, _)
            | Item::MethodCode(c, _, _)
            | Item::Constructor(c, _)
            | Item::ConstructorCode(c, _)
            | Item::Signature(c, _, _) => c,
        }
    }

    /// A short kind name, for statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Item::Class(_) => "class",
            Item::Interface(_) => "interface",
            Item::SuperClass(..) => "superclass",
            Item::Implements(..) => "implements",
            Item::InterfaceExtends(..) => "iface-extends",
            Item::Field(..) => "field",
            Item::Method(..) => "method",
            Item::MethodCode(..) => "method-code",
            Item::Constructor(..) => "constructor",
            Item::ConstructorCode(..) => "constructor-code",
            Item::Signature(..) => "signature",
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Class(c) | Item::Interface(c) => write!(f, "[{c}]"),
            Item::SuperClass(c, d) => write!(f, "[{c}<:{d}]"),
            Item::Implements(c, i) => write!(f, "[{c}<{i}]"),
            Item::InterfaceExtends(i, j) => write!(f, "[{i}<{j}]"),
            Item::Field(c, n) => write!(f, "[{c}.{n}]"),
            Item::Method(c, m, d) => write!(f, "[{c}.{m}{d}]"),
            Item::MethodCode(c, m, d) => write!(f, "[{c}.{m}{d}!code]"),
            Item::Constructor(c, d) => write!(f, "[{c}.<init>{d}]"),
            Item::ConstructorCode(c, d) => write!(f, "[{c}.<init>{d}!code]"),
            Item::Signature(i, m, d) => write!(f, "[{i}.{m}{d}]"),
        }
    }
}

/// Maps the items of a program to dense logic variables.
///
/// Built-in or foreign names ([`crate::OBJECT`], or a superclass of
/// `Object`) are not registered; [`ItemRegistry::formula`] returns `true`
/// for them so constraint generation can treat them uniformly.
#[derive(Debug, Clone, Default)]
pub struct ItemRegistry {
    items: Vec<Item>,
    index: HashMap<Item, Var>,
}

impl ItemRegistry {
    /// Collects the items of a program in deterministic (class-name, then
    /// declaration) order.
    pub fn from_program(program: &Program) -> Self {
        let mut reg = ItemRegistry::default();
        for class in program.classes() {
            let name = class.name.clone();
            if class.is_interface() {
                reg.add(Item::Interface(name.clone()));
                for sup in &class.interfaces {
                    reg.add(Item::InterfaceExtends(name.clone(), sup.clone()));
                }
            } else {
                reg.add(Item::Class(name.clone()));
                if let Some(sup) = &class.superclass {
                    if sup != crate::OBJECT {
                        reg.add(Item::SuperClass(name.clone(), sup.clone()));
                    }
                }
                for iface in &class.interfaces {
                    reg.add(Item::Implements(name.clone(), iface.clone()));
                }
            }
            for field in &class.fields {
                reg.add(Item::Field(name.clone(), field.name.clone()));
            }
            for m in &class.methods {
                let desc = m.desc.descriptor();
                if m.is_init() {
                    reg.add(Item::Constructor(name.clone(), desc.clone()));
                    reg.add(Item::ConstructorCode(name.clone(), desc));
                } else if m.code.is_some() {
                    reg.add(Item::Method(name.clone(), m.name.clone(), desc.clone()));
                    reg.add(Item::MethodCode(name.clone(), m.name.clone(), desc));
                } else {
                    reg.add(Item::Signature(name.clone(), m.name.clone(), desc));
                }
            }
        }
        reg
    }

    fn add(&mut self, item: Item) -> Var {
        if let Some(&v) = self.index.get(&item) {
            return v;
        }
        let v = Var::new(self.items.len() as u32);
        self.items.push(item.clone());
        self.index.insert(item, v);
        v
    }

    /// The variable of an item, `None` if unregistered.
    pub fn var(&self, item: &Item) -> Option<Var> {
        self.index.get(item).copied()
    }

    /// The item of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not from this registry.
    pub fn item(&self, v: Var) -> &Item {
        &self.items[v.index()]
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All items in variable order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The formula of an item: its variable, or `true` for unregistered
    /// (built-in) items.
    pub fn formula(&self, item: &Item) -> Formula {
        match self.var(item) {
            Some(v) => Formula::var(v),
            None => Formula::tt(),
        }
    }

    /// The formula of a type name (class or interface item, `true` for
    /// `Object` and unknown names).
    pub fn type_formula(&self, name: &str) -> Formula {
        if let Some(v) = self.var(&Item::Class(name.to_owned())) {
            return Formula::var(v);
        }
        if let Some(v) = self.var(&Item::Interface(name.to_owned())) {
            return Formula::var(v);
        }
        Formula::tt()
    }

    /// Whether an item is kept by a solution (unregistered items always
    /// are).
    pub fn kept(&self, item: &Item, keep: &VarSet) -> bool {
        self.var(item).is_none_or(|v| keep.contains(v))
    }

    /// Renders a solution for debugging.
    pub fn render_solution(&self, keep: &VarSet) -> String {
        let mut parts: Vec<String> = keep.iter().map(|v| self.item(v).to_string()).collect();
        parts.sort();
        parts.join(", ")
    }

    /// Counts items per kind.
    pub fn kind_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for i in &self.items {
            *h.entry(i.kind()).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassFile, Code, FieldInfo, Insn, MethodDescriptor, MethodInfo, Type};

    fn sample_program() -> Program {
        let mut i = ClassFile::new_interface("I");
        i.interfaces.push("J".into());
        i.methods
            .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
        let j = ClassFile::new_interface("J");
        let mut a = ClassFile::new_class("A");
        a.interfaces.push("I".into());
        a.fields.push(FieldInfo::new("f", Type::Int));
        a.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        a.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        let mut b = ClassFile::new_class("B");
        b.superclass = Some("A".into());
        b.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        [i, j, a, b].into_iter().collect()
    }

    #[test]
    fn registry_covers_all_kinds() {
        let p = sample_program();
        let reg = ItemRegistry::from_program(&p);
        let h = reg.kind_histogram();
        assert_eq!(h["class"], 2);
        assert_eq!(h["interface"], 2);
        assert_eq!(h["superclass"], 1); // B <: A (A extends Object: none)
        assert_eq!(h["implements"], 1);
        assert_eq!(h["iface-extends"], 1);
        assert_eq!(h["field"], 1);
        assert_eq!(h["method"], 1);
        assert_eq!(h["method-code"], 1);
        assert_eq!(h["constructor"], 2);
        assert_eq!(h["constructor-code"], 2);
        assert_eq!(h["signature"], 1);
        assert_eq!(reg.len(), 15);
    }

    #[test]
    fn formula_true_for_builtins() {
        let p = sample_program();
        let reg = ItemRegistry::from_program(&p);
        assert_eq!(reg.type_formula("Object"), Formula::tt());
        assert!(matches!(reg.type_formula("A"), Formula::Var(_)));
        assert!(matches!(reg.type_formula("I"), Formula::Var(_)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Item::MethodCode("A".into(), "m".into(), "()V".into()).to_string(),
            "[A.m()V!code]"
        );
        assert_eq!(
            Item::SuperClass("B".into(), "A".into()).to_string(),
            "[B<:A]"
        );
        assert_eq!(
            Item::Implements("A".into(), "I".into()).to_string(),
            "[A<I]"
        );
    }

    #[test]
    fn kept_and_render() {
        let p = sample_program();
        let reg = ItemRegistry::from_program(&p);
        let mut keep = VarSet::empty(reg.len());
        let a = Item::Class("A".into());
        keep.insert(reg.var(&a).unwrap());
        assert!(reg.kept(&a, &keep));
        assert!(!reg.kept(&Item::Class("B".into()), &keep));
        assert!(reg.kept(&Item::Class("Object".into()), &keep)); // builtin
        assert_eq!(reg.render_solution(&keep), "[A]");
    }

    #[test]
    fn owner_and_kind() {
        let i = Item::Field("A".into(), "f".into());
        assert_eq!(i.owner(), "A");
        assert_eq!(i.kind(), "field");
    }
}
