//! The constant pool of the binary class-file format.
//!
//! Entries use the JVM's tags and reference structure (`CONSTANT_Utf8`,
//! `CONSTANT_Class`, `CONSTANT_Fieldref`, …). Indices are 1-based, as in
//! the JVM specification.

use std::collections::HashMap;

/// A constant-pool entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constant {
    /// Tag 1: modified-UTF-8 text (we store plain UTF-8).
    Utf8(String),
    /// Tag 3: a 32-bit integer.
    Integer(i32),
    /// Tag 7: a class reference (index of its name).
    Class(u16),
    /// Tag 9: a field reference (class index, name-and-type index).
    Fieldref(u16, u16),
    /// Tag 10: a method reference.
    Methodref(u16, u16),
    /// Tag 11: an interface-method reference.
    InterfaceMethodref(u16, u16),
    /// Tag 12: a name-and-type pair (name index, descriptor index).
    NameAndType(u16, u16),
}

impl Constant {
    /// The entry's tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Constant::Utf8(_) => 1,
            Constant::Integer(_) => 3,
            Constant::Class(_) => 7,
            Constant::Fieldref(..) => 9,
            Constant::Methodref(..) => 10,
            Constant::InterfaceMethodref(..) => 11,
            Constant::NameAndType(..) => 12,
        }
    }
}

/// An interning constant pool (1-based).
///
/// # Examples
///
/// ```
/// use lbr_classfile::ConstantPool;
/// let mut pool = ConstantPool::new();
/// let a = pool.utf8("A");
/// assert_eq!(pool.utf8("A"), a); // interned
/// let class = pool.class("A");
/// assert_eq!(pool.class_name(class), Some("A"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstantPool {
    entries: Vec<Constant>,
    index: HashMap<Constant, u16>,
    // UTF-8 entries get their own index so lookups can borrow a &str
    // instead of allocating a Constant key — interning is on the hot path
    // of the per-probe size metric.
    utf8_index: HashMap<String, u16>,
}

impl ConstantPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a pool from raw entries (used by the reader).
    pub fn from_entries(entries: Vec<Constant>) -> Self {
        let mut index = HashMap::new();
        let mut utf8_index = HashMap::new();
        for (i, e) in entries.iter().enumerate() {
            match e {
                Constant::Utf8(s) => {
                    utf8_index.insert(s.clone(), (i + 1) as u16);
                }
                _ => {
                    index.insert(e.clone(), (i + 1) as u16);
                }
            }
        }
        ConstantPool {
            entries,
            index,
            utf8_index,
        }
    }

    /// Interns an entry, returning its 1-based index.
    pub fn intern(&mut self, c: Constant) -> u16 {
        if let Constant::Utf8(s) = &c {
            if let Some(&i) = self.utf8_index.get(s.as_str()) {
                return i;
            }
            let i = (self.entries.len() + 1) as u16;
            self.utf8_index.insert(s.clone(), i);
            self.entries.push(c);
            return i;
        }
        if let Some(&i) = self.index.get(&c) {
            return i;
        }
        self.entries.push(c.clone());
        let i = self.entries.len() as u16;
        self.index.insert(c, i);
        i
    }

    /// Interns a UTF-8 entry.
    pub fn utf8(&mut self, s: &str) -> u16 {
        if let Some(&i) = self.utf8_index.get(s) {
            return i;
        }
        let i = (self.entries.len() + 1) as u16;
        self.utf8_index.insert(s.to_owned(), i);
        self.entries.push(Constant::Utf8(s.to_owned()));
        i
    }

    /// Interns a class entry (and its name).
    pub fn class(&mut self, name: &str) -> u16 {
        let n = self.utf8(name);
        self.intern(Constant::Class(n))
    }

    /// Interns a name-and-type entry.
    pub fn name_and_type(&mut self, name: &str, desc: &str) -> u16 {
        let n = self.utf8(name);
        let d = self.utf8(desc);
        self.intern(Constant::NameAndType(n, d))
    }

    /// Interns a field reference.
    pub fn fieldref(&mut self, class: &str, name: &str, desc: &str) -> u16 {
        let c = self.class(class);
        let nat = self.name_and_type(name, desc);
        self.intern(Constant::Fieldref(c, nat))
    }

    /// Interns a method reference.
    pub fn methodref(&mut self, class: &str, name: &str, desc: &str) -> u16 {
        let c = self.class(class);
        let nat = self.name_and_type(name, desc);
        self.intern(Constant::Methodref(c, nat))
    }

    /// Interns an interface-method reference.
    pub fn interface_methodref(&mut self, class: &str, name: &str, desc: &str) -> u16 {
        let c = self.class(class);
        let nat = self.name_and_type(name, desc);
        self.intern(Constant::InterfaceMethodref(c, nat))
    }

    /// The entry at a 1-based index.
    pub fn get(&self, index: u16) -> Option<&Constant> {
        if index == 0 {
            return None;
        }
        self.entries.get(index as usize - 1)
    }

    /// Resolves a UTF-8 entry.
    pub fn utf8_at(&self, index: u16) -> Option<&str> {
        match self.get(index)? {
            Constant::Utf8(s) => Some(s),
            _ => None,
        }
    }

    /// Resolves a class entry to its name.
    pub fn class_name(&self, index: u16) -> Option<&str> {
        match self.get(index)? {
            Constant::Class(n) => self.utf8_at(*n),
            _ => None,
        }
    }

    /// Resolves a field/method reference to `(class, name, descriptor)`.
    pub fn member_ref(&self, index: u16) -> Option<(&str, &str, &str)> {
        let (class_idx, nat_idx) = match self.get(index)? {
            Constant::Fieldref(c, n)
            | Constant::Methodref(c, n)
            | Constant::InterfaceMethodref(c, n) => (*c, *n),
            _ => return None,
        };
        let class = self.class_name(class_idx)?;
        let (name_idx, desc_idx) = match self.get(nat_idx)? {
            Constant::NameAndType(n, d) => (*n, *d),
            _ => return None,
        };
        Some((class, self.utf8_at(name_idx)?, self.utf8_at(desc_idx)?))
    }

    /// Number of entries (the file format's `count` field is this plus 1).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw entries in index order.
    pub fn entries(&self) -> &[Constant] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut p = ConstantPool::new();
        let a1 = p.utf8("A");
        let b = p.utf8("B");
        let a2 = p.utf8("A");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1, 1);
        assert_eq!(b, 2);
    }

    #[test]
    fn structured_entries() {
        let mut p = ConstantPool::new();
        let m = p.methodref("A", "m", "()V");
        assert_eq!(p.member_ref(m), Some(("A", "m", "()V")));
        let f = p.fieldref("B", "f", "I");
        assert_eq!(p.member_ref(f), Some(("B", "f", "I")));
        let c = p.class("A");
        assert_eq!(p.class_name(c), Some("A"));
        // Interning shares sub-entries: "A" utf8 appears once.
        let utf8_count = p
            .entries()
            .iter()
            .filter(|e| matches!(e, Constant::Utf8(s) if s == "A"))
            .count();
        assert_eq!(utf8_count, 1);
    }

    #[test]
    fn zero_index_is_invalid() {
        let p = ConstantPool::new();
        assert!(p.get(0).is_none());
        assert!(p.utf8_at(0).is_none());
    }

    #[test]
    fn from_entries_roundtrip() {
        let mut p = ConstantPool::new();
        p.methodref("A", "m", "()V");
        let q = ConstantPool::from_entries(p.entries().to_vec());
        assert_eq!(p, q);
    }

    #[test]
    fn tags() {
        assert_eq!(Constant::Utf8("x".into()).tag(), 1);
        assert_eq!(Constant::Integer(5).tag(), 3);
        assert_eq!(Constant::Class(1).tag(), 7);
        assert_eq!(Constant::Fieldref(1, 2).tag(), 9);
        assert_eq!(Constant::Methodref(1, 2).tag(), 10);
        assert_eq!(Constant::InterfaceMethodref(1, 2).tag(), 11);
        assert_eq!(Constant::NameAndType(1, 2).tag(), 12);
    }
}
