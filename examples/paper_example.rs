//! The paper's running example (Sections 2–4.5), narrated.
//!
//! ```sh
//! cargo run --example paper_example
//! ```
//!
//! Walks Figure 1a through the whole pipeline: variables, constraints,
//! the 6,766 valid sub-inputs, the GBR search, and the Figure 1b output.

use lbr::core::{closure_size_order, generalized_binary_reduction, GbrConfig, Instance, Oracle};
use lbr::fji::{
    figure1_program, figure2_cnf, figure2_dependency_cnf, figure2_var, pretty, reduce,
    ItemRegistry, FIGURE1_SOURCE,
};
use lbr::logic::{count_models, VarSet};

fn main() {
    println!("=== Figure 1a: the input program ===");
    println!("{}", FIGURE1_SOURCE.trim());

    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    println!("\n=== The {} variables (Figure 2) ===", reg.len());
    let names: Vec<String> = reg.items().iter().map(ToString::to_string).collect();
    println!("{}", names.join(" "));

    let mut cnf = figure2_cnf(&reg);
    cnf.dedup_clauses();
    println!("\n=== Dependency constraints ===");
    println!(
        "{} constraints (Figure 2 lists 32 + 1 duplicate)",
        cnf.len()
    );
    let hist = cnf.shape_histogram();
    println!(
        "  {} edges, {} required, {} general (the mAny-style clauses)",
        hist.edge, hist.unit_positive, hist.general
    );

    let dep = figure2_dependency_cnf(&reg);
    println!(
        "\nOf the 2^20 = {} sub-inputs, {} are valid (paper: 6,766).",
        1u64 << reg.len(),
        count_models(&dep)
    );

    // The tool fails when the bodies of A.m(), M.x() and M.main() are all
    // present.
    let needed = [
        figure2_var(&reg, "A.m()!code"),
        figure2_var(&reg, "M.x()!code"),
        figure2_var(&reg, "M.main()!code"),
    ];
    let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
    let mut oracle = Oracle::new(&mut bug, 0.0);
    let order = closure_size_order(&cnf);
    let instance = Instance::over_all_vars(cnf);
    let outcome =
        generalized_binary_reduction(&instance, &order, &mut oracle, &GbrConfig::default())
            .expect("the example reduces");

    println!("\n=== Generalized Binary Reduction ===");
    println!(
        "{} predicate invocations (the paper's run used 11), {} learned sets",
        oracle.calls(),
        outcome.learned.len()
    );
    for (i, l) in outcome.learned.iter().enumerate() {
        println!("  learned L{}: {}", i + 1, reg.render_solution(l));
    }
    println!(
        "solution ({} of {} items): {}",
        outcome.solution.len(),
        reg.len(),
        reg.render_solution(&outcome.solution)
    );

    println!("\n=== Figure 1b: the reduced program ===");
    let reduced = reduce(&program, &reg, &outcome.solution);
    println!("{}", pretty(&reduced).trim());
}
