//! The FJI front end: parse a program, type check it, and show the
//! dependency constraints the type rules generate (Section 3).
//!
//! ```sh
//! cargo run --example fji_typecheck            # built-in demo program
//! cargo run --example fji_typecheck -- file.fji
//! ```

use lbr::fji::{parse_program, typecheck, ItemRegistry};
use lbr::logic::count_models;

const DEMO: &str = "
// A tiny service: Handler implements Service via an adapter chain.
class Handler extends Object implements Service {
  Handler() { super(); }
  String handle() { return this.handle(); }
}
class Adapter extends Handler implements EmptyInterface {
  Adapter() { super(); }
}
interface Service {
  String handle();
}
class App extends Object implements EmptyInterface {
  App() { super(); }
  String run(Service s) { return s.handle(); }
  String main() { return new App().run(new Adapter()); }
}
new App().main();
";

fn main() {
    let source = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEMO.to_owned(),
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    let registry = ItemRegistry::from_program(&program);
    println!("{} reducible items:", registry.len());
    for item in registry.items() {
        println!("  {item}");
    }
    match typecheck(&program, &registry) {
        Ok(formula) => {
            let mut cnf = formula.to_cnf();
            cnf.ensure_vars(registry.len());
            cnf.dedup_clauses();
            println!("\ntype checks ✓ — {} dependency constraints:", cnf.len());
            for clause in cnf.clauses() {
                let text: Vec<String> = clause
                    .lits()
                    .iter()
                    .map(|l| {
                        let name = registry.item(l.var()).to_string();
                        if l.is_positive() {
                            name
                        } else {
                            format!("¬{name}")
                        }
                    })
                    .collect();
                println!("  {}", text.join(" ∨ "));
            }
            println!("\nvalid sub-inputs: {}", count_models(&cnf));
        }
        Err(e) => {
            eprintln!("type error: {e}");
            std::process::exit(1);
        }
    }
}
