//! A custom reduction session (`cargo run --release --example
//! custom_session`): a planted decompiler bug reduced through a
//! fault-injected external probe cache — the middleware soaks up the I/O
//! faults, the result stays bit-identical.

use lbr::core::{FaultPlan, FaultyCache, MemoryCache};
use lbr::decompiler::{BugSet, DecompilerOracle};
use lbr::jreduce::ReductionSession;
use lbr::workload::{generate, WorkloadConfig};

fn main() {
    let program = generate(&WorkloadConfig {
        seed: 7,
        plant: BugSet::decompiler_a().kinds().to_vec(),
        ..WorkloadConfig::default()
    });
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());

    // An in-memory probe cache wrapped in a 40% fault injector: lookups
    // fail to misses, stores get dropped — but never a wrong result.
    let cache = MemoryCache::new();
    let faulty = FaultyCache::new(&cache, FaultPlan { rate: 0.4, seed: 7 });

    let report = ReductionSession::new(&program, &oracle)
        .cost_per_call(33.0)
        .cache(&faulty)
        .probe_threads(2)
        .run()
        .expect("reduction succeeds");

    println!(
        "{}: {} -> {} bytes in {} tool runs ({} faults injected)",
        report.strategy,
        report.initial.bytes,
        report.final_metrics.bytes,
        report.predicate_calls,
        faulty.faults_injected(),
    );
}
